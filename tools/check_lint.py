"""CI lint gate: golden verdict files for every bundled app x config.

Runs the static staleness analysis (the engine behind ``python -m repro
lint``) over every bundled benchmark under each paper configuration and
compares the verdicts against the checked-in golden record.  Any drift
-- a check changing verdict, appearing, or vanishing -- fails CI, so
changes to the analyses, the cost model, or the detector plan must
regenerate the golden file deliberately::

    python tools/check_lint.py             # compare against the golden
    python tools/check_lint.py --update    # regenerate the golden file

The golden record keeps the *stable* projection of each verdict (policy,
kind, site, verdict, reason, flip threshold) -- enough to pin semantics
without freezing incidental text such as timing-dependent fields.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
GOLDEN = REPO / "tests" / "golden" / "lint_verdicts.json"
CONFIGS = ("ocelot", "jit", "atomics")

sys.path.insert(0, str(REPO / "src"))


def current_verdicts() -> dict[str, list[dict]]:
    from repro.analysis.staleness import analyze_staleness
    from repro.apps import BENCHMARKS
    from repro.core.pipeline import compile_source

    out: dict[str, list[dict]] = {}
    for name in sorted(BENCHMARKS):
        for config in CONFIGS:
            compiled = compile_source(BENCHMARKS[name].source, config)
            report = analyze_staleness(compiled)
            out[f"{name}/{config}"] = [
                {
                    "pid": v.pid,
                    "kind": v.kind,
                    "site": str(v.site),
                    "verdict": v.verdict,
                    "reason": v.reason,
                    "threshold": v.threshold,
                }
                for v in sorted(
                    report.verdicts, key=lambda v: (str(v.site), v.pid)
                )
            ]
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="golden-file gate for repro lint verdicts"
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="regenerate the golden file from the current analyses",
    )
    args = parser.parse_args(argv)

    verdicts = current_verdicts()
    if args.update:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(json.dumps(verdicts, indent=2) + "\n")
        total = sum(len(v) for v in verdicts.values())
        print(f"golden updated: {len(verdicts)} leg(s), {total} verdict(s)")
        return 0

    if not GOLDEN.exists():
        print(f"FAIL: missing golden file {GOLDEN}; run with --update")
        return 1
    golden = json.loads(GOLDEN.read_text())

    failed = False
    for leg in sorted(set(golden) | set(verdicts)):
        want = golden.get(leg)
        got = verdicts.get(leg)
        if want is None:
            print(f"FAIL: {leg}: new leg not in golden (run --update)")
            failed = True
            continue
        if got is None:
            print(f"FAIL: {leg}: golden leg no longer produced")
            failed = True
            continue
        if want == got:
            continue
        failed = True
        want_by_key = {(v["pid"], v["site"]): v for v in want}
        got_by_key = {(v["pid"], v["site"]): v for v in got}
        for key in sorted(set(want_by_key) | set(got_by_key)):
            old = want_by_key.get(key)
            new = got_by_key.get(key)
            if old == new:
                continue
            pid, site = key
            if old is None:
                print(f"FAIL: {leg}: {pid} at {site}: new check "
                      f"({new['verdict']})")
            elif new is None:
                print(f"FAIL: {leg}: {pid} at {site}: check vanished "
                      f"(was {old['verdict']})")
            else:
                print(
                    f"FAIL: {leg}: {pid} at {site}: "
                    f"{old['verdict']} -> {new['verdict']}"
                )

    if failed:
        print("verdict drift detected; inspect, then "
              "`python tools/check_lint.py --update` if intended")
        return 1
    total = sum(len(v) for v in verdicts.values())
    print(f"ok: {len(verdicts)} leg(s), {total} verdict(s) match the golden")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
