"""CI docs check: smoke-run every documented ``python -m repro`` command.

Extracts fenced code blocks from ``README.md`` and ``docs/*.md``, joins
backslash continuations, selects the ``python -m repro ...`` lines, and
runs each one with a timeout.  A command that exits non-zero fails the
check -- so a renamed flag, a deleted subcommand, or a stale example
spec breaks CI instead of silently rotting in the docs.

Lines containing obvious placeholders (ALL-CAPS metavariables like
``FILE``/``SPEC``/``CH=VALUE``, or the illustrative ``prog.ocl``) are
skipped: they document a shape, not a runnable invocation.  Extracting
*zero* runnable commands is itself a failure -- it means the selection
logic no longer matches the docs.

Usage::

    python tools/check_docs.py            # run everything
    python tools/check_docs.py --list     # just show what would run
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FENCE = re.compile(r"^```")
# A 2+ letter ALL-CAPS word is a placeholder metavariable (FILE, SPEC,
# CH=VALUE ...); single capitals and mixed case are real text.
PLACEHOLDER = re.compile(r"\b[A-Z][A-Z_]+\b")
TIMEOUT_SECONDS = 120


def doc_files() -> list[Path]:
    return [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))


def fenced_lines(text: str) -> list[str]:
    """Logical lines inside code fences, continuations joined."""
    lines: list[str] = []
    in_fence = False
    pending = ""
    for raw in text.splitlines():
        if FENCE.match(raw.strip()):
            in_fence = not in_fence
            pending = ""
            continue
        if not in_fence:
            continue
        # Strip trailing comments so `cmd   # note` runs clean.
        line = pending + raw.split("#", 1)[0].strip()
        if line.endswith("\\"):
            pending = line[:-1].rstrip() + " "
            continue
        pending = ""
        if line:
            lines.append(line)
    return lines


def extract_commands() -> list[tuple[Path, str]]:
    commands: list[tuple[Path, str]] = []
    for path in doc_files():
        for line in fenced_lines(path.read_text()):
            if not line.startswith("python -m repro"):
                continue
            if PLACEHOLDER.search(line) or "prog.ocl" in line:
                continue
            commands.append((path, line))
    return commands


def run_commands(commands: list[tuple[Path, str]]) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    failures = 0
    # Run from a scratch cwd (with `examples` reachable) so commands
    # that write output files cannot dirty the repo.
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as scratch:
        cwd = Path(scratch)
        (cwd / "examples").symlink_to(REPO / "examples")
        for path, command in commands:
            rel = path.relative_to(REPO)
            started = time.perf_counter()
            try:
                proc = subprocess.run(
                    command,
                    shell=True,
                    cwd=cwd,
                    env=env,
                    capture_output=True,
                    text=True,
                    timeout=TIMEOUT_SECONDS,
                )
            except subprocess.TimeoutExpired:
                failures += 1
                print(f"FAIL [{rel}] (timeout {TIMEOUT_SECONDS}s): {command}")
                continue
            elapsed = time.perf_counter() - started
            if proc.returncode != 0:
                failures += 1
                print(f"FAIL [{rel}] (exit {proc.returncode}): {command}")
                tail = (proc.stderr or proc.stdout).strip().splitlines()
                for line in tail[-8:]:
                    print(f"    {line}")
            else:
                print(f"ok   [{rel}] ({elapsed:.1f}s): {command}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="smoke-run every documented `python -m repro` command"
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the extracted commands without running them",
    )
    args = parser.parse_args(argv)

    commands = extract_commands()
    if not commands:
        print("FAIL: no runnable `python -m repro` commands found in docs")
        return 1
    if args.list:
        for path, command in commands:
            print(f"[{path.relative_to(REPO)}] {command}")
        return 0
    failures = run_commands(commands)
    total = len(commands)
    if failures:
        print(f"{failures}/{total} documented command(s) failed")
        return 1
    print(f"all {total} documented command(s) ran clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
