"""Benchmarks: regenerate Tables 3 and 4 (strategy and effort models)."""

from repro.apps import BENCHMARKS
from repro.baselines.effort import ocelot_effort, samoyed_effort, tics_effort
from repro.eval.table3 import table3
from repro.eval.table4 import measure_table4, table4


def test_table3(benchmark):
    table = benchmark(table3)
    assert [row[0] for row in table.rows] == [
        "Ocelot", "JIT", "Atomics", "TICS", "Samoyed",
    ]


def test_table4(benchmark):
    rows = benchmark(measure_table4)
    by_app = {row.app: row for row in rows}
    # Exact paper matches for five of six apps (send_photo documented).
    for app in ("activity", "cem", "greenhouse", "photo", "tire"):
        assert by_app[app].ours == by_app[app].paper, app
    # Ocelot never worse than TICS anywhere.
    for row in rows:
        assert row.ours["ocelot"] <= row.ours["tics"]


def test_table4_renders(benchmark):
    table = benchmark(table4)
    assert len(table.rows) == 6


def test_effort_models_tire(benchmark):
    meta = BENCHMARKS["tire"]

    def model_all():
        return ocelot_effort(meta), tics_effort(meta), samoyed_effort(meta)

    ocelot, tics, samoyed = benchmark(model_all)
    assert (ocelot, tics, samoyed) == (9, 32, 24)
