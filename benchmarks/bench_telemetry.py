"""Benchmark: telemetry overhead -- disabled, tracing, and metrics legs.

The telemetry layer's contract is *zero overhead when disabled*: the
engines check a module-level tracer once per activation and the
sim-time trace is derived post-hoc, so the per-instruction hot loop
carries no telemetry branches.  This benchmark holds the contract to a
number::

    python benchmarks/bench_telemetry.py          # write BENCH_telemetry.json
    python benchmarks/bench_telemetry.py --quick  # CI gate, no record
    pytest benchmarks/bench_telemetry.py          # pytest-benchmark timings

Four legs drive the same fast-engine workload (same builds, same
spawned supplies, same environments):

``raw``
    the pre-telemetry hot path -- ``_run_to_completion()`` called
    directly, bypassing the per-activation tracer check entirely;
``disabled``
    the production entry point ``run()`` with telemetry off (what
    every harness executes today);
``tracing``
    ``run()`` with the wall-clock tracer enabled;
``metrics``
    ``run()`` with every activation absorbed into a
    :class:`~repro.telemetry.metrics.MetricsRegistry`.

All four legs must agree on instructions, activations, reboots,
violations, and detector queries -- telemetry that perturbed execution
would trip the parity assert before any timing is reported.  The legs
are timed through the same metrics registry the CLI's ``--metrics-out``
uses, so this record and the metrics schema agree on field names.
``--quick`` *fails* (exit 1) if the disabled path costs more than
``GATE_OVERHEAD`` over the raw path.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

from repro.apps import BENCHMARKS
from repro.core.cache import GLOBAL_CACHE
from repro.eval.profiles import STANDARD_PROFILE
from repro.runtime.engine import ENGINE_FAST, create_machine
from repro.runtime.executor import NVState
from repro.runtime.supply import ContinuousPower
from repro.telemetry import (
    MetricsRegistry,
    absorb_run,
    disable_tracing,
    enable_tracing,
)

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"

#: (app, config, supply kind): region-heavy, JIT-only, and continuous
#: execution shapes, mirroring the machine-throughput workload.
WORKLOAD = (
    ("tire", "ocelot", "harvest"),
    ("greenhouse", "jit", "harvest"),
    ("activity", "ocelot", "continuous"),
)

MODES = ("raw", "disabled", "tracing", "metrics")

#: Disabled-path budget: ``run()`` with telemetry off may cost at most
#: 2% over calling the activation body directly, measured as the ratio
#: of best-of-rounds times to keep CI timer noise out of the verdict.
GATE_OVERHEAD = 1.02


def _drive(app: str, config: str, supply_kind: str, budget: int, mode: str):
    """Run one device's activation stream to its logical-time budget."""
    meta = BENCHMARKS[app]
    compiled = GLOBAL_CACHE.get_or_compile(meta.source, config)
    costs = meta.cost_model()
    plan = compiled.detector_plan()
    env = meta.env_factory(13)
    supply = (
        ContinuousPower()
        if supply_kind == "continuous"
        else STANDARD_PROFILE.make_supply(seed=5).spawn(31)
    )
    registry = MetricsRegistry() if mode == "metrics" else None
    nv = NVState.initial(compiled.module)
    tau = 0
    instructions = activations = reboots = violations = queries = 0
    while tau < budget:
        machine = create_machine(
            ENGINE_FAST, compiled, env, supply,
            costs=costs, plan=plan, nv=nv, start_tau=tau,
        )
        result = (
            machine._run_to_completion() if mode == "raw" else machine.run()
        )
        if registry is not None:
            absorb_run(registry, result)
        tau = machine.tau
        instructions += result.stats.instructions
        reboots += result.stats.reboots
        violations += result.stats.violations
        queries += machine.detector_queries
        activations += 1
        if not result.stats.completed:
            break
    return {
        "instructions": instructions,
        "activations": activations,
        "reboots": reboots,
        "violations": violations,
        "detector_queries": queries,
    }


def _run_mode(mode: str, budget: int, registry: MetricsRegistry) -> dict:
    """Drive the whole workload under one telemetry mode, timed."""
    totals = {
        "instructions": 0,
        "activations": 0,
        "reboots": 0,
        "violations": 0,
        "detector_queries": 0,
    }
    if mode == "tracing":
        enable_tracing()
    try:
        with registry.timer(f"bench.telemetry.{mode}.seconds"):
            for app, config, supply_kind in WORKLOAD:
                counters = _drive(app, config, supply_kind, budget, mode)
                for key, value in counters.items():
                    totals[key] += value
    finally:
        if mode == "tracing":
            disable_tracing()
    return totals


def _warm_builds() -> None:
    for app, config, _ in WORKLOAD:
        GLOBAL_CACHE.get_or_compile(BENCHMARKS[app].source, config)


def measure(budget: int = 1_500_000, rounds: int = 7) -> dict:
    """Per-mode seconds (best-of-``rounds``) with counter parity.

    Overhead ratios are ratios of best-of-``rounds`` times.  Scheduler
    noise only ever *inflates* a sample, so the per-mode minimum
    converges on the true time from above and the ratio of minimums is
    the robust overhead estimate -- a lone preempted round cannot flip
    the gate the way a mean (or a thin median) can.
    """
    _warm_builds()
    registry = MetricsRegistry()
    counters: dict[str, dict] = {}
    samples: dict[str, list[float]] = {mode: [] for mode in MODES}
    for _ in range(rounds):
        for mode in MODES:
            totals = _run_mode(mode, budget, registry)
            previous = counters.setdefault(mode, totals)
            assert previous == totals, f"{mode} leg is nondeterministic"
            histogram = registry.to_dict()["histograms"][
                f"bench.telemetry.{mode}.seconds"
            ]
            samples[mode].append(
                histogram["total"] - sum(samples[mode])
            )
    baseline = counters["raw"]
    for mode in MODES:
        assert counters[mode] == baseline, (
            f"telemetry perturbed execution: {mode} leg diverged from raw "
            f"({counters[mode]} != {baseline})"
        )
    seconds = {mode: min(samples[mode]) for mode in MODES}
    ratios = {
        "disabled_overhead": seconds["disabled"] / seconds["raw"],
        "tracing_overhead": seconds["tracing"] / seconds["disabled"],
        "metrics_overhead": seconds["metrics"] / seconds["disabled"],
    }
    instructions = baseline["instructions"]
    return {
        "benchmark": "telemetry-overhead",
        "workload": {
            "pairs": ["/".join(w) for w in WORKLOAD],
            "budget_cycles": budget,
            "instructions": instructions,
            "activations": baseline["activations"],
            "detector_queries": baseline["detector_queries"],
        },
        "rounds": rounds,
        "cores": os.cpu_count() or 1,
        "seconds": {mode: round(seconds[mode], 4) for mode in MODES},
        "instructions_per_second": {
            mode: round(instructions / seconds[mode]) for mode in MODES
        },
        "disabled_overhead": round(ratios["disabled_overhead"], 4),
        "tracing_overhead": round(ratios["tracing_overhead"], 4),
        "metrics_overhead": round(ratios["metrics_overhead"], 4),
        "metrics": registry.to_dict(command="bench_telemetry"),
    }


# -- pytest-benchmark entry points -------------------------------------------


def test_disabled_leg(benchmark):
    _warm_builds()
    totals = benchmark(_run_mode, "disabled", 300_000, MetricsRegistry())
    assert totals["instructions"] > 0


def test_tracing_leg(benchmark):
    _warm_builds()
    totals = benchmark(_run_mode, "tracing", 300_000, MetricsRegistry())
    assert totals["instructions"] > 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="telemetry overhead benchmark"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI gate: small budget, counter parity, <2% disabled overhead",
    )
    args = parser.parse_args(argv)

    if args.quick:
        record = measure(budget=300_000, rounds=12)
        print(json.dumps(record, indent=2))
        overhead = record["disabled_overhead"]
        if overhead > GATE_OVERHEAD:
            print(
                "FAIL: disabled telemetry costs more than "
                f"{GATE_OVERHEAD}x the raw hot path ({overhead=})"
            )
            return 1
        print(
            f"ok: disabled telemetry at {overhead}x the raw hot path "
            f"(gate {GATE_OVERHEAD}x, counter parity enforced); tracing at "
            f"{record['tracing_overhead']}x disabled"
        )
        return 0

    record = measure()
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"record written to {RECORD_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
