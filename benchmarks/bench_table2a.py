"""Benchmark: regenerate Table 2a (pathological power-failure points).

For each application, inject a power failure at every detector check site
and count violating runs: the paper's headline 0% (Ocelot) vs 100% (JIT).
"""

import pytest

from repro.apps import BENCHMARK_NAMES, BENCHMARKS
from repro.runtime.harness import run_once
from repro.runtime.supply import FailurePoint, ScheduledFailures


def inject_all_points(builds, name, config):
    meta = BENCHMARKS[name]
    compiled = builds[name][config]
    plan = compiled.detector_plan()
    costs = meta.cost_model()
    violating = fired = 0
    for site in sorted(plan.checks):
        supply = ScheduledFailures([FailurePoint(chain=site)], off_cycles=20_000)
        result = run_once(
            compiled, meta.env_factory(0), supply, costs=costs, plan=plan
        )
        assert result.stats.completed
        if not supply.all_fired:
            continue
        fired += 1
        if result.stats.violations:
            violating += 1
    return violating, fired


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_table2a_jit_always_violates(benchmark, builds, name):
    violating, fired = benchmark(inject_all_points, builds, name, "jit")
    assert fired > 0
    assert violating == fired, f"{name}: {violating}/{fired}"


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_table2a_ocelot_never_violates(benchmark, builds, name):
    violating, fired = benchmark(inject_all_points, builds, name, "ocelot")
    assert violating == 0, f"{name}: {violating}/{fired}"
