"""Benchmark: fleet throughput, serial vs. sharded multiprocessing.

The fleet engine's pitch is linear device scaling: N independent devices
shard across worker processes with no coordination beyond a final
aggregate merge.  This benchmark times the same fleet both ways and, run
as a script, records devices/second in ``BENCH_fleet.json`` at the repo
root so the scaling trajectory is tracked alongside the code::

    python benchmarks/bench_fleet.py          # write BENCH_fleet.json
    python benchmarks/bench_fleet.py --quick  # CI gate: small fleet, no record
    pytest benchmarks/bench_fleet.py          # pytest-benchmark timings

``--quick`` runs a >=200-device fleet, verifies serial/sharded aggregate
parity byte-for-byte, and *fails* (exit 1) if sharding stops beating the
serial executor -- on a multi-core box a parallelism regression in the
fleet engine fails the build.  On a single-core box the speedup gate is
reported but not enforced (there is nothing to win there); parity is
enforced everywhere.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

try:  # only the pytest entry points need it; script mode runs without
    import pytest
except ModuleNotFoundError:  # pragma: no cover - exercised in CI smoke
    pytest = None

from repro.eval.campaign import SupplySpec
from repro.fleet import (
    DeviceClass,
    FleetSpec,
    SerialFleetExecutor,
    ShardedFleetExecutor,
    aggregate_fingerprint,
    precompile_fleet,
    run_fleet,
)

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def bench_spec(devices: int = 240, budget: int = 25_000) -> FleetSpec:
    """A representative heterogeneous fleet, rescaled to ``devices``."""
    spec = FleetSpec(
        name="bench-fleet",
        fleet_seed=17,
        budget_cycles=budget,
        classes=(
            DeviceClass(
                name="tire-ocelot",
                app="tire",
                config="ocelot",
                count=2,
                supply=SupplySpec(harvest_rate=300),
                harvest_jitter=0.5,
                phase_jitter=8_000,
            ),
            DeviceClass(
                name="greenhouse-jit",
                app="greenhouse",
                config="jit",
                count=1,
                harvest_jitter=0.3,
            ),
            DeviceClass(
                name="cem-atomics",
                app="cem",
                config="atomics",
                count=1,
                phase_jitter=10_000,
            ),
        ),
    )
    return spec.with_total_devices(devices)


def test_fleet_serial(benchmark):
    spec = bench_spec(devices=60, budget=15_000)
    precompile_fleet(spec)
    result = benchmark(run_fleet, spec, SerialFleetExecutor())
    assert result.devices == 60


def _slow(fn):
    return pytest.mark.slow(fn) if pytest is not None else fn


@_slow
def test_fleet_sharded(benchmark):
    spec = bench_spec(devices=120, budget=15_000)
    precompile_fleet(spec)  # forked workers inherit warm builds
    result = benchmark.pedantic(
        run_fleet,
        args=(spec, ShardedFleetExecutor()),
        rounds=3,
        iterations=1,
    )
    assert result.devices == 120


def measure(devices: int = 240, budget: int = 25_000, rounds: int = 3) -> dict:
    """Serial vs. sharded fleet throughput, best-of-``rounds``."""
    spec = bench_spec(devices=devices, budget=budget)
    precompile_fleet(spec)

    serial_times, sharded_times = [], []
    serial_fp = sharded_fp = None
    for _ in range(rounds):
        started = time.perf_counter()
        serial = run_fleet(spec, SerialFleetExecutor())
        serial_times.append(time.perf_counter() - started)
        serial_fp = aggregate_fingerprint(serial)

        started = time.perf_counter()
        sharded = run_fleet(spec, ShardedFleetExecutor())
        sharded_times.append(time.perf_counter() - started)
        sharded_fp = aggregate_fingerprint(sharded)

    assert serial_fp == sharded_fp, "serial and sharded aggregates differ"
    serial_s, sharded_s = min(serial_times), min(sharded_times)
    return {
        "benchmark": "fleet-throughput",
        "spec": {
            "devices": devices,
            "classes": len(spec.classes),
            "budget_cycles": spec.budget_cycles,
            "activations": serial.aggregate.total_activations,
        },
        "rounds": rounds,
        "cores": os.cpu_count() or 1,
        "serial_seconds": round(serial_s, 4),
        "sharded_seconds": round(sharded_s, 4),
        "serial_devices_per_second": round(devices / serial_s, 2),
        "sharded_devices_per_second": round(devices / sharded_s, 2),
        "sharding_speedup": round(serial_s / sharded_s, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="fleet throughput benchmark")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI gate: >=200 devices, parity always, speedup on multi-core",
    )
    args = parser.parse_args(argv)

    if args.quick:
        record = measure(devices=200, budget=20_000, rounds=1)
        print(json.dumps(record, indent=2))
        speedup = record["sharding_speedup"]
        if record["cores"] < 2:
            print(
                f"note: single core -- sharding speedup {speedup}x reported, "
                "not gated (parity was enforced)"
            )
            return 0
        if speedup <= 1.0:
            print(f"FAIL: sharding no faster than serial ({speedup=})")
            return 1
        print(f"ok: sharding speedup {speedup}x on {record['cores']} cores")
        return 0

    record = measure()
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"record written to {RECORD_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
