"""Benchmark: fleet throughput -- serial, sharded, and vectorized.

The fleet engine's pitch is device scaling: N independent devices shard
across worker processes, and same-class devices batch through the
memoizing vector executor, which replays equivalent activations instead
of stepping them.  This benchmark times the same fleet all ways and, run
as a script, records devices/second in ``BENCH_fleet.json`` at the repo
root so the scaling trajectory is tracked alongside the code::

    python benchmarks/bench_fleet.py          # write BENCH_fleet.json
    python benchmarks/bench_fleet.py --quick  # CI gate: small fleet, no record
    pytest benchmarks/bench_fleet.py          # pytest-benchmark timings

Four tiers:

* **heterogeneous** -- the classic serial-vs-sharded comparison on a
  mixed 3-class fleet (parity enforced everywhere; the sharding speedup
  is gated only on multi-core hosts, where there is something to win --
  the record carries the gate decision and its reason);
* **memo** -- a homogeneous fleet (one device class, deterministic
  supply randomness) through the vector executor, recording the memo
  hit rate and devices/second against a serial baseline measured on a
  sample of the same class.  The full run sizes this tier at 500k
  devices (the cohort engine's cost per wave is population-independent);
  ``--quick`` runs a small version and *fails* (exit 1) if the vector
  executor stops beating serial by at least 10x -- the memoizer's win is
  core-count independent, so this gate holds on single-core CI too;
* **jittered** -- a stochastic fleet with per-device harvest-rate jitter
  sharing one environment: the case exact supply tokens could never hit
  on.  Quantized supply keys replay the reboot-free prefix across the
  whole population, so the gate asserts a *nonzero* hit rate (it was
  exactly 0 before quantization) on top of byte parity;
* **persistent** -- the jittered fleet run twice through ``--memo-dir``
  style persistence: the cold run populates the on-disk store, the warm
  run must report ``disk_loads > 0``, a strictly better hit rate, and a
  byte-identical aggregate.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
from pathlib import Path

try:  # only the pytest entry points need it; script mode runs without
    import pytest
except ModuleNotFoundError:  # pragma: no cover - exercised in CI smoke
    pytest = None

from repro.eval.campaign import SupplySpec
from repro.fleet import (
    DeviceClass,
    FleetSpec,
    SerialFleetExecutor,
    ShardedFleetExecutor,
    VectorFleetExecutor,
    aggregate_fingerprint,
    precompile_fleet,
    run_fleet,
)
from repro.telemetry import MetricsRegistry, absorb_fleet

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def bench_spec(devices: int = 240, budget: int = 25_000) -> FleetSpec:
    """A representative heterogeneous fleet, rescaled to ``devices``."""
    spec = FleetSpec(
        name="bench-fleet",
        fleet_seed=17,
        budget_cycles=budget,
        classes=(
            DeviceClass(
                name="tire-ocelot",
                app="tire",
                config="ocelot",
                count=2,
                supply=SupplySpec(harvest_rate=300),
                harvest_jitter=0.5,
                phase_jitter=8_000,
            ),
            DeviceClass(
                name="greenhouse-jit",
                app="greenhouse",
                config="jit",
                count=1,
                harvest_jitter=0.3,
            ),
            DeviceClass(
                name="cem-atomics",
                app="cem",
                config="atomics",
                count=1,
                phase_jitter=10_000,
            ),
        ),
    )
    return spec.with_total_devices(devices)


def uniform_spec(devices: int, budget: int = 25_000) -> FleetSpec:
    """A homogeneous fleet: the vector executor's representative case.

    One class, deterministic supply randomness (no harvest spread,
    degenerate boot band), no per-device jitter -- every device provably
    repeats device zero, so the memoizer replays nearly everything.
    """
    return FleetSpec(
        name="bench-fleet-uniform",
        fleet_seed=23,
        budget_cycles=budget,
        classes=(
            DeviceClass(
                name="tire-uniform",
                app="tire",
                config="ocelot",
                count=devices,
                supply=SupplySpec(
                    name="rf",
                    harvest_rate=300,
                    harvest_spread=1.0,
                    boot_fraction=(1.0, 1.0),
                ),
            ),
        ),
    )


def jittered_spec(devices: int, budget: int = 25_000) -> FleetSpec:
    """A stochastic, per-device-jittered fleet sharing one environment.

    Every device draws its own harvest rate (RF shadowing) and boot/off
    randomness, so exact supply tokens are unique per device and the
    memoizer used to score exactly zero hits here.  Quantized supply
    keys ride the reboot-free prefix -- the devices share charge
    trajectories until their first power failure scatters them.
    """
    return FleetSpec(
        name="bench-fleet-jittered",
        fleet_seed=31,
        budget_cycles=budget,
        classes=(
            DeviceClass(
                name="tire-jittered",
                app="tire",
                config="ocelot",
                count=devices,
                supply=SupplySpec(harvest_rate=300),
                harvest_jitter=0.5,
            ),
        ),
    )


def test_fleet_serial(benchmark):
    spec = bench_spec(devices=60, budget=15_000)
    precompile_fleet(spec)
    result = benchmark(run_fleet, spec, SerialFleetExecutor())
    assert result.devices == 60


def _slow(fn):
    return pytest.mark.slow(fn) if pytest is not None else fn


@_slow
def test_fleet_sharded(benchmark):
    spec = bench_spec(devices=120, budget=15_000)
    precompile_fleet(spec)  # forked workers inherit warm builds
    result = benchmark.pedantic(
        run_fleet,
        args=(spec, ShardedFleetExecutor()),
        rounds=3,
        iterations=1,
    )
    assert result.devices == 120


def measure(devices: int = 240, budget: int = 25_000, rounds: int = 3) -> dict:
    """Serial vs. sharded fleet throughput, best-of-``rounds``.

    Legs are timed through a :class:`MetricsRegistry` -- the same
    machinery behind the CLI's ``--metrics-out`` -- so this record and
    the metrics schema agree on field names; the final serial run is
    absorbed into the registry and published under ``"metrics"``.
    """
    spec = bench_spec(devices=devices, budget=budget)
    precompile_fleet(spec)

    registry = MetricsRegistry()
    serial = None
    serial_fp = sharded_fp = None
    for _ in range(rounds):
        with registry.timer("bench.fleet.serial.seconds"):
            serial = run_fleet(spec, SerialFleetExecutor())
        serial_fp = aggregate_fingerprint(serial)

        with registry.timer("bench.fleet.sharded.seconds"):
            sharded = run_fleet(spec, ShardedFleetExecutor())
        sharded_fp = aggregate_fingerprint(sharded)

    assert serial_fp == sharded_fp, "serial and sharded aggregates differ"
    absorb_fleet(registry, serial)
    histograms = registry.to_dict()["histograms"]
    serial_s = histograms["bench.fleet.serial.seconds"]["min"]
    sharded_s = histograms["bench.fleet.sharded.seconds"]["min"]
    return {
        "benchmark": "fleet-throughput",
        "spec": {
            "devices": devices,
            "classes": len(spec.classes),
            "budget_cycles": spec.budget_cycles,
            "activations": serial.aggregate.total_activations,
        },
        "rounds": rounds,
        "cores": os.cpu_count() or 1,
        "serial_seconds": round(serial_s, 4),
        "sharded_seconds": round(sharded_s, 4),
        "serial_devices_per_second": round(devices / serial_s, 2),
        "sharded_devices_per_second": round(devices / sharded_s, 2),
        "sharding_speedup": round(serial_s / sharded_s, 3),
        "metrics": registry.to_dict(command="bench_fleet"),
    }


def measure_memo_tier(
    devices: int = 100_000,
    budget: int = 25_000,
    serial_sample: int = 200,
) -> dict:
    """Vectorized throughput on a homogeneous fleet vs. a serial baseline.

    The serial baseline runs on a ``serial_sample``-device slice of the
    same class (serial cost is linear in devices, so per-device rates
    compare directly); byte parity is asserted on that slice before the
    full vectorized run is timed.
    """
    sample_count = min(serial_sample, devices)
    sample = uniform_spec(sample_count, budget=budget)
    precompile_fleet(sample)

    registry = MetricsRegistry()
    with registry.timer("bench.fleet.memo.serial.seconds"):
        serial = run_fleet(sample, SerialFleetExecutor())
    vector_sample = run_fleet(sample, VectorFleetExecutor())
    assert aggregate_fingerprint(vector_sample) == aggregate_fingerprint(
        serial
    ), "serial and vector aggregates differ"

    full = uniform_spec(devices, budget=budget)
    with registry.timer("bench.fleet.memo.vector.seconds"):
        vector = run_fleet(full, VectorFleetExecutor())
    serial_s = registry.seconds("bench.fleet.memo.serial.seconds")
    vector_s = registry.seconds("bench.fleet.memo.vector.seconds")

    serial_dps = sample_count / serial_s
    vector_dps = devices / vector_s
    return {
        "devices": devices,
        "serial_sample_devices": sample_count,
        "budget_cycles": budget,
        "activations": vector.aggregate.total_activations,
        "serial_seconds": round(serial_s, 4),
        "vector_seconds": round(vector_s, 4),
        "serial_devices_per_second": round(serial_dps, 2),
        "vector_devices_per_second": round(vector_dps, 2),
        "vector_speedup": round(vector_dps / serial_dps, 2),
        "memo_hit_rate": round(vector.memo["hit_rate"], 6),
        "memo_hits": vector.memo["hits"],
        "memo_misses": vector.memo["misses"],
    }


def measure_jittered_tier(
    devices: int = 2_000,
    budget: int = 25_000,
    serial_sample: int = 200,
) -> dict:
    """Vectorized run of a per-device-jittered fleet: nonzero hit rate.

    Byte parity against serial is asserted on a sample slice (the jitter
    makes serial cost dominate at full size); the full vectorized run
    records the quantized-key hit rate, which must be > 0 -- exact
    supply tokens scored exactly 0 here.
    """
    sample_count = min(serial_sample, devices)
    sample = jittered_spec(sample_count, budget=budget)
    precompile_fleet(sample)

    registry = MetricsRegistry()
    with registry.timer("bench.fleet.jittered.serial.seconds"):
        serial = run_fleet(sample, SerialFleetExecutor())
    vector_sample = run_fleet(sample, VectorFleetExecutor())
    assert aggregate_fingerprint(vector_sample) == aggregate_fingerprint(
        serial
    ), "serial and vector aggregates differ on the jittered fleet"

    full = jittered_spec(devices, budget=budget)
    with registry.timer("bench.fleet.jittered.vector.seconds"):
        vector = run_fleet(full, VectorFleetExecutor())
    serial_s = registry.seconds("bench.fleet.jittered.serial.seconds")
    vector_s = registry.seconds("bench.fleet.jittered.vector.seconds")
    return {
        "devices": devices,
        "serial_sample_devices": sample_count,
        "budget_cycles": budget,
        "activations": vector.aggregate.total_activations,
        "serial_seconds": round(serial_s, 4),
        "vector_seconds": round(vector_s, 4),
        "serial_devices_per_second": round(sample_count / serial_s, 2),
        "vector_devices_per_second": round(devices / vector_s, 2),
        "memo_hit_rate": round(vector.memo["hit_rate"], 6),
        "memo_hits": vector.memo["hits"],
        "memo_misses": vector.memo["misses"],
    }


def measure_persistent_tier(devices: int = 500, budget: int = 25_000) -> dict:
    """Cold vs. warm runs of the jittered fleet through an on-disk memo.

    The cold run populates the store; the warm run (a fresh executor, as
    a fresh process would be) must load entries from disk, score a
    strictly better hit rate, and produce byte-identical aggregates.
    """
    spec = jittered_spec(devices, budget=budget)
    precompile_fleet(spec)
    registry = MetricsRegistry()
    with tempfile.TemporaryDirectory(prefix="bench-memo-") as memo_dir:
        with registry.timer("bench.fleet.persistent.cold.seconds"):
            cold = run_fleet(spec, "vector", memo_dir=memo_dir)
        with registry.timer("bench.fleet.persistent.warm.seconds"):
            warm = run_fleet(spec, "vector", memo_dir=memo_dir)
    assert aggregate_fingerprint(cold) == aggregate_fingerprint(
        warm
    ), "cold and warm persistent-memo aggregates differ"
    assert warm.memo["disk_loads"] > 0, "warm run loaded nothing from disk"
    assert (
        warm.memo["hit_rate"] > cold.memo["hit_rate"]
    ), "disk-backed warm run did not improve the hit rate"
    cold_s = registry.seconds("bench.fleet.persistent.cold.seconds")
    warm_s = registry.seconds("bench.fleet.persistent.warm.seconds")
    return {
        "devices": devices,
        "budget_cycles": budget,
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "cold_hit_rate": round(cold.memo["hit_rate"], 6),
        "warm_hit_rate": round(warm.memo["hit_rate"], 6),
        "warm_disk_loads": warm.memo["disk_loads"],
    }


def sharding_gate(record: dict) -> dict:
    """The sharded-speedup gate decision for ``record``, with its reason.

    On a single-core host the sharded executor falls back to the serial
    path, so ``sharding_speedup ~= 1.0`` is expected behavior, not a
    regression -- the assertion is skipped and the record says why.
    """
    cores = record["cores"]
    if cores < 2:
        return {
            "cores": cores,
            "gated": False,
            "reason": "single core: sharding has nothing to win; "
            "speedup reported but not asserted",
        }
    return {
        "cores": cores,
        "gated": True,
        "reason": f"multi-core host ({cores} cores): speedup must exceed 1.0",
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="fleet throughput benchmark")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI gate: >=200 devices, parity always, speedup on multi-core, "
        "vector >=10x serial on a homogeneous fleet",
    )
    args = parser.parse_args(argv)

    if args.quick:
        record = measure(devices=200, budget=20_000, rounds=1)
        record["sharding_gate"] = sharding_gate(record)
        record["memo_tier"] = measure_memo_tier(
            devices=2_000, budget=20_000, serial_sample=100
        )
        record["jittered_tier"] = measure_jittered_tier(
            devices=300, budget=20_000, serial_sample=100
        )
        record["persistent_tier"] = measure_persistent_tier(
            devices=150, budget=20_000
        )
        print(json.dumps(record, indent=2))
        vector_speedup = record["memo_tier"]["vector_speedup"]
        if vector_speedup < 10.0:
            print(
                "FAIL: vector executor below 10x serial on a homogeneous "
                f"fleet ({vector_speedup=})"
            )
            return 1
        print(f"ok: vector speedup {vector_speedup}x (memoized)")
        jittered_hits = record["jittered_tier"]["memo_hit_rate"]
        if jittered_hits <= 0.0:
            print(
                "FAIL: zero memo hits on the jittered fleet "
                f"({jittered_hits=}); quantized supply keys regressed"
            )
            return 1
        print(f"ok: jittered-fleet hit rate {jittered_hits} (quantized keys)")
        print(
            "ok: persistent memo warm run loaded "
            f"{record['persistent_tier']['warm_disk_loads']} entries "
            f"(hit rate {record['persistent_tier']['cold_hit_rate']} cold "
            f"-> {record['persistent_tier']['warm_hit_rate']} warm)"
        )
        gate = record["sharding_gate"]
        speedup = record["sharding_speedup"]
        if not gate["gated"]:
            print(f"note: sharding gate skipped -- {gate['reason']} "
                  f"(speedup {speedup}x)")
            return 0
        if speedup <= 1.0:
            print(f"FAIL: sharding no faster than serial ({speedup=})")
            return 1
        print(f"ok: sharding speedup {speedup}x on {record['cores']} cores")
        return 0

    record = measure()
    record["sharding_gate"] = sharding_gate(record)
    record["memo_tier"] = measure_memo_tier(devices=500_000)
    record["jittered_tier"] = measure_jittered_tier(devices=2_000)
    record["persistent_tier"] = measure_persistent_tier(devices=500)
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"record written to {RECORD_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
