"""Benchmark: the Figure 2 weather program's failure modes, quantified.

Figure 2 is the paper's motivating illustration (freshness: the missed
alarm; consistency: the impossible storm log).  This benchmark sweeps
failure points across the weather program and measures how often each
build misbehaves -- plus the refinement oracle verdict: a torn JIT log
matches *no* continuous execution.
"""

from repro.core.pipeline import compile_source
from repro.runtime.executor import Machine
from repro.runtime.refinement import check_refinement
from repro.runtime.supply import FailurePoint, ScheduledFailures
from repro.sensors.environment import Environment, steps

WEATHER = """\
inputs temp, pres, hum;

fn main() {
  let x = input(temp);
  Fresh(x);
  if x > 5 {
    alarm();
  }
  let consistent(1) y = input(pres);
  let consistent(1) z = input(hum);
  log(y, z);
}
"""


def env_factory():
    return Environment(
        {
            "temp": steps([2, 9], 3000),
            "pres": steps([100, 60], 3000),
            "hum": steps([20, 85], 3000),
        }
    )


def sweep(config: str):
    compiled = compile_source(WEATHER, config)
    plan = compiled.detector_plan()
    outcomes = {"violating": 0, "unrefined": 0, "points": 0}
    for site in sorted(plan.checks):
        supply = ScheduledFailures([FailurePoint(chain=site)], off_cycles=3000)
        machine = Machine(
            compiled.module, env_factory(), supply, plan=plan
        )
        result = machine.run()
        assert result.stats.completed
        if not supply.all_fired:
            continue
        outcomes["points"] += 1
        if result.stats.violations:
            outcomes["violating"] += 1
        verdict = check_refinement(compiled, result.trace, env_factory)
        if not verdict.refined:
            outcomes["unrefined"] += 1
    return outcomes


def test_figure2_jit_misbehaves(benchmark):
    outcomes = benchmark(sweep, "jit")
    assert outcomes["points"] > 0
    assert outcomes["violating"] == outcomes["points"]
    # Every violating run is also unrefinable: no continuous execution
    # produces its outputs (the paper's correctness relation, violated).
    assert outcomes["unrefined"] >= 1


def test_figure2_ocelot_always_refines(benchmark):
    outcomes = benchmark(sweep, "ocelot")
    assert outcomes["violating"] == 0
    assert outcomes["unrefined"] == 0
