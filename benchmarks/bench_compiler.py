"""Benchmarks: the Ocelot toolchain itself.

Times each pipeline stage on the largest benchmark sources -- useful to
track the cost of the taint analysis and region inference as the repo
evolves (the paper's compiler runs offline, so these are sanity budgets,
not paper results).
"""

import pytest

from repro.analysis.policies import build_policies
from repro.analysis.taint import analyze_module
from repro.apps import BENCHMARK_NAMES, BENCHMARKS
from repro.core.inference import infer_atomic
from repro.core.pipeline import compile_source
from repro.ir.lowering import lower_program
from repro.lang.parser import parse_program


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_full_pipeline(benchmark, name):
    source = BENCHMARKS[name].source
    compiled = benchmark(compile_source, source, "ocelot")
    assert compiled.check.ok


def test_parse_all(benchmark):
    def parse_all():
        return [parse_program(m.source) for m in BENCHMARKS.values()]

    programs = benchmark(parse_all)
    assert len(programs) == 6


def test_lower_all(benchmark):
    programs = {n: parse_program(m.source) for n, m in BENCHMARKS.items()}

    def lower_all():
        return [lower_program(p) for p in programs.values()]

    modules = benchmark(lower_all)
    assert len(modules) == 6


def test_taint_analysis_tire(benchmark):
    module = lower_program(parse_program(BENCHMARKS["tire"].source))
    result = benchmark(analyze_module, module)
    assert result.annot_inputs


def test_region_inference_tire(benchmark):
    def infer_fresh():
        module = lower_program(parse_program(BENCHMARKS["tire"].source))
        taint = analyze_module(module)
        policies = build_policies(taint)
        return infer_atomic(module, policies)

    pm, regions = benchmark(infer_fresh)
    assert regions
