"""Benchmark: abstract-machine throughput, reference vs. fast engine.

Every harness -- campaigns, fleets, the evaluation tables -- bottoms out
in the per-instruction step loop, so this benchmark tracks the one
number the whole stack scales with: interpreted instructions per second,
for both the Appendix H reference machine and the pre-decoded fast
engine, over a mixed workload (energy-harvesting and continuous runs
across apps and build configurations)::

    python benchmarks/bench_machine.py          # write BENCH_machine.json
    python benchmarks/bench_machine.py --quick  # CI gate, no record
    pytest benchmarks/bench_machine.py          # pytest-benchmark timings

Both engines drive identical activation streams (same builds, same
spawned supplies, same environments); the benchmark asserts the streams
agree on instructions, activations, reboots, violations, and executed
checks before timing them -- a cheap standing parity check next to the
full suites in ``tests/test_engine_parity.py`` and
``tests/test_opt_parity.py``.  Per-config records include
``checks_executed`` (detector bit-vector scans), and the
``check_optimizer`` section compares ``tire/ocelot`` against
``tire/ocelot-opt`` on the same supply stream.  ``--quick`` *fails*
(exit 1) if the fast engine is not at least as fast as the reference,
if ``ocelot-opt`` does not execute strictly fewer checks than
``ocelot``, or if it loses on instructions/s beyond timer noise; the
recorded run is expected to show >= 2x engine speedup and 100% check
elimination for the region-enforced app.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

from repro.apps import BENCHMARKS
from repro.core.cache import GLOBAL_CACHE
from repro.eval.profiles import STANDARD_PROFILE
from repro.runtime.engine import ENGINE_FAST, ENGINE_REFERENCE, create_machine
from repro.runtime.executor import NVState
from repro.runtime.supply import ContinuousPower
from repro.telemetry import MetricsRegistry

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_machine.json"

#: (app, config, supply kind): a mix of region-heavy, JIT-only, and
#: checkpoint-free execution shapes.
WORKLOAD = (
    ("tire", "ocelot", "harvest"),
    ("tire", "ocelot-opt", "harvest"),
    ("greenhouse", "jit", "harvest"),
    ("cem", "atomics", "harvest"),
    ("activity", "ocelot", "continuous"),
)

#: The check-optimizer gate compares these two workload pairs: same app,
#: same supply stream, baseline vs. optimized pipeline.
GATE_BASE = ("tire", "ocelot", "harvest")
GATE_OPT = ("tire", "ocelot-opt", "harvest")

#: Wall-clock tolerance for the instructions/s leg of the gate: the two
#: configs execute identical instruction streams, so "not slower" is the
#: expectation, measured with a small allowance for CI timer noise.
GATE_IPS_TOLERANCE = 0.95


def _drive(engine: str, app: str, config: str, supply_kind: str, budget: int):
    """Run one device's activation stream to its logical-time budget.

    Returns the counters the parity check compares and the instruction
    total the throughput number divides by.
    """
    meta = BENCHMARKS[app]
    compiled = GLOBAL_CACHE.get_or_compile(meta.source, config)
    costs = meta.cost_model()
    plan = compiled.detector_plan()
    env = meta.env_factory(13)
    supply = (
        ContinuousPower()
        if supply_kind == "continuous"
        else STANDARD_PROFILE.make_supply(seed=5).spawn(31)
    )
    nv = NVState.initial(compiled.module)
    tau = 0
    instructions = activations = reboots = violations = checks = 0
    while tau < budget:
        machine = create_machine(
            engine, compiled, env, supply,
            costs=costs, plan=plan, nv=nv, start_tau=tau,
        )
        result = machine.run()
        tau = machine.tau
        instructions += result.stats.instructions
        reboots += result.stats.reboots
        violations += result.stats.violations
        checks += machine.detector_queries
        activations += 1
        if not result.stats.completed:
            break
    return {
        "instructions": instructions,
        "activations": activations,
        "reboots": reboots,
        "violations": violations,
        "checks_executed": checks,
    }


def _run_engine(
    engine: str, budget: int, registry: MetricsRegistry | None = None
) -> tuple[dict, float, dict]:
    """Drive the whole workload under one engine.

    Returns (summed counters, wall seconds, per-pair records); per-pair
    records carry each (app, config, supply) leg's counters and wall
    time, which the check-optimizer gate compares across configs.  Legs
    are timed through a :class:`MetricsRegistry` -- the machinery behind
    the CLI's ``--metrics-out`` -- so perf records and the metrics
    schema agree on field names.
    """
    if registry is None:
        registry = MetricsRegistry()
    totals = {
        "instructions": 0,
        "activations": 0,
        "reboots": 0,
        "violations": 0,
        "checks_executed": 0,
    }
    pairs: dict[str, dict] = {}
    engine_timer = f"bench.machine.{engine}.seconds"
    engine_before = registry.seconds(engine_timer)
    with registry.timer(engine_timer):
        for app, config, supply_kind in WORKLOAD:
            pair = "/".join((app, config, supply_kind))
            leg_timer = f"bench.machine.{engine}.{pair}.seconds"
            leg_before = registry.seconds(leg_timer)
            with registry.timer(leg_timer):
                counters = _drive(engine, app, config, supply_kind, budget)
            for key, value in counters.items():
                totals[key] += value
            pairs[pair] = {
                **counters,
                "seconds": registry.seconds(leg_timer) - leg_before,
            }
    return totals, registry.seconds(engine_timer) - engine_before, pairs


def _warm_builds() -> None:
    for app, config, _ in WORKLOAD:
        GLOBAL_CACHE.get_or_compile(BENCHMARKS[app].source, config)


def measure(budget: int = 1_500_000, rounds: int = 3) -> dict:
    """Reference vs. fast instructions/second, best-of-``rounds``."""
    _warm_builds()
    registry = MetricsRegistry()
    times: dict[str, list[float]] = {ENGINE_REFERENCE: [], ENGINE_FAST: []}
    counters: dict[str, dict] = {}
    best_pairs: dict[str, dict] = {}
    for _ in range(rounds):
        for engine in (ENGINE_REFERENCE, ENGINE_FAST):
            totals, seconds, pairs = _run_engine(engine, budget, registry)
            times[engine].append(seconds)
            previous = counters.setdefault(engine, totals)
            assert previous == totals, f"{engine} engine is nondeterministic"
            if engine == ENGINE_FAST:
                for pair, record in pairs.items():
                    best = best_pairs.get(pair)
                    if best is None or record["seconds"] < best["seconds"]:
                        best_pairs[pair] = record
    assert counters[ENGINE_REFERENCE] == counters[ENGINE_FAST], (
        "engines diverged on the bench workload: "
        f"{counters[ENGINE_REFERENCE]} != {counters[ENGINE_FAST]}"
    )
    ref_s = min(times[ENGINE_REFERENCE])
    fast_s = min(times[ENGINE_FAST])
    instructions = counters[ENGINE_FAST]["instructions"]
    activations = counters[ENGINE_FAST]["activations"]
    configs = {
        pair: {
            "instructions": record["instructions"],
            "checks_executed": record["checks_executed"],
            "violations": record["violations"],
            "seconds": round(record["seconds"], 4),
            "instructions_per_second": round(
                record["instructions"] / record["seconds"]
            ),
        }
        for pair, record in best_pairs.items()
    }
    gate_base = configs["/".join(GATE_BASE)]
    gate_opt = configs["/".join(GATE_OPT)]
    return {
        "benchmark": "machine-throughput",
        "workload": {
            "pairs": ["/".join(w) for w in WORKLOAD],
            "budget_cycles": budget,
            "instructions": instructions,
            "activations": activations,
            "reboots": counters[ENGINE_FAST]["reboots"],
        },
        "rounds": rounds,
        "cores": os.cpu_count() or 1,
        "reference_seconds": round(ref_s, 4),
        "fast_seconds": round(fast_s, 4),
        "reference_instructions_per_second": round(instructions / ref_s),
        "fast_instructions_per_second": round(instructions / fast_s),
        "reference_activations_per_second": round(activations / ref_s, 1),
        "fast_activations_per_second": round(activations / fast_s, 1),
        "speedup": round(ref_s / fast_s, 3),
        "configs": configs,
        "check_optimizer": {
            "baseline": "/".join(GATE_BASE),
            "optimized": "/".join(GATE_OPT),
            "baseline_checks_executed": gate_base["checks_executed"],
            "optimized_checks_executed": gate_opt["checks_executed"],
            "baseline_instructions_per_second": gate_base[
                "instructions_per_second"
            ],
            "optimized_instructions_per_second": gate_opt[
                "instructions_per_second"
            ],
            "checks_eliminated_fraction": round(
                1
                - gate_opt["checks_executed"]
                / max(1, gate_base["checks_executed"]),
                4,
            ),
        },
        "metrics": registry.to_dict(command="bench_machine"),
    }


# -- pytest-benchmark entry points -------------------------------------------


def test_reference_engine(benchmark):
    _warm_builds()
    totals = benchmark(_run_engine, ENGINE_REFERENCE, 300_000)[0]
    assert totals["instructions"] > 0


def test_fast_engine(benchmark):
    _warm_builds()
    totals = benchmark(_run_engine, ENGINE_FAST, 300_000)[0]
    assert totals["instructions"] > 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="abstract-machine throughput benchmark"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI gate: small budget, engine parity, fast >= reference",
    )
    args = parser.parse_args(argv)

    if args.quick:
        record = measure(budget=300_000, rounds=1)
        print(json.dumps(record, indent=2))
        speedup = record["speedup"]
        if speedup < 1.0:
            print(f"FAIL: fast engine slower than the reference ({speedup=})")
            return 1
        gate = record["check_optimizer"]
        base_checks = gate["baseline_checks_executed"]
        opt_checks = gate["optimized_checks_executed"]
        if opt_checks >= base_checks:
            print(
                "FAIL: ocelot-opt executed no fewer checks than ocelot "
                f"({opt_checks} >= {base_checks})"
            )
            return 1
        base_ips = gate["baseline_instructions_per_second"]
        opt_ips = gate["optimized_instructions_per_second"]
        if opt_ips < base_ips * GATE_IPS_TOLERANCE:
            print(
                "FAIL: ocelot-opt lost on instructions/s "
                f"({opt_ips} < {base_ips} within {GATE_IPS_TOLERANCE} tolerance)"
            )
            return 1
        print(
            f"ok: fast engine {speedup}x the reference (parity enforced); "
            f"ocelot-opt executed {opt_checks} checks vs ocelot's "
            f"{base_checks} at {opt_ips} vs {base_ips} instructions/s"
        )
        return 0

    record = measure()
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"record written to {RECORD_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
