"""Benchmark: regenerate Figure 7 (continuous runtimes, JIT/Atomics/Ocelot).

One timed case per benchmark application: running all three builds on
continuous power and checking the paper's shape (Ocelot near JIT; CEM's
Atomics-only blowup; Tire's Atomics-only not slower than Ocelot).
"""

import pytest

from repro.apps import BENCHMARK_NAMES, BENCHMARKS
from repro.eval.report import geometric_mean
from repro.runtime.harness import run_activations
from repro.runtime.supply import ContinuousPower

ACTIVATIONS = 12


def measure_app(builds, name):
    meta = BENCHMARKS[name]
    costs = meta.cost_model()
    cycles = {}
    for config, compiled in builds[name].items():
        result = run_activations(
            compiled,
            meta.env_factory(0),
            ContinuousPower(),
            budget_cycles=10**12,
            costs=costs,
            max_activations=ACTIVATIONS,
        )
        cycles[config] = result.total_cycles_on / len(result.records)
    return cycles


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_figure7_app(benchmark, builds, name):
    cycles = benchmark(measure_app, builds, name)
    ocelot = cycles["ocelot"] / cycles["jit"]
    atomics = cycles["atomics"] / cycles["jit"]
    assert 0.97 <= ocelot <= 1.35, f"{name}: ocelot {ocelot:.3f}"
    if name == "cem":
        assert atomics > 1.8, f"cem atomics {atomics:.3f}"
    if name == "tire":
        assert atomics <= ocelot + 0.02, f"tire {atomics:.3f} vs {ocelot:.3f}"


def test_figure7_gmean(benchmark, builds):
    def measure_all():
        return {name: measure_app(builds, name) for name in BENCHMARK_NAMES}

    rows = benchmark(measure_all)
    gmean = geometric_mean(
        [rows[n]["ocelot"] / rows[n]["jit"] for n in BENCHMARK_NAMES]
    )
    # Paper: "Ocelot has a mean 7% runtime increase".
    assert gmean < 1.12, f"ocelot gmean {gmean:.3f}"
