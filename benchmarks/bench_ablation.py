"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **Undo-log cost ablation**: CEM's Atomics-only overhead is driven by the
  per-nonvolatile-word undo-log cost; sweeping it shows the Figure 7
  blowup is a property of backing the big structure, not an artifact.
* **Boot-level jitter ablation**: deterministic refill correlates failure
  phase with program phase; jitter decorrelates, which is what makes the
  Table 2b rates meaningful.
* **Flattening ablation**: nested regions add only counter bookkeeping
  (Appendix H's Atom-Start-Inner), not checkpoint cost.
"""

from dataclasses import replace

from repro.apps import BENCHMARKS
from repro.core.pipeline import compile_source
from repro.eval.profiles import EnergyProfile
from repro.runtime.harness import run_activations, run_continuous
from repro.runtime.supply import ContinuousPower


def cem_atomics_ratio(costs):
    meta = BENCHMARKS["cem"]
    cycles = {}
    for config in ("jit", "atomics"):
        compiled = compile_source(meta.source, config)
        result = run_activations(
            compiled,
            meta.env_factory(0),
            ContinuousPower(),
            budget_cycles=10**12,
            costs=costs,
            max_activations=8,
        )
        cycles[config] = result.total_cycles_on / len(result.records)
    return cycles["atomics"] / cycles["jit"]


def test_undo_log_cost_drives_cem_blowup(benchmark):
    meta = BENCHMARKS["cem"]
    base = meta.cost_model()

    def sweep():
        cheap = cem_atomics_ratio(replace(base, region_per_nv_word=0))
        expensive = cem_atomics_ratio(replace(base, region_per_nv_word=6))
        return cheap, expensive

    cheap, expensive = benchmark(sweep)
    assert cheap < 1.4, f"free undo log still slow: {cheap:.2f}"
    assert expensive > 2.5, f"expensive undo log too cheap: {expensive:.2f}"
    assert expensive > cheap * 1.8


def test_boot_jitter_decorrelates_failures(benchmark):
    meta = BENCHMARKS["greenhouse"]
    compiled = compile_source(meta.source, "jit")

    def measure(boot):
        profile = EnergyProfile(boot_fraction=boot)
        rates = []
        for seed in (1, 2, 3):
            outcome = run_activations(
                compiled,
                meta.env_factory(0),
                profile.make_supply(seed=seed),
                budget_cycles=100_000,
                costs=meta.cost_model(),
            )
            rates.append(outcome.violation_rate)
        return sum(rates) / len(rates)

    def sweep():
        return measure((1.0, 1.0)), measure((0.65, 1.0))

    deterministic, jittered = benchmark(sweep)
    # Jitter must not hide violations; typically it exposes more phases.
    assert jittered >= 0.0
    assert jittered >= deterministic - 0.05


def test_nested_region_flattening_is_cheap(benchmark):
    nested = "fn main() { atomic { atomic { atomic { work(50); } } } }"
    flat = "fn main() { atomic { work(50); } }"

    def measure():
        out = {}
        for tag, src in (("nested", nested), ("flat", flat)):
            compiled = compile_source(src, "ocelot")
            from repro.sensors.environment import Environment

            result = run_continuous(compiled, Environment())
            out[tag] = result.stats.cycles_on
        return out

    cycles = benchmark(measure)
    # Inner start/end pairs cost only counter bookkeeping.
    assert cycles["nested"] - cycles["flat"] <= 8
