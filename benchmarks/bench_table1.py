"""Benchmark: regenerate Table 1 (benchmark characteristics)."""

from repro.eval.table1 import table1


def test_table1(benchmark):
    table = benchmark(table1)
    assert len(table.rows) == 6
    apps = {row[0] for row in table.rows}
    assert apps == {"activity", "cem", "greenhouse", "photo", "send_photo", "tire"}
