"""Benchmark: campaign throughput, cold vs. cached builds.

The campaign engine's pitch is that compilation happens once per
(app, config) pair no matter how many grid cells reuse it.  This
benchmark measures the same sweep twice -- once against an empty compile
cache, once warm -- and, run as a script, records the numbers in
``BENCH_campaign.json`` at the repo root so the perf trajectory is
tracked alongside the code::

    python benchmarks/bench_campaign.py          # write BENCH_campaign.json
    python benchmarks/bench_campaign.py --quick  # CI gate: small sweep, no record
    pytest benchmarks/bench_campaign.py          # pytest-benchmark timings

``--quick`` runs a reduced sweep and *fails* (exit 1) if the warm cache
stops paying for itself -- a cold run must recompile and a cached run
must not, so pass-pipeline regressions in compile throughput or cache
keying fail the build.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

try:  # only the pytest entry points need it; script mode runs without
    import pytest
except ModuleNotFoundError:  # pragma: no cover - exercised in CI smoke
    pytest = None

from repro.core.cache import GLOBAL_CACHE
from repro.eval.campaign import (
    CampaignSpec,
    EnvironmentSpec,
    MultiprocessExecutor,
    SerialExecutor,
    SupplySpec,
    run_campaign,
)
from repro.telemetry import MetricsRegistry, absorb_campaign

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"


def bench_spec(budget: int = 60_000) -> CampaignSpec:
    """A representative sweep: 3 apps x 3 configs x 2 envs x 2 seeds."""
    return CampaignSpec(
        name="bench-campaign",
        apps=("greenhouse", "tire", "cem"),
        configs=("ocelot", "jit", "atomics"),
        environments=(
            EnvironmentSpec("default", env_seed=0),
            EnvironmentSpec("shifted", env_seed=7),
        ),
        supplies=(SupplySpec.from_profile(seed_offset=23),),
        seeds=(0, 1),
        budget_cycles=budget,
    )


def run_cold(spec: CampaignSpec):
    GLOBAL_CACHE.clear()
    return run_campaign(spec, SerialExecutor())


def run_cached(spec: CampaignSpec):
    return run_campaign(spec, SerialExecutor())


def test_campaign_cold(benchmark):
    spec = bench_spec()
    result = benchmark(run_cold, spec)
    assert result.compiles == len(spec.apps) * len(spec.configs)


def test_campaign_cached(benchmark):
    spec = bench_spec()
    run_campaign(spec)  # warm the cache outside the timed body
    result = benchmark(run_cached, spec)
    assert result.compiles == 0


def _slow(fn):
    return pytest.mark.slow(fn) if pytest is not None else fn


@_slow
def test_campaign_multiprocess(benchmark):
    spec = bench_spec(budget=120_000)
    run_campaign(spec)  # warm so forked workers inherit builds
    result = benchmark.pedantic(
        run_campaign,
        args=(spec, MultiprocessExecutor()),
        rounds=3,
        iterations=1,
    )
    assert len(result.jobs) == spec.size


def measure(rounds: int = 3, budget: int = 60_000) -> dict:
    """Cold vs. cached campaign throughput, best-of-``rounds``.

    Legs are timed through a :class:`MetricsRegistry` -- the same
    machinery behind the CLI's ``--metrics-out`` -- so this record and
    the metrics schema agree on field names; the final cached run is
    absorbed into the registry and published under ``"metrics"``.
    """
    spec = bench_spec(budget=budget)
    jobs = spec.size

    registry = MetricsRegistry()
    cached = None
    for _ in range(rounds):
        with registry.timer("bench.campaign.cold.seconds"):
            cold = run_cold(spec)
        assert cold.compiles > 0

        with registry.timer("bench.campaign.cached.seconds"):
            cached = run_cached(spec)
        assert cached.compiles == 0

        with registry.timer("bench.campaign.cached_multiprocess.seconds"):
            run_campaign(spec, MultiprocessExecutor())

    absorb_campaign(registry, cached)
    histograms = registry.to_dict()["histograms"]
    cold_s = histograms["bench.campaign.cold.seconds"]["min"]
    cached_s = histograms["bench.campaign.cached.seconds"]["min"]
    parallel_s = histograms["bench.campaign.cached_multiprocess.seconds"]["min"]
    return {
        "benchmark": "campaign-throughput",
        "spec": {
            "apps": len(spec.apps),
            "configs": len(spec.configs),
            "environments": len(spec.environments),
            "seeds": len(spec.seeds),
            "jobs": jobs,
            "budget_cycles": spec.budget_cycles,
        },
        "rounds": rounds,
        "cold_seconds": round(cold_s, 4),
        "cached_seconds": round(cached_s, 4),
        "cached_multiprocess_seconds": round(parallel_s, 4),
        "cold_jobs_per_second": round(jobs / cold_s, 2),
        "cached_jobs_per_second": round(jobs / cached_s, 2),
        "cache_speedup": round(cold_s / cached_s, 3),
        "metrics": registry.to_dict(command="bench_campaign"),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="campaign throughput benchmark")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced CI sweep: check cold-vs-cached instead of recording",
    )
    args = parser.parse_args(argv)

    if args.quick:
        record = measure(rounds=1, budget=20_000)
        print(json.dumps(record, indent=2))
        speedup = record["cache_speedup"]
        if speedup <= 1.0:
            print(f"FAIL: warm cache no faster than cold compiles ({speedup=})")
            return 1
        print(f"ok: cache speedup {speedup}x")
        return 0

    record = measure()
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"record written to {RECORD_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
