"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures; the
timed body is the actual experiment, and shape assertions run on the
result afterwards.  Budgets are reduced relative to ``python -m
repro.eval`` so the whole suite stays interactive.
"""

from __future__ import annotations

import pytest

from repro.apps import BENCHMARKS
from repro.core.pipeline import CONFIGS, compile_source


@pytest.fixture(scope="session")
def builds():
    """All six apps compiled in all three configurations, shared."""
    return {
        name: {cfg: compile_source(meta.source, cfg) for cfg in CONFIGS}
        for name, meta in BENCHMARKS.items()
    }
