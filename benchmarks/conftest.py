"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures; the
timed body is the actual experiment, and shape assertions run on the
result afterwards.  Budgets are reduced relative to ``python -m
repro.eval`` so the whole suite stays interactive.

Builds come from the process-wide compile cache, so the compile cost is
paid once per session no matter how many benchmarks run.
"""

from __future__ import annotations

import pytest

from repro.apps import BENCHMARKS
from repro.core.cache import GLOBAL_CACHE
from repro.core.pipeline import CONFIGS


@pytest.fixture(scope="session")
def builds():
    """All six apps compiled in all three configurations, shared."""
    return {
        name: {
            cfg: GLOBAL_CACHE.get_or_compile(meta.source, cfg)
            for cfg in CONFIGS
        }
        for name, meta in BENCHMARKS.items()
    }
