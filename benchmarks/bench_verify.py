"""Benchmark: bounded model-checker throughput and prune effectiveness.

The verifier's cost scales with explored fork states, so this benchmark
tracks states/second and machine steps/second over a mixed workload of
apps and build configurations, and -- the number the analysis-guided
pruning stands on -- the *prune ratio*: explored states with pruning
over explored states without, at identical verdicts::

    python benchmarks/bench_verify.py          # write BENCH_verify.json
    python benchmarks/bench_verify.py --quick  # CI gate, no record

Every leg runs the same bound pruned and unpruned and asserts verdicts
(and any counterexample violation) agree -- a standing soundness check
next to ``tests/test_verify_crosscheck.py``.  A third *guided* pass
seeds the frontier with the static staleness verdicts
(:mod:`repro.analysis.staleness`) and must reach the same verdict kind
from at most as many explored states; the savings land in the record as
``guided_ratio``.  ``--quick`` *fails* (exit 1) if any leg's verdicts
diverge, guidance explores more states, or pruning does not explore
strictly fewer states on every region-bearing leg.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

from repro.analysis.staleness import analyze_staleness
from repro.apps import BENCHMARKS
from repro.core.cache import GLOBAL_CACHE
from repro.sensors.environment import Environment
from repro.telemetry import MetricsRegistry, absorb_verify
from repro.verify import VerifyBounds, verify_program

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_verify.json"

#: (app, config, max_failures): region-heavy proofs, a JIT
#: counterexample, and the DINO-style whole-program transform.
WORKLOAD = (
    ("tire", "ocelot", 2),
    ("tire", "jit", 1),
    ("tire", "atomics", 2),
    ("greenhouse", "ocelot", 1),
    ("cem", "atomics", 1),
)

#: Legs whose config carries atomic regions: pruning must win strictly.
REGION_CONFIGS = ("ocelot", "atomics")


def _bounds(max_failures: int, budget: int) -> VerifyBounds:
    return VerifyBounds(
        max_activations=1,
        max_failures=max_failures,
        max_cycles=budget,
        max_states=500_000,
    )


def _leg(
    app: str,
    config: str,
    max_failures: int,
    budget: int,
    registry: MetricsRegistry,
) -> dict:
    meta = BENCHMARKS[app]
    compiled = GLOBAL_CACHE.get_or_compile(meta.source, config)
    env = Environment.constant_for(compiled.module.channels, 0)
    bounds = _bounds(max_failures, budget)
    # The guided leg steers the same search with the static staleness
    # verdicts (DOOMED sites jump the frontier, bits only SAFE checks
    # read widen the no-op skip); lint time is *excluded* from the leg
    # timer and reported separately -- it is a compile-time cost.
    lint_name = "bench.verify.lint.seconds"
    lint_before = registry.seconds(lint_name)
    with registry.timer(lint_name):
        report = analyze_staleness(compiled, [("bench", env)])
    lint_seconds = registry.seconds(lint_name) - lint_before
    results = {}
    for label, prune, guided in (
        ("pruned", True, False),
        ("unpruned", False, False),
        ("guided", True, True),
    ):
        timer_name = f"bench.verify.{label}.seconds"
        before = registry.seconds(timer_name)
        with registry.timer(timer_name):
            verdict = verify_program(
                compiled,
                env,
                bounds,
                prune=prune,
                seed_uids=report.doomed_uids() if guided else frozenset(),
                relevant_bits=report.relevant_bits() if guided else None,
            )
        seconds = registry.seconds(timer_name) - before
        if prune:
            absorb_verify(registry, verdict)
        results[label] = {
            "verdict": verdict.kind,
            "violation": (
                [verdict.violation[0], verdict.violation[1]]
                if verdict.violation is not None
                else None
            ),
            "explored": verdict.stats.explored,
            "steps": verdict.stats.steps,
            "pruned": verdict.stats.pruned,
            "pruned_noop": verdict.stats.pruned_noop,
            "deduped": verdict.stats.deduped,
            "seconds": round(seconds, 4),
            "states_per_second": round(verdict.stats.explored / seconds),
            "steps_per_second": round(verdict.stats.steps / seconds),
        }
    pruned, full = results["pruned"], results["unpruned"]
    guided = results["guided"]
    return {
        **results,
        "verdicts_agree": pruned["verdict"] == full["verdict"]
        and pruned["violation"] == full["violation"],
        "prune_ratio": round(pruned["explored"] / max(1, full["explored"]), 4),
        # Guidance may legitimately reach a *different* counterexample
        # first (seeded sites fire earlier in queue order), so parity is
        # on the verdict kind, not the violation identity.
        "guided_agrees": guided["verdict"] == pruned["verdict"],
        "guided_ratio": round(
            guided["explored"] / max(1, pruned["explored"]), 4
        ),
        "lint_seconds": round(lint_seconds, 4),
    }


def measure(budget: int = 200_000) -> dict:
    """Per-leg verdicts and throughput, timed through a metrics registry.

    Legs are timed with :meth:`MetricsRegistry.timer` -- the machinery
    behind the CLI's ``--metrics-out`` -- so this record and the metrics
    schema agree on field names; each pruned verdict's explorer stats
    are absorbed and published under ``"metrics"``.
    """
    legs = {}
    registry = MetricsRegistry()
    with registry.timer("bench.verify.total.seconds"):
        for app, config, max_failures in WORKLOAD:
            legs[f"{app}/{config}"] = _leg(
                app, config, max_failures, budget, registry
            )
    total = registry.seconds("bench.verify.total.seconds")
    explored = sum(
        leg[label]["explored"]
        for leg in legs.values()
        for label in ("pruned", "unpruned", "guided")
    )
    return {
        "benchmark": "verify-throughput",
        "workload": [f"{a}/{c} (failures<={f})" for a, c, f in WORKLOAD],
        "budget_cycles": budget,
        "cores": os.cpu_count() or 1,
        "total_seconds": round(total, 4),
        "total_states_explored": explored,
        "states_per_second": round(explored / total),
        "mean_prune_ratio": round(
            sum(leg["prune_ratio"] for leg in legs.values()) / len(legs), 4
        ),
        "legs": legs,
        "metrics": registry.to_dict(command="bench_verify"),
    }


def _gate(record: dict) -> int:
    failed = False
    for name, leg in record["legs"].items():
        if not leg["verdicts_agree"]:
            print(
                f"FAIL: {name}: pruned verdict "
                f"{leg['pruned']['verdict']} != unpruned "
                f"{leg['unpruned']['verdict']}"
            )
            failed = True
        if not leg["guided_agrees"]:
            print(
                f"FAIL: {name}: guided verdict "
                f"{leg['guided']['verdict']} != pruned "
                f"{leg['pruned']['verdict']}"
            )
            failed = True
        if leg["guided_ratio"] > 1.0:
            print(
                f"FAIL: {name}: guidance explored more states "
                f"(ratio {leg['guided_ratio']})"
            )
            failed = True
        config = name.split("/", 1)[1]
        if config in REGION_CONFIGS and leg["prune_ratio"] >= 1.0:
            print(
                f"FAIL: {name}: pruning explored no fewer states "
                f"(ratio {leg['prune_ratio']})"
            )
            failed = True
    if failed:
        return 1
    print(
        f"ok: {record['total_states_explored']} states at "
        f"{record['states_per_second']}/s, mean prune ratio "
        f"{record['mean_prune_ratio']}, verdicts agree on every leg"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="bounded model-checker throughput benchmark"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI gate: small budget, prune parity, strict prune savings",
    )
    args = parser.parse_args(argv)

    if args.quick:
        record = measure(budget=60_000)
        print(json.dumps(record, indent=2))
        return _gate(record)

    record = measure()
    code = _gate(record)
    if code != 0:
        return code
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"record written to {RECORD_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
