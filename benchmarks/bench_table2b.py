"""Benchmark: regenerate Table 2b (% violating on intermittent power).

Each application loops on harvested energy for a fixed logical-time
budget; the JIT build's violation rates follow the paper's ordering
(Photo highest, CEM ~zero) while Ocelot stays at 0%.
"""

import pytest

from repro.apps import BENCHMARK_NAMES, BENCHMARKS
from repro.eval.profiles import STANDARD_PROFILE
from repro.runtime.harness import run_activations

BUDGET = 150_000


def measure(builds, name, config, seed=5):
    meta = BENCHMARKS[name]
    supply = STANDARD_PROFILE.make_supply(seed=seed)
    outcome = run_activations(
        builds[name][config],
        meta.env_factory(0),
        supply,
        budget_cycles=BUDGET,
        costs=meta.cost_model(),
    )
    return outcome.violation_rate, outcome.completed_runs


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_table2b_ocelot_clean(benchmark, builds, name):
    rate, runs = benchmark(measure, builds, name, "ocelot")
    assert runs > 0
    assert rate == 0.0, f"{name}: {rate:.0%} over {runs} runs"


def test_table2b_jit_ordering(benchmark, builds):
    def measure_all():
        return {
            name: measure(builds, name, "jit")[0] for name in BENCHMARK_NAMES
        }

    rates = benchmark(measure_all)
    assert rates["cem"] <= 0.05
    assert rates["photo"] > 0.2
    assert rates["photo"] >= rates["greenhouse"]
    assert rates["photo"] >= rates["tire"]
