"""Benchmark: regenerate Figure 8 (intermittent runtimes, on + charging).

Runs each application on the standard harvesting profile and checks the
dominant-charging-time shape of the paper's stacked bars.
"""

import pytest

from repro.apps import BENCHMARK_NAMES, BENCHMARKS
from repro.eval.profiles import STANDARD_PROFILE
from repro.runtime.harness import run_activations

BUDGET = 120_000


def measure_app(builds, name):
    meta = BENCHMARKS[name]
    costs = meta.cost_model()
    outcome = {}
    for config, compiled in builds[name].items():
        supply = STANDARD_PROFILE.make_supply(seed=11)
        result = run_activations(
            compiled,
            meta.env_factory(0),
            supply,
            budget_cycles=BUDGET,
            costs=costs,
        )
        completed = [r for r in result.records if r.completed]
        outcome[config] = (
            sum(r.cycles_on for r in completed) / max(1, len(completed)),
            sum(r.cycles_off for r in completed) / max(1, len(completed)),
        )
    return outcome


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_figure8_app(benchmark, builds, name):
    outcome = benchmark(measure_app, builds, name)
    for config, (on, off) in outcome.items():
        assert on > 0, (name, config)
        # Charging dominates the total runtime (the grey stacks).
        assert off > on, (name, config)
