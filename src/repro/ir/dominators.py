"""Dominator and post-dominator analysis.

Implements the Cooper-Harvey-Kennedy iterative dominance algorithm, applied
forward (dominators, rooted at the entry block) and backward (post-
dominators, rooted at the unified exit block the lowering guarantees).

Region inference (Algorithm 1 of the paper) uses the tree for its
``closestCommonDominator`` / ``closestCommonPostDominator`` queries, which
are lowest-common-ancestor lookups here.  Control dependence -- needed to
match Ocelot's "data or control dependent" taint rule -- is derived from
the post-dominator tree with the classic Ferrante-Ottenstein-Warren
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.module import IRFunction


@dataclass
class DomTree:
    """An immediate-dominator tree over basic block names.

    ``idom[root] == root`` by convention; every other node maps to its
    immediate dominator.  Unreachable nodes are absent.
    """

    root: str
    idom: dict[str, str]
    _depth: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._depth:
            self._depth = self._compute_depths()

    def _compute_depths(self) -> dict[str, int]:
        depth = {self.root: 0}
        remaining = [n for n in self.idom if n != self.root]
        # Nodes form a tree; resolve depths by repeated passes (graphs are
        # tiny, and every pass resolves at least one node).
        while remaining:
            progressed = False
            next_round = []
            for node in remaining:
                parent = self.idom[node]
                if parent in depth:
                    depth[node] = depth[parent] + 1
                    progressed = True
                else:
                    next_round.append(node)
            if not progressed:
                raise ValueError("immediate-dominator map is not a tree")
            remaining = next_round
        return depth

    def depth(self, node: str) -> int:
        return self._depth[node]

    def dominates(self, a: str, b: str) -> bool:
        """True iff ``a`` dominates ``b`` (reflexive)."""
        node = b
        while True:
            if node == a:
                return True
            if node == self.root:
                return False
            node = self.idom[node]

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def lca(self, a: str, b: str) -> str:
        """Lowest common ancestor: the closest node dominating both."""
        while self._depth[a] > self._depth[b]:
            a = self.idom[a]
        while self._depth[b] > self._depth[a]:
            b = self.idom[b]
        while a != b:
            a = self.idom[a]
            b = self.idom[b]
        return a

    def common_ancestor(self, nodes: list[str]) -> str:
        """Closest node dominating every node in ``nodes`` (non-empty)."""
        if not nodes:
            raise ValueError("common_ancestor of no nodes")
        result = nodes[0]
        for node in nodes[1:]:
            result = self.lca(result, node)
        return result

    def dominators_of(self, node: str) -> list[str]:
        """All dominators of ``node``, from ``node`` up to the root."""
        chain = [node]
        while node != self.root:
            node = self.idom[node]
            chain.append(node)
        return chain


def _reverse_postorder(succ: dict[str, list[str]], root: str) -> list[str]:
    order: list[str] = []
    seen: set[str] = set()
    # Iterative post-order DFS.
    stack: list[tuple[str, int]] = [(root, 0)]
    seen.add(root)
    while stack:
        node, idx = stack[-1]
        children = succ.get(node, [])
        if idx < len(children):
            stack[-1] = (node, idx + 1)
            child = children[idx]
            if child not in seen:
                seen.add(child)
                stack.append((child, 0))
        else:
            order.append(node)
            stack.pop()
    order.reverse()
    return order


def _dominator_tree(succ: dict[str, list[str]], root: str) -> DomTree:
    """Cooper-Harvey-Kennedy iterative dominance on an arbitrary digraph."""
    rpo = _reverse_postorder(succ, root)
    rpo_index = {name: i for i, name in enumerate(rpo)}
    preds: dict[str, list[str]] = {name: [] for name in rpo}
    for node in rpo:
        for child in succ.get(node, []):
            if child in rpo_index:
                preds[child].append(node)

    idom: dict[str, str] = {root: root}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == root:
                continue
            candidates = [p for p in preds[node] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for pred in candidates[1:]:
                new_idom = intersect(pred, new_idom)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return DomTree(root=root, idom=idom)


def dominator_tree(func: IRFunction) -> DomTree:
    """Dominator tree of ``func``'s CFG, rooted at the entry block."""
    succ = {name: block.successors() for name, block in func.blocks.items()}
    return _dominator_tree(succ, func.entry)


def postdominator_tree(func: IRFunction) -> DomTree:
    """Post-dominator tree, rooted at the unified exit block.

    The lowering guarantees a single ``RetInstr`` landing-pad block, so the
    reverse CFG has a unique root and the tree is total over reachable
    blocks (the paper leans on the same property, Section 6.2).
    """
    reverse: dict[str, list[str]] = {name: [] for name in func.blocks}
    for name, block in func.blocks.items():
        for succ_name in block.successors():
            reverse[succ_name].append(name)
    return _dominator_tree(reverse, func.exit)


def control_dependence(func: IRFunction) -> dict[str, set[str]]:
    """Map each block to the set of blocks it is control-dependent on.

    Ferrante-Ottenstein-Warren: ``b`` is control dependent on ``a`` iff
    ``a`` has a successor ``s`` such that ``b`` post-dominates ``s`` but
    ``b`` does not strictly post-dominate ``a``.
    """
    pdom = postdominator_tree(func)
    deps: dict[str, set[str]] = {name: set() for name in func.blocks}
    for a, block in func.blocks.items():
        successors = block.successors()
        if len(successors) < 2:
            continue
        for s in successors:
            # Walk the post-dominator chain from s up to (but excluding)
            # a's immediate post-dominator: those blocks depend on a.
            stop = pdom.idom[a] if a != pdom.root else pdom.root
            node = s
            while node != stop:
                if node != a:
                    deps[node].add(a)
                if node == pdom.root:
                    break
                node = pdom.idom[node]
    return deps
