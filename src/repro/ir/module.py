"""IR containers: basic blocks, functions, modules.

A :class:`Module` is the unit the analyses and the runtime operate on.  It
carries the lowered functions plus the nonvolatile data layout and sensor
channels copied from the source program.

Label discipline: labels are assigned once, monotonically, per function.
Instrumentation passes that insert instructions (atomic region markers)
request *fresh* labels -- existing labels are never renumbered, so policy
references held by the analyses stay valid across instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.ir import instructions as ir
from repro.lang import ast as lang_ast


class IRError(Exception):
    """Raised for malformed IR (missing blocks, bad labels, ...)."""


@dataclass
class BasicBlock:
    """A straight-line run of instructions plus one terminator."""

    name: str
    instrs: list[ir.Instr] = field(default_factory=list)
    terminator: Optional[ir.Terminator] = None

    def successors(self) -> list[str]:
        if self.terminator is None:
            return []
        return self.terminator.successors()

    def all_instrs(self) -> Iterator[ir.Instr]:
        """Instructions in execution order, terminator last."""
        yield from self.instrs
        if self.terminator is not None:
            yield self.terminator


@dataclass
class IRFunction:
    name: str
    params: list[lang_ast.Param]
    blocks: dict[str, BasicBlock] = field(default_factory=dict)
    entry: str = "entry"
    exit: str = "exit"
    #: Names bound locally (params, lets, compiler temps); a read of a name
    #: not in this set resolves to nonvolatile global memory.
    locals: set[str] = field(default_factory=set)
    _next_label: int = 0

    # -- construction ---------------------------------------------------------

    def new_block(self, hint: str = "bb") -> BasicBlock:
        name = hint if hint not in self.blocks else f"{hint}{len(self.blocks)}"
        index = 0
        while name in self.blocks:
            index += 1
            name = f"{hint}{len(self.blocks)}_{index}"
        block = BasicBlock(name=name)
        self.blocks[name] = block
        return block

    def fresh_label(self) -> int:
        self._next_label += 1
        return self._next_label

    def stamp(self, instr: ir.Instr) -> ir.Instr:
        """Give ``instr`` a fresh uid in this function."""
        instr.uid = ir.InstrId(self.name, self.fresh_label())
        return instr

    # -- queries ----------------------------------------------------------------

    def block(self, name: str) -> BasicBlock:
        try:
            return self.blocks[name]
        except KeyError:
            raise IRError(f"no block '{name}' in function '{self.name}'") from None

    def all_instrs(self) -> Iterator[ir.Instr]:
        for block in self.blocks.values():
            yield from block.all_instrs()

    def instr_by_label(self, label: int) -> ir.Instr:
        for instr in self.all_instrs():
            if instr.uid.label == label:
                return instr
        raise IRError(f"no instruction labeled {label} in '{self.name}'")

    def block_of(self, uid: ir.InstrId) -> str:
        """Name of the block containing the instruction ``uid``."""
        if uid.func != self.name:
            raise IRError(f"{uid} does not belong to function '{self.name}'")
        for block in self.blocks.values():
            for instr in block.all_instrs():
                if instr.uid == uid:
                    return block.name
        raise IRError(f"instruction {uid} not found in '{self.name}'")

    def position_of(self, uid: ir.InstrId) -> tuple[str, int]:
        """``(block, index)`` of a non-terminator instruction ``uid``.

        Terminators report index ``len(instrs)`` (one past the body).
        """
        for block in self.blocks.values():
            for idx, instr in enumerate(block.instrs):
                if instr.uid == uid:
                    return block.name, idx
            if block.terminator is not None and block.terminator.uid == uid:
                return block.name, len(block.instrs)
        raise IRError(f"instruction {uid} not found in '{self.name}'")

    def predecessors(self) -> dict[str, list[str]]:
        preds: dict[str, list[str]] = {name: [] for name in self.blocks}
        for block in self.blocks.values():
            for succ in block.successors():
                preds[succ].append(block.name)
        return preds

    @property
    def by_ref_params(self) -> set[str]:
        return {p.name for p in self.params if p.by_ref}


@dataclass
class Module:
    """A lowered program: IR functions plus data layout and channels."""

    functions: dict[str, IRFunction]
    globals: dict[str, int] = field(default_factory=dict)
    arrays: dict[str, list[int]] = field(default_factory=dict)
    channels: list[str] = field(default_factory=list)
    entry: str = "main"
    _region_counter: int = 0

    def fresh_region(self, prefix: str = "r") -> str:
        """Allocate a module-unique atomic region id (``aID`` in the paper)."""
        self._region_counter += 1
        return f"{prefix}{self._region_counter}"

    def function(self, name: str) -> IRFunction:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function '{name}' in module") from None

    def instr(self, uid: ir.InstrId) -> ir.Instr:
        return self.function(uid.func).instr_by_label(uid.label)

    def all_instrs(self) -> Iterator[ir.Instr]:
        for func in self.functions.values():
            yield from func.all_instrs()

    def input_instrs(self) -> list[ir.InputInstr]:
        return [i for i in self.all_instrs() if isinstance(i, ir.InputInstr)]

    def annot_instrs(self) -> list[ir.AnnotInstr]:
        return [i for i in self.all_instrs() if isinstance(i, ir.AnnotInstr)]

    def nonvolatile_names(self) -> set[str]:
        return set(self.globals) | set(self.arrays)
