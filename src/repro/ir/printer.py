"""Human-readable IR dump, in the spirit of ``llvm-dis`` output.

Used by tests (golden comparisons on structure) and by the examples to show
what Ocelot inserted.
"""

from __future__ import annotations

from repro.ir import instructions as ir
from repro.ir.module import IRFunction, Module
from repro.lang.printer import print_expr


def _operand(op: ir.Operand) -> str:
    if isinstance(op, ir.RefArg):
        return str(op)
    return print_expr(op)


def print_instr(instr: ir.Instr) -> str:
    label = f"%{instr.uid.label}"
    if isinstance(instr, ir.Assign):
        tag = "" if instr.scope == ir.SCOPE_LOCAL else " [nv]"
        return f"{label}: {instr.dest} := {print_expr(instr.expr)}{tag}"
    if isinstance(instr, ir.InputInstr):
        return f"{label}: {instr.dest} := input({instr.channel})"
    if isinstance(instr, ir.CallInstr):
        args = ", ".join(_operand(a) for a in instr.args)
        dest = f"{instr.dest} := " if instr.dest else ""
        return f"{label}: {dest}call {instr.func}({args})"
    if isinstance(instr, ir.StoreRefInstr):
        return f"{label}: *{instr.param} := {print_expr(instr.expr)}"
    if isinstance(instr, ir.StoreArr):
        return (
            f"{label}: {instr.array}[{print_expr(instr.index)}] := "
            f"{print_expr(instr.expr)}"
        )
    if isinstance(instr, ir.AnnotInstr):
        if instr.set_id is None:
            return f"{label}: annot {instr.kind}({instr.var})"
        return f"{label}: annot {instr.kind}({instr.var}, {instr.set_id})"
    if isinstance(instr, ir.AtomicStart):
        omega = ", ".join(sorted(instr.omega))
        return f"{label}: atomic_start {instr.region} [{instr.origin}] omega={{{omega}}}"
    if isinstance(instr, ir.AtomicEnd):
        return f"{label}: atomic_end {instr.region} [{instr.origin}]"
    if isinstance(instr, ir.OutputInstr):
        args = ", ".join(print_expr(a) for a in instr.args)
        return f"{label}: {instr.op}({args})"
    if isinstance(instr, ir.WorkInstr):
        return f"{label}: work({print_expr(instr.cycles)})"
    if isinstance(instr, ir.SkipInstr):
        return f"{label}: skip"
    if isinstance(instr, ir.Jump):
        return f"{label}: br {instr.target}"
    if isinstance(instr, ir.Branch):
        return (
            f"{label}: br {print_expr(instr.cond)} ? {instr.true_target} "
            f": {instr.false_target}"
        )
    if isinstance(instr, ir.RetInstr):
        if instr.expr is None:
            return f"{label}: ret"
        return f"{label}: ret {print_expr(instr.expr)}"
    raise TypeError(f"unknown instruction {type(instr).__name__}")


def print_ir_function(func: IRFunction) -> str:
    params = ", ".join(("&" + p.name) if p.by_ref else p.name for p in func.params)
    lines = [f"fn {func.name}({params}) {{"]
    ordered = [func.entry]
    ordered += [n for n in func.blocks if n not in (func.entry, func.exit)]
    if func.exit != func.entry:
        ordered.append(func.exit)
    for name in ordered:
        block = func.blocks[name]
        lines.append(f"  {name}:")
        for instr in block.all_instrs():
            lines.append(f"    {print_instr(instr)}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    chunks: list[str] = []
    if module.channels:
        chunks.append("; channels: " + ", ".join(module.channels))
    for name, value in module.globals.items():
        chunks.append(f"; nonvolatile {name} = {value}")
    for name, values in module.arrays.items():
        chunks.append(f"; nonvolatile {name}[{len(values)}]")
    for func in module.functions.values():
        chunks.append(print_ir_function(func))
    return "\n\n".join(chunks) + "\n"
