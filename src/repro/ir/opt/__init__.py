"""IR-level check optimization (the ``opt-checks`` toolchain pass).

The paper's claim is that enforcing fresh/consistent inputs is cheap
because the compiler only places the checks the policies require; this
layer closes the remaining gap between "the checks the policies require"
and "the checks the runtime must actually execute".  Built on the
dataflow substrate (:mod:`repro.analysis.dataflow` +
:mod:`repro.analysis.availability`), it rewrites the detector plan with
three passes -- redundant-check elimination, check hoisting, and check
coalescing -- while preserving bit-exact observation parity with the
unoptimized plan (enforced by ``tests/test_opt_parity.py``).

Public API: :func:`optimize_checks` produces an :class:`OptimizedPlan`
(a drop-in detector plan); :func:`verify_plan` checks its soundness
invariants (run automatically under ``BuildContext.debug``).
"""

from repro.ir.opt.passes import OptimizeResult, optimize_checks
from repro.ir.opt.plan import (
    DataflowInfo,
    OptimizedPlan,
    PassStats,
    verify_plan,
)

__all__ = [
    "DataflowInfo",
    "OptimizeResult",
    "OptimizedPlan",
    "PassStats",
    "optimize_checks",
    "verify_plan",
]
