"""Optimized check plans: the artifact the check optimizer produces.

An :class:`OptimizedPlan` is a drop-in :class:`~repro.runtime.detector.
DetectorPlan` whose runtime form (:meth:`runtime_actions`) was rewritten
by the :mod:`repro.ir.opt.passes` pipeline.  The inherited ``checks``
mapping keeps the *baseline* site -> checks view (introspection, failure
injection, and ``total_checks`` stay meaningful), while ``actions``
carries what the engines actually execute.  ``verify_plan`` checks the
structural soundness invariants and runs after the optimizer under
``BuildContext.debug`` so optimizer bugs fail the build with the
offending detail named.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.provenance import Chain
from repro.runtime.detector import (
    OP_CONSUME,
    OP_FULL,
    OP_MARKER,
    Check,
    DetectorPlan,
    SiteActions,
)


@dataclass(frozen=True)
class PassStats:
    """One optimization pass's before/after static-query counts.

    ``checks_before``/``checks_after`` count *static detector queries*:
    the bit-vector scans one execution of every site would perform (FULL
    ops plus hoisted queries; markers, consumes, and elided checks count
    zero).  This is the "checks before/after" diagnostic the build
    surfaces per pass.
    """

    pass_name: str
    checks_before: int
    checks_after: int
    detail: str = ""

    def render(self) -> str:
        return (
            f"{self.pass_name}: {self.checks_before} -> "
            f"{self.checks_after} static queries"
            + (f" ({self.detail})" if self.detail else "")
        )


@dataclass
class DataflowInfo:
    """Summary of the dataflow runs behind one optimized plan.

    ``at_sites`` maps every baseline check site to the input chains the
    availability analysis proved must-executed there -- the evidence for
    each elimination decision (``python -m repro build --emit dataflow``).
    """

    contexts: int = 0
    rounds: int = 0
    at_sites: dict[Chain, frozenset[Chain]] = field(default_factory=dict)


@dataclass
class OptimizedPlan(DetectorPlan):
    """A detector plan with an optimized runtime form.

    Inherited fields keep their baseline meaning (``checks`` is the
    unoptimized site -> checks map; ``bit_chains`` is untouched -- bit
    *setting* is never optimized away, which is what keeps nonvolatile
    state bit-identical to the baseline build).  ``trigger_uids`` is
    recomputed from the optimized actions, so sites whose every check
    was eliminated vanish from the engines' trigger set entirely: no
    closure, no chain build, no per-step cost.
    """

    actions: dict[Chain, SiteActions] = field(default_factory=dict)
    #: checks statically proven non-firing and dropped outright
    elided: tuple[Check, ...] = ()
    passes: tuple[PassStats, ...] = ()
    #: the baseline plan's total check count (static)
    baseline_checks: int = 0

    def runtime_actions(self) -> dict[Chain, SiteActions]:
        return self.actions

    @property
    def static_queries(self) -> int:
        """Static detector queries across all sites (one execution each)."""
        return sum(a.static_queries for a in self.actions.values())


def _query_requirements(plan: OptimizedPlan) -> dict[int, frozenset[Chain]]:
    """Query id -> required set, over FULL anchors and hoisted queries."""
    queries: dict[int, frozenset[Chain]] = {}
    for actions in plan.actions.values():
        for hoist in actions.hoists:
            queries[hoist.hid] = frozenset(hoist.required)
        for op in actions.ops:
            if op.mode == OP_FULL and op.hid >= 0:
                queries[op.hid] = frozenset(op.check.required)
    return queries


def verify_plan(baseline: DetectorPlan, plan: OptimizedPlan) -> None:
    """Check the soundness invariants of an optimized plan.

    Raises :class:`ValueError` naming the first violated invariant.  The
    invariants are exactly the preconditions of the bit-exact parity
    argument: every baseline check is accounted for exactly once, only
    consistent checks may be dropped silently, consumed results always
    come from a query at least as strong, fused scans cover their ops,
    and the bit-setting side of the detector is untouched.
    """
    elided_by_site: dict[Chain, list[Check]] = {}
    for check in plan.elided:
        elided_by_site.setdefault(check.site, []).append(check)
        if check.kind != "consistent":
            raise ValueError(
                f"elided check at {check.site} is '{check.kind}'; only "
                "consistent checks may be dropped without a use marker"
            )

    queries = _query_requirements(plan)

    for site, checks in baseline.checks.items():
        actions = plan.actions.get(site)
        kept = list(actions.ops) if actions is not None else []
        elided = list(elided_by_site.get(site, []))
        # `kept` must be `checks` with the elided ones removed, in order.
        walk = iter(checks)
        for op in kept:
            for candidate in walk:
                if candidate == op.check:
                    break
                if candidate not in elided:
                    raise ValueError(
                        f"check {candidate.pid} at {site} is neither kept "
                        "nor recorded as elided"
                    )
                elided.remove(candidate)
            else:
                raise ValueError(
                    f"op for {op.check.pid} at {site} does not match any "
                    "baseline check"
                )
        for candidate in walk:
            if candidate not in elided:
                raise ValueError(
                    f"trailing check {candidate.pid} at {site} is neither "
                    "kept nor recorded as elided"
                )
            elided.remove(candidate)
        if elided:
            raise ValueError(f"extra elided checks recorded at {site}")

        for op in kept:
            if op.mode == OP_MARKER and op.check.kind != "fresh":
                raise ValueError(
                    f"marker for non-fresh check {op.check.pid} at {site}"
                )
            if op.mode == OP_CONSUME:
                required = queries.get(op.hid)
                if required is None:
                    raise ValueError(
                        f"consume at {site} references unknown query "
                        f"{op.hid}"
                    )
                if not frozenset(op.check.required) <= required:
                    raise ValueError(
                        f"consume at {site} needs chains its query {op.hid} "
                        "does not cover"
                    )

    for site, actions in plan.actions.items():
        if site not in baseline.checks and not actions.hoists:
            raise ValueError(f"action site {site} has no baseline checks")
        if actions.fused is not None:
            union: set[Chain] = set()
            for op in actions.ops:
                if op.mode == OP_FULL:
                    union.update(op.check.required)
            if union != set(actions.fused):
                raise ValueError(
                    f"fused scan at {site} does not cover its FULL ops"
                )

    if plan.bit_chains != baseline.bit_chains:
        raise ValueError("optimized plan altered the detector bit positions")
    expected_triggers = frozenset(site.op for site in plan.actions)
    if plan.trigger_uids != expected_triggers:
        raise ValueError("optimized trigger uids disagree with the actions")
    if plan.static_queries > baseline.total_checks:
        raise ValueError(
            f"optimized plan has {plan.static_queries} static queries, "
            f"more than the baseline's {baseline.total_checks}"
        )
