"""Exhaustive-search crosscheck of the check optimizer's eliminations.

The OptimizeChecks pass drops or downgrades runtime checks it proves can
never fire: elided checks disappear outright, and ``fresh`` checks whose
required chains are must-available become MARKER ops that emit the
``use`` observation but never a violation
(:meth:`~repro.runtime.executor.MachineCore._run_site_actions`).  Those
proofs rest on the availability analysis; this module re-derives them by
brute force.  It runs the bounded model checker
(:mod:`repro.verify.explorer`) over the **baseline** (unoptimized)
detector plan in collect-all mode -- every reachable failure schedule
within the bound, recording every ``(policy, site)`` that fires -- and
asserts that no optimizer-eliminated check is among them.

The two oracles are independent by construction: the explorer executes
the stock engines over the baseline plan and never consults the
availability facts (pruning is disabled here by default so the search
is exhaustive), while the optimizer never executes anything.  Agreement
on generated programs (see ``tests/test_verify_crosscheck.py``) is
therefore real evidence for both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.provenance import Chain
from repro.core.passes import CompiledProgram
from repro.energy.costs import DEFAULT_COSTS, CostModel
from repro.runtime.detector import OP_MARKER, build_detector_plan
from repro.runtime.engine import ENGINE_FAST
from repro.sensors.environment import Environment
from repro.verify.explorer import Verdict, VerifyBounds, verify_program


@dataclass(frozen=True)
class CrosscheckResult:
    """Outcome of one optimizer-vs-explorer comparison."""

    #: (pid, site) pairs the optimizer claims can never fire
    eliminated: frozenset[tuple[str, Chain]]
    #: (pid, site) pairs that fired somewhere in the explored space
    fired: frozenset[tuple[str, Chain]]
    #: eliminated checks the exhaustive search saw firing -- optimizer bugs
    offenders: tuple[tuple[str, Chain], ...]
    verdict: Verdict

    @property
    def ok(self) -> bool:
        return not self.offenders

    @property
    def complete(self) -> bool:
        """Did the search cover the whole bound (nothing cut early)?"""
        stats = self.verdict.stats
        return stats.truncated == 0 and stats.stuck == 0

    def render(self) -> str:
        status = "ok" if self.ok else "OPTIMIZER BUG"
        lines = [
            f"crosscheck: {status} -- {len(self.eliminated)} eliminated "
            f"check(s) vs {len(self.fired)} firing site(s) in "
            f"{self.verdict.stats.explored} explored state(s)"
        ]
        for pid, site in self.offenders:
            lines.append(f"  eliminated check {pid} at {site} FIRED")
        return "\n".join(lines)


def eliminated_checks(plan) -> frozenset[tuple[str, Chain]]:
    """Every (pid, site) the optimized ``plan`` promises never fires:
    elided checks plus MARKER-downgraded ops."""
    out: set[tuple[str, Chain]] = set()
    for check in plan.elided:
        out.add((check.pid, check.site))
    for site, actions in plan.actions.items():
        for op in actions.ops:
            if op.mode == OP_MARKER:
                out.add((op.check.pid, site))
    return frozenset(out)


def crosscheck_optimized_plan(
    compiled: CompiledProgram,
    env: Environment,
    bounds: Optional[VerifyBounds] = None,
    engine: str = ENGINE_FAST,
    costs: CostModel = DEFAULT_COSTS,
    prune: bool = False,
    optimized: Optional[object] = None,
) -> CrosscheckResult:
    """Explore every failure schedule within ``bounds`` under the
    *baseline* detector plan and compare against the optimizer's
    eliminations.

    ``compiled`` must carry an optimized plan (``check_plan``), or one
    must be supplied via ``optimized``.  Pruning defaults to off so the
    oracle does not share the availability analysis with the system
    under test.
    """
    plan = optimized if optimized is not None else compiled.check_plan
    if plan is None:
        raise ValueError(
            f"build '{compiled.config}' has no optimized check plan to "
            "crosscheck (use an *-opt configuration)"
        )
    baseline = build_detector_plan(compiled.policies)
    verdict = verify_program(
        compiled,
        env,
        bounds=bounds,
        engine=engine,
        costs=costs,
        plan=baseline,
        prune=prune,
        collect_all=True,
        minimize=False,
    )
    eliminated = eliminated_checks(plan)
    offenders = tuple(sorted(eliminated & verdict.fired))
    return CrosscheckResult(
        eliminated=eliminated,
        fired=verdict.fired,
        offenders=offenders,
        verdict=verdict,
    )
