"""The check-optimization passes (redundancy, hoisting, coalescing).

Rewrites a baseline :class:`~repro.runtime.detector.DetectorPlan` into an
:class:`~repro.ir.opt.plan.OptimizedPlan` with strictly fewer detector
queries while keeping the emitted observation stream bit-identical to
the baseline in *every* power-failure interleaving.  Three passes run in
order, each individually toggleable (the ``ocelot-nohoist`` /
``ocelot-nocoalesce`` ablation configs):

1. **Redundant-check elimination** -- a check whose required chains are
   all must-available at its site (:mod:`repro.analysis.availability`)
   can never fire: a dominating execution of the same taint chain's
   inputs -- within the same atomic region, hence replayed after any
   reboot -- already established every bit the check would test.
   Consistent checks (which emit nothing unless they fire) are dropped
   outright; fresh checks keep their unconditional ``use`` observation
   as a query-free marker.  Additionally, a check dominated by an
   equivalent-or-stronger FULL check (required superset, no required
   input executing in between) is *subsumed*: it consumes the dominating
   query's cached missing-set instead of re-scanning the bit vector.
   The cache is volatile -- cleared on every reboot -- and a cache miss
   falls back to a direct scan, so the derived observations are exact.

2. **Check hoisting** -- sibling checks with the same required set on
   all paths out of a branch (e.g. the use sites in both arms of
   ``if x > t``) move their *query* to the closest common dominator: a
   single hoisted scan at the dominator's terminator feeds every arm's
   check by consumption.  A backward all-paths analysis guarantees every
   path from the anchor reaches a consuming site, so the hoisted query
   never executes more often than the checks it replaced.

3. **Check coalescing** -- the FULL queries remaining at one site fuse
   into a single scan over the ordered union of their required chains
   (adjacent checks over the same region/omega window become one
   detector query); each check's missing-set is then sliced out of the
   shared result, preserving per-check observation order and content.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.availability import AvailabilityAnalysis, AvailabilityResult
from repro.analysis.dataflow import (
    BACKWARD,
    AllPathsLattice,
    FunctionDataflow,
    ReachInfo,
)
from repro.analysis.policies import PolicyDecls
from repro.analysis.provenance import Chain, Context
from repro.ir import instructions as ir
from repro.ir.module import IRFunction, Module
from repro.ir.opt.plan import DataflowInfo, OptimizedPlan, PassStats
from repro.runtime.detector import (
    OP_CONSUME,
    OP_FULL,
    OP_MARKER,
    Check,
    CheckOp,
    DetectorPlan,
    HoistedQuery,
    SiteActions,
    build_detector_plan,
)


@dataclass
class OptimizeResult:
    """Everything the OptimizeChecks pass stores on the build context."""

    plan: OptimizedPlan
    baseline: DetectorPlan
    dataflow: DataflowInfo


class _Entry:
    """One baseline check's mutable state while the passes rewrite it."""

    __slots__ = ("check", "mode", "hid")

    def __init__(self, check: Check) -> None:
        self.check = check
        self.mode = OP_FULL
        self.hid = -1


@dataclass
class _Scope:
    """Per-(context, function) geometry shared by subsumption and hoisting."""

    context: Context
    func: IRFunction
    flow: FunctionDataflow
    reach: ReachInfo
    #: uid -> (block name, position; terminators sit at len(instrs))
    positions: dict[ir.InstrId, tuple[str, int]] = field(default_factory=dict)

    @staticmethod
    def of(context: Context, func: IRFunction) -> "_Scope":
        flow = FunctionDataflow(func)
        positions: dict[ir.InstrId, tuple[str, int]] = {}
        for name, block in func.blocks.items():
            for idx, instr in enumerate(block.instrs):
                positions[instr.uid] = (name, idx)
            if block.terminator is not None:
                positions[block.terminator.uid] = (name, len(block.instrs))
        return _Scope(
            context=context,
            func=func,
            flow=flow,
            reach=ReachInfo.of(flow),
            positions=positions,
        )

    def executes_before(
        self, a: tuple[str, int], b: tuple[str, int]
    ) -> bool:
        """Does position ``a`` execute before ``b`` on every path to ``b``?"""
        if a[0] == b[0]:
            return a[1] < b[1]
        return self.flow.domtree.strictly_dominates(a[0], b[0])

    def path_clear(
        self,
        a: tuple[str, int],
        b: tuple[str, int],
        required: frozenset[Chain],
    ) -> bool:
        """No input chain of ``required`` can execute between ``a`` and ``b``.

        Conservatively scans every block on some ``a``-to-``b`` path
        (including cycles through either endpoint's block); a kill is an
        input instruction whose chain is in ``required`` or a call whose
        subtree could execute one.
        """
        context = self.context
        blocks = self.func.blocks

        def kills(instr: ir.Instr) -> bool:
            if isinstance(instr, ir.InputInstr):
                return Chain.of(context, instr.uid) in required
            if isinstance(instr, ir.CallInstr):
                prefix = context + (instr.uid,)
                return any(r.extends(prefix) for r in required)
            return False

        a_block, a_idx = a
        b_block, b_idx = b
        for name in self.reach.between(a_block, b_block):
            instrs = blocks[name].instrs
            # Any block between the anchor and the site is scanned in
            # full unless position information tightens the range below.
            ranges = [range(len(instrs))]
            if name == a_block and name == b_block:
                if not self.reach.cyclic(name):
                    ranges = [range(a_idx + 1, min(b_idx, len(instrs)))]
            elif name == a_block:
                # Positions before the anchor are always followed by the
                # anchor itself within the block, so they can never sit
                # between its *last* execution and the site.
                ranges = [range(a_idx + 1, len(instrs))]
            elif name == b_block and not self.reach.cyclic(name):
                # A cycle through the site's block can execute the block
                # tail between consecutive site visits without re-passing
                # the anchor; acyclic, only the prefix before the site
                # can run after the anchor.
                ranges = [range(min(b_idx, len(instrs)))]
            for rng in ranges:
                for idx in rng:
                    if kills(instrs[idx]):
                        return False
        return True


class _Anticipable:
    """Backward all-paths problem: every path ahead hits a consuming site."""

    name = "hoist-anticipability"
    direction = BACKWARD
    lattice = AllPathsLattice()

    def __init__(self, func: IRFunction, site_blocks: frozenset[str]) -> None:
        self._func = func
        self._site_blocks = site_blocks

    def boundary(self) -> bool:
        return False  # past the exit there are no more sites

    def transfer(self, block_name: str, fact: bool) -> bool:
        return block_name in self._site_blocks or fact


# ---------------------------------------------------------------------------
# The optimizer driver


def optimize_checks(
    module: Module,
    policies: PolicyDecls,
    eliminate: bool = True,
    hoist: bool = True,
    coalesce: bool = True,
) -> OptimizeResult:
    """Build the baseline plan for ``policies`` and optimize its checks."""
    baseline = build_detector_plan(policies)
    avail = AvailabilityAnalysis(module).run()

    sites: dict[Chain, list[_Entry]] = {
        site: [_Entry(check) for check in checks]
        for site, checks in baseline.checks.items()
    }
    hoists: dict[Chain, list[HoistedQuery]] = {}
    fused_sites: set[Chain] = set()
    elided: list[Check] = []
    passes: list[PassStats] = []
    next_hid = 0

    def count_queries() -> int:
        total = sum(len(queries) for queries in hoists.values())
        for site, entries in sites.items():
            full = sum(1 for e in entries if e.mode == OP_FULL)
            total += 1 if site in fused_sites and full else full
        return total

    scopes: dict[tuple[Context, str], _Scope] = {}

    def scope_of(site: Chain) -> _Scope:
        key = (site.context, site.op.func)
        scope = scopes.get(key)
        if scope is None:
            scope = _Scope.of(site.context, module.function(site.op.func))
            scopes[key] = scope
        return scope

    # -- pass 1: redundant-check elimination --------------------------------------
    before = count_queries()
    if eliminate:
        dropped = markers = consumed = 0
        for site, entries in sites.items():
            available = avail.at(site)
            for entry in list(entries):
                if not frozenset(entry.check.required) <= available:
                    continue
                if entry.check.kind == "consistent":
                    entries.remove(entry)
                    elided.append(entry.check)
                    dropped += 1
                else:
                    entry.mode = OP_MARKER
                    markers += 1

        # Dominating-check subsumption: group surviving FULL checks per
        # (context, function) scope and let dominated ones consume.
        by_scope: dict[tuple[Context, str], list[tuple[Chain, _Entry]]] = {}
        for site, entries in sites.items():
            for entry in entries:
                if entry.mode == OP_FULL:
                    by_scope.setdefault(
                        (site.context, site.op.func), []
                    ).append((site, entry))
        for (_context, _func_name), refs in sorted(
            by_scope.items(), key=lambda kv: (kv[0][0], kv[0][1])
        ):
            scope = scope_of(refs[0][0])
            ordered = sorted(
                refs,
                key=lambda ref, scope=scope: (
                    scope.flow.domtree.depth(scope.positions[ref[0].op][0])
                    if scope.positions[ref[0].op][0]
                    in scope.flow.domtree.idom
                    else 0,
                    scope.positions[ref[0].op],
                    ref[1].check.pid,
                ),
            )
            for idx, (site, entry) in enumerate(ordered):
                pos = scope.positions[site.op]
                if pos[0] not in scope.flow.domtree.idom:
                    continue  # unreachable block: leave the check alone
                need = frozenset(entry.check.required)
                for a_site, a_entry in ordered[:idx]:
                    if a_entry.mode != OP_FULL:
                        continue
                    if scope.positions[a_site.op][0] not in scope.flow.domtree.idom:
                        continue
                    if not need <= frozenset(a_entry.check.required):
                        continue
                    a_pos = scope.positions[a_site.op]
                    if a_pos == pos:
                        continue  # same instruction: coalescing territory
                    if not scope.executes_before(a_pos, pos):
                        continue
                    if not scope.path_clear(a_pos, pos, need):
                        continue
                    if a_entry.hid < 0:
                        a_entry.hid = next_hid
                        next_hid += 1
                    entry.mode = OP_CONSUME
                    entry.hid = a_entry.hid
                    consumed += 1
                    break
        passes.append(
            PassStats(
                "redundant-check elimination",
                before,
                count_queries(),
                detail=(
                    f"{dropped} dropped, {markers} downgraded to use "
                    f"markers, {consumed} subsumed by dominating checks"
                ),
            )
        )
    else:
        passes.append(
            PassStats("redundant-check elimination", before, before, "disabled")
        )

    # -- pass 2: check hoisting -----------------------------------------------------
    before = count_queries()
    if hoist:
        hoisted_groups = 0
        by_group: dict[
            tuple[Context, str, frozenset[Chain]],
            list[tuple[Chain, _Entry]],
        ] = {}
        for site, entries in sites.items():
            for entry in entries:
                # Subsumption anchors (hid >= 0) already feed consumers;
                # converting them to CONSUME would orphan those query
                # ids, so they stay behind as direct queries.
                if entry.mode == OP_FULL and entry.hid < 0:
                    by_group.setdefault(
                        (
                            site.context,
                            site.op.func,
                            frozenset(entry.check.required),
                        ),
                        [],
                    ).append((site, entry))
        for (context, _func_name, need), members in sorted(
            by_group.items(),
            key=lambda kv: (kv[0][0], kv[0][1], sorted(kv[0][2])),
        ):
            if len(members) < 2:
                continue
            scope = scope_of(members[0][0])
            domtree = scope.flow.domtree
            blocks = [scope.positions[site.op][0] for site, _ in members]
            if any(name not in domtree.idom for name in blocks):
                continue  # a site in unreachable code: leave it alone
            anchor_block = domtree.common_ancestor(blocks)
            anchor_pos = (
                anchor_block,
                len(scope.func.blocks[anchor_block].instrs),
            )
            converted = [
                (site, entry)
                for site, entry in members
                if scope.positions[site.op][0] != anchor_block
                and scope.path_clear(
                    anchor_pos, scope.positions[site.op], need
                )
            ]
            if len(converted) < 2:
                continue
            site_blocks = frozenset(
                scope.positions[site.op][0] for site, _ in converted
            )
            anticipable = scope.flow.solve(
                _Anticipable(scope.func, site_blocks)
            )
            succs = scope.flow.successors[anchor_block]
            if not succs or not all(
                anticipable.out_fact(succ, False) for succ in succs
            ):
                continue
            anchor_term = scope.func.blocks[anchor_block].terminator
            assert anchor_term is not None  # verified IR
            anchor_chain = Chain.of(context, anchor_term.uid)
            query = HoistedQuery(hid=next_hid, required=tuple(sorted(need)))
            next_hid += 1
            hoists.setdefault(anchor_chain, []).append(query)
            for _site, entry in converted:
                entry.mode = OP_CONSUME
                entry.hid = query.hid
            hoisted_groups += 1
        passes.append(
            PassStats(
                "check hoisting",
                before,
                count_queries(),
                detail=f"{hoisted_groups} query group(s) hoisted to dominators",
            )
        )
    else:
        passes.append(PassStats("check hoisting", before, before, "disabled"))

    # -- pass 3: check coalescing ------------------------------------------------
    before = count_queries()
    if coalesce:
        for site, entries in sites.items():
            full = sum(1 for e in entries if e.mode == OP_FULL)
            if full >= 2:
                fused_sites.add(site)
        passes.append(
            PassStats(
                "check coalescing",
                before,
                count_queries(),
                detail=f"{len(fused_sites)} site(s) fused into single scans",
            )
        )
    else:
        passes.append(PassStats("check coalescing", before, before, "disabled"))

    # -- assemble the plan ---------------------------------------------------------
    actions: dict[Chain, SiteActions] = {}
    for site, entries in sites.items():
        ops = tuple(
            CheckOp(check=e.check, mode=e.mode, hid=e.hid) for e in entries
        )
        site_hoists = tuple(hoists.pop(site, ()))
        if not ops and not site_hoists:
            continue  # statically proven redundant: no closure at all
        fused = None
        if site in fused_sites:
            union: list[Chain] = []
            seen: set[Chain] = set()
            for op in ops:
                if op.mode == OP_FULL:
                    for chain in op.check.required:
                        if chain not in seen:
                            seen.add(chain)
                            union.append(chain)
            fused = tuple(union)
        actions[site] = SiteActions(
            site=site, ops=ops, hoists=site_hoists, fused=fused
        )
    for site, queries in hoists.items():  # anchors at check-free sites
        actions[site] = SiteActions(site=site, hoists=tuple(queries))

    plan = OptimizedPlan(
        bit_chains=baseline.bit_chains,
        checks=baseline.checks,
        trigger_uids=frozenset(site.op for site in actions),
        actions=actions,
        elided=tuple(elided),
        passes=tuple(passes),
        baseline_checks=baseline.total_checks,
    )
    dataflow = _dataflow_info(baseline, avail)
    return OptimizeResult(plan=plan, baseline=baseline, dataflow=dataflow)


def _dataflow_info(
    baseline: DetectorPlan, avail: AvailabilityResult
) -> DataflowInfo:
    return DataflowInfo(
        contexts=avail.contexts,
        rounds=avail.rounds,
        at_sites={site: avail.at(site) for site in baseline.checks},
    )
