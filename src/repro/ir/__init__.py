"""Intermediate representation: CFG functions, dominators, call graph.

This package plays the role LLVM plays for the paper's Ocelot prototype:
the analyses (taint, policies, region inference) and the runtime all
operate on this IR.
"""

from repro.ir.callgraph import CallGraph, CallSite, build_call_graph
from repro.ir.dominators import (
    DomTree,
    control_dependence,
    dominator_tree,
    postdominator_tree,
)
from repro.ir.instructions import InstrId
from repro.ir.lowering import LoweringOptions, lower_program
from repro.ir.module import BasicBlock, IRError, IRFunction, Module
from repro.ir.printer import print_instr, print_ir_function, print_module
from repro.ir.verify import verify_function, verify_module

__all__ = [
    "CallGraph",
    "CallSite",
    "build_call_graph",
    "DomTree",
    "control_dependence",
    "dominator_tree",
    "postdominator_tree",
    "InstrId",
    "LoweringOptions",
    "lower_program",
    "BasicBlock",
    "IRError",
    "IRFunction",
    "Module",
    "print_instr",
    "print_ir_function",
    "print_module",
    "verify_function",
    "verify_module",
]
