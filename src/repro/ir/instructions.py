"""IR instruction set.

The IR mirrors what Ocelot sees in LLVM: functions of basic blocks, where
each instruction has a unique ``(function, label)`` identity -- the
:class:`InstrId` -- used for provenance chains, policies, and region
placement, exactly as in Figure 5 of the paper.

Design notes:

* The IR is register-based but *not* SSA: locals are named slots.  Pure
  operator expressions stay as trees inside instructions (the analyses only
  care about calls, inputs, and definitions, which are always distinct
  instructions after lowering).
* Impure expressions (calls, inputs) are flattened into temporaries by the
  lowering pass so that every input operation and call site is an
  addressable instruction.
* ``AtomicStart`` / ``AtomicEnd`` are ordinary (non-terminator)
  instructions so that region inference can place them mid-block
  (Algorithm 1's ``truncate`` step works at instruction granularity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.lang import ast as lang_ast
from repro.lang.errors import SourceSpan


@dataclass(frozen=True, order=True)
class InstrId:
    """The paper's ``(f, l)`` pair: function name and instruction label."""

    func: str
    label: int

    def __str__(self) -> str:
        return f"({self.func}, {self.label})"


#: Labels not yet assigned by the owning function.
UNASSIGNED = -1


@dataclass
class Instr:
    """Base class for all IR instructions."""

    uid: InstrId = field(default=InstrId("?", UNASSIGNED), kw_only=True)
    span: SourceSpan = field(default_factory=SourceSpan.synthetic, kw_only=True)

    def defined_var(self) -> Optional[str]:
        """Name of the local this instruction defines, if any."""
        return None

    def used_exprs(self) -> list[lang_ast.Expr]:
        """Pure expression trees evaluated by this instruction."""
        return []


# -- operands ----------------------------------------------------------------


@dataclass(frozen=True)
class RefArg:
    """A by-reference call argument ``&name``."""

    name: str

    def __str__(self) -> str:
        return f"&{self.name}"


Operand = Union[lang_ast.Expr, RefArg]


# -- straight-line instructions ------------------------------------------------

#: Scope tags for :class:`Assign` destinations.
SCOPE_LOCAL = "local"
SCOPE_GLOBAL = "global"


@dataclass
class Assign(Instr):
    """``dest := e`` where ``e`` is a pure expression tree.

    ``scope`` records whether ``dest`` is a volatile local or a nonvolatile
    global -- the WAR/EMW analysis and the undo-log runtime key off this.
    """

    dest: str
    expr: lang_ast.Expr
    scope: str = SCOPE_LOCAL

    def defined_var(self) -> Optional[str]:
        return self.dest if self.scope == SCOPE_LOCAL else None

    def used_exprs(self) -> list[lang_ast.Expr]:
        return [self.expr]


@dataclass
class InputInstr(Instr):
    """``dest := IN()`` reading sensor ``channel`` -- the unit of provenance."""

    dest: str
    channel: str

    def defined_var(self) -> Optional[str]:
        return self.dest


@dataclass
class CallInstr(Instr):
    """``dest := f(args)``; ``dest`` is ``None`` for value-discarding calls."""

    dest: Optional[str]
    func: str
    args: list[Operand]

    def defined_var(self) -> Optional[str]:
        return self.dest

    def used_exprs(self) -> list[lang_ast.Expr]:
        return [a for a in self.args if not isinstance(a, RefArg)]

    def ref_args(self) -> list[str]:
        return [a.name for a in self.args if isinstance(a, RefArg)]


@dataclass
class StoreRefInstr(Instr):
    """``*p := e`` -- store through a by-reference parameter."""

    param: str
    expr: lang_ast.Expr

    def used_exprs(self) -> list[lang_ast.Expr]:
        return [self.expr]


@dataclass
class StoreArr(Instr):
    """``a[i] := e`` -- store into a nonvolatile array."""

    array: str
    index: lang_ast.Expr
    expr: lang_ast.Expr

    def used_exprs(self) -> list[lang_ast.Expr]:
        return [self.index, self.expr]


@dataclass
class AnnotInstr(Instr):
    """A timing annotation site: ``Fresh(var)`` or ``Consistent(var, n)``.

    This is the policy *declaration* instruction (the ``decl : (f, l)`` slot
    of Figure 5).  Binding-form annotations (``let fresh x = e``) lower to a
    definition of ``x`` immediately followed by an ``AnnotInstr``.
    """

    kind: str  # lang_ast.AnnotKind.FRESH or .CONSISTENT
    var: str
    set_id: Optional[int] = None


@dataclass
class AtomicStart(Instr):
    """Region start.  ``region`` names the region; ``omega`` is the
    checkpointed nonvolatile set, filled in by the WAR/EMW analysis.

    ``origin`` distinguishes programmer-written regions (``manual``),
    Ocelot-inferred regions (``inferred``), and the small UART guard regions
    around output operations (``uart``, Section 7.2).
    """

    region: str
    origin: str = "manual"
    omega: frozenset[str] = frozenset()


@dataclass
class AtomicEnd(Instr):
    region: str
    origin: str = "manual"


@dataclass
class OutputInstr(Instr):
    """Externally visible output: ``log``, ``alarm``, or ``send``."""

    op: str
    args: list[lang_ast.Expr]

    def used_exprs(self) -> list[lang_ast.Expr]:
        return list(self.args)


@dataclass
class WorkInstr(Instr):
    """``work(n)`` -- burn ``n`` cycles of compute (models processing)."""

    cycles: lang_ast.Expr

    def used_exprs(self) -> list[lang_ast.Expr]:
        return [self.cycles]


@dataclass
class SkipInstr(Instr):
    """The explicit no-op."""


# -- terminators --------------------------------------------------------------


@dataclass
class Terminator(Instr):
    """Base class for block terminators."""

    def successors(self) -> list[str]:
        return []


@dataclass
class Jump(Terminator):
    target: str

    def successors(self) -> list[str]:
        return [self.target]


@dataclass
class Branch(Terminator):
    cond: lang_ast.Expr
    true_target: str
    false_target: str

    def used_exprs(self) -> list[lang_ast.Expr]:
        return [self.cond]

    def successors(self) -> list[str]:
        return [self.true_target, self.false_target]


@dataclass
class RetInstr(Terminator):
    expr: Optional[lang_ast.Expr]

    def used_exprs(self) -> list[lang_ast.Expr]:
        return [self.expr] if self.expr is not None else []


def used_var_names(instr: Instr) -> set[str]:
    """All variable names read by ``instr`` (through any expression operand).

    For calls, by-reference arguments count as uses of the referenced name
    (passing ``&y`` reads the binding even though the value flows back).
    """
    names: set[str] = set()
    for expr in instr.used_exprs():
        names |= lang_ast.free_vars(expr)
    if isinstance(instr, CallInstr):
        names.update(instr.ref_args())
    if isinstance(instr, StoreRefInstr):
        names.add(instr.param)
    if isinstance(instr, AnnotInstr):
        names.add(instr.var)
    return names
