"""Lowering: labeled AST -> CFG-based IR.

The pass performs, per function:

* **Impure-expression flattening.**  Calls and input operations nested in
  expressions are hoisted into compiler temporaries (``%tN``) so that every
  call site and every input operation is a distinct, labeled instruction --
  the unit of provenance the analyses need.
* **Structured control flow to CFG.**  ``if`` becomes a two-way branch with
  a join block; ``repeat n`` becomes a counted loop (hidden counter
  ``%repN``); ``return`` stores to ``%ret`` and jumps to the unified exit
  block.  The single exit block post-dominates every path -- the paper
  relies on exactly this "return landing-pad" property for its
  post-dominator queries (Section 6.2).
* **Annotations.**  Binding annotations (``let fresh x = e``) lower to the
  definition of ``x`` followed by an :class:`~repro.ir.instructions.AnnotInstr`;
  statement annotations (``Fresh(x);``) lower to the same instruction.
* **Manual atomic regions.** ``atomic { ... }`` brackets its lowered body
  with ``AtomicStart`` / ``AtomicEnd``.  A ``return`` inside open regions
  emits the pending ``AtomicEnd``s first so the static bracket structure
  stays balanced on every path.
* **UART guards** (optional, on by default to match Section 7.2): each
  output operation (``log`` / ``send`` / ``alarm``) is wrapped in a tiny
  atomic region with ``origin="uart"``, the constant-overhead guard the
  paper applies to all configurations.

Unreachable blocks created by early returns are pruned at the end, so the
dominator analyses see only reachable CFG.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir import instructions as ir
from repro.ir.module import BasicBlock, IRFunction, Module
from repro.lang import ast
from repro.lang.errors import SemanticError
from repro.lang.validate import ProgramInfo, validate_program

RET_SLOT = "%ret"


@dataclass
class LoweringOptions:
    """Knobs for the lowering pass.

    ``guard_outputs`` wraps every output instruction in a small ``uart``
    atomic region (Section 7.2: "calls to the UART were guarded by a small
    atomic region, generating a constant overhead for all configurations").
    ``keep_manual_atomics`` set to False strips programmer regions, which
    the JIT-only baseline uses.
    ``unroll_loops`` replicates ``repeat`` bodies at compile time, the
    paper's treatment of bounded loops ("bound loops can be unrolled to if
    statements", Section 4.1).  Unrolling is semantically load-bearing: a
    consistent set sampled in a loop needs one static input operation per
    dynamic sample for a single region to cover the whole set.  Disabling
    it produces genuine CFG loops (useful for dominator-analysis tests).
    """

    guard_outputs: bool = True
    keep_manual_atomics: bool = True
    unroll_loops: bool = True


class _FunctionLowerer:
    def __init__(
        self,
        module: Module,
        program: ast.Program,
        func: ast.FuncDecl,
        info: ProgramInfo,
        options: LoweringOptions,
    ):
        self._module = module
        self._program = program
        self._source = func
        self._options = options
        self._info = info
        self._ir = IRFunction(name=func.name, params=list(func.params))
        self._ir.locals.update(p.name for p in func.params)
        self._temp_counter = 0
        self._repeat_counter = 0
        self._open_regions: list[str] = []
        self._has_ret_value = info.functions[func.name].has_return_value

        entry = self._ir.new_block("entry")
        self._ir.entry = entry.name
        exit_block = self._ir.new_block("exit")
        self._ir.exit = exit_block.name
        ret_expr = ast.Var(name=RET_SLOT) if self._has_ret_value else None
        exit_block.terminator = self._ir.stamp(ir.RetInstr(expr=ret_expr))
        self._current: BasicBlock | None = entry

    # -- emission helpers -------------------------------------------------------

    def _emit(self, instr: ir.Instr, span=None) -> ir.Instr:
        if self._current is None:
            # Dead code after a return; create an unreachable block so the
            # lowering stays simple, pruned later.
            self._current = self._ir.new_block("dead")
        if span is not None:
            instr.span = span
        self._ir.stamp(instr)
        self._current.instrs.append(instr)
        return instr

    def _terminate(self, term: ir.Terminator, span=None) -> None:
        if self._current is None:
            self._current = self._ir.new_block("dead")
        if span is not None:
            term.span = span
        self._ir.stamp(term)
        self._current.terminator = term
        self._current = None

    def _start_block(self, hint: str) -> BasicBlock:
        block = self._ir.new_block(hint)
        self._current = block
        return block

    def _fresh_temp(self) -> str:
        self._temp_counter += 1
        name = f"%t{self._temp_counter}"
        self._ir.locals.add(name)
        return name

    # -- expressions -------------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> ast.Expr:
        """Return a pure expression, hoisting calls and inputs into temps."""
        if isinstance(expr, (ast.IntLit, ast.BoolLit, ast.Var, ast.Ref)):
            return expr
        if isinstance(expr, ast.Input):
            temp = self._fresh_temp()
            self._emit(
                ir.InputInstr(dest=temp, channel=expr.channel), span=expr.span
            )
            return ast.Var(name=temp, span=expr.span)
        if isinstance(expr, ast.Index):
            index = self._lower_expr(expr.index)
            return ast.Index(array=expr.array, index=index, span=expr.span)
        if isinstance(expr, ast.Unary):
            return ast.Unary(
                op=expr.op, operand=self._lower_expr(expr.operand), span=expr.span
            )
        if isinstance(expr, ast.Binary):
            lhs = self._lower_expr(expr.lhs)
            rhs = self._lower_expr(expr.rhs)
            return ast.Binary(op=expr.op, lhs=lhs, rhs=rhs, span=expr.span)
        if isinstance(expr, ast.Call):
            if expr.func in ast.PURE_BUILTINS:
                args = [self._lower_expr(a) for a in expr.args]
                return ast.Call(func=expr.func, args=args, span=expr.span)
            if expr.func in ast.EFFECT_BUILTINS:
                raise SemanticError(
                    f"'{expr.func}' produces no value and cannot be used in an "
                    "expression",
                    expr.span,
                )
            temp = self._fresh_temp()
            self._emit_call(dest=temp, call=expr)
            return ast.Var(name=temp, span=expr.span)
        raise SemanticError(f"cannot lower expression {type(expr).__name__}", expr.span)

    def _emit_call(self, dest: str | None, call: ast.Call) -> None:
        args: list[ir.Operand] = []
        for arg in call.args:
            if isinstance(arg, ast.Ref):
                args.append(ir.RefArg(name=arg.name))
            else:
                args.append(self._lower_expr(arg))
        self._emit(ir.CallInstr(dest=dest, func=call.func, args=args), span=call.span)

    # -- statements ---------------------------------------------------------------

    def _lower_body(self, body: list[ast.Stmt]) -> None:
        for stmt in body:
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Let):
            value = self._lower_expr(stmt.expr)
            self._ir.locals.add(stmt.name)
            self._emit(
                ir.Assign(dest=stmt.name, expr=value, scope=ir.SCOPE_LOCAL),
                span=stmt.span,
            )
            if stmt.annot is not None:
                self._emit(
                    ir.AnnotInstr(kind=stmt.annot, var=stmt.name, set_id=stmt.set_id),
                    span=stmt.span,
                )
        elif isinstance(stmt, ast.Assign):
            value = self._lower_expr(stmt.expr)
            scope = (
                ir.SCOPE_LOCAL if stmt.name in self._ir.locals else ir.SCOPE_GLOBAL
            )
            self._emit(
                ir.Assign(dest=stmt.name, expr=value, scope=scope), span=stmt.span
            )
        elif isinstance(stmt, ast.StoreRef):
            value = self._lower_expr(stmt.expr)
            self._emit(ir.StoreRefInstr(param=stmt.name, expr=value), span=stmt.span)
        elif isinstance(stmt, ast.StoreIndex):
            index = self._lower_expr(stmt.index)
            value = self._lower_expr(stmt.expr)
            self._emit(
                ir.StoreArr(array=stmt.array, index=index, expr=value), span=stmt.span
            )
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.Repeat):
            self._lower_repeat(stmt)
        elif isinstance(stmt, ast.Atomic):
            self._lower_atomic(stmt)
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr_stmt(stmt)
        elif isinstance(stmt, ast.AnnotStmt):
            if stmt.kind == ast.AnnotKind.FRESHCON:
                # FreshConsistent(x, n) is one source line declaring both
                # constraints (Figure 9); split into the two primitives.
                self._emit(
                    ir.AnnotInstr(kind=ast.AnnotKind.FRESH, var=stmt.var),
                    span=stmt.span,
                )
                self._emit(
                    ir.AnnotInstr(
                        kind=ast.AnnotKind.CONSISTENT,
                        var=stmt.var,
                        set_id=stmt.set_id,
                    ),
                    span=stmt.span,
                )
            else:
                self._emit(
                    ir.AnnotInstr(kind=stmt.kind, var=stmt.var, set_id=stmt.set_id),
                    span=stmt.span,
                )
        elif isinstance(stmt, ast.Skip):
            self._emit(ir.SkipInstr(), span=stmt.span)
        else:
            raise SemanticError(
                f"cannot lower statement {type(stmt).__name__}", stmt.span
            )

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self._lower_expr(stmt.cond)
        then_block = self._ir.new_block("then")
        else_block = self._ir.new_block("else") if stmt.else_body else None
        join_block = self._ir.new_block("join")
        false_target = else_block.name if else_block else join_block.name
        self._terminate(
            ir.Branch(cond=cond, true_target=then_block.name, false_target=false_target),
            span=stmt.span,
        )

        self._current = then_block
        self._lower_body(stmt.then_body)
        if self._current is not None:
            self._terminate(ir.Jump(target=join_block.name))

        if else_block is not None:
            self._current = else_block
            self._lower_body(stmt.else_body)
            if self._current is not None:
                self._terminate(ir.Jump(target=join_block.name))

        self._current = join_block

    def _lower_repeat(self, stmt: ast.Repeat) -> None:
        if self._options.unroll_loops:
            for _ in range(stmt.count):
                self._lower_body(stmt.body)
            return
        self._repeat_counter += 1
        counter = f"%rep{self._repeat_counter}"
        self._ir.locals.add(counter)
        self._emit(ir.Assign(dest=counter, expr=ast.IntLit(value=0)), span=stmt.span)

        header = self._ir.new_block("loop_head")
        body = self._ir.new_block("loop_body")
        after = self._ir.new_block("loop_exit")
        self._terminate(ir.Jump(target=header.name), span=stmt.span)

        self._current = header
        cond = ast.Binary(
            op="<", lhs=ast.Var(name=counter), rhs=ast.IntLit(value=stmt.count)
        )
        self._terminate(
            ir.Branch(cond=cond, true_target=body.name, false_target=after.name),
            span=stmt.span,
        )

        self._current = body
        self._lower_body(stmt.body)
        if self._current is not None:
            self._emit(
                ir.Assign(
                    dest=counter,
                    expr=ast.Binary(
                        op="+", lhs=ast.Var(name=counter), rhs=ast.IntLit(value=1)
                    ),
                )
            )
            self._terminate(ir.Jump(target=header.name))

        self._current = after

    def _lower_atomic(self, stmt: ast.Atomic) -> None:
        if not self._options.keep_manual_atomics:
            self._lower_body(stmt.body)
            return
        region = self._module.fresh_region("m")
        self._emit(ir.AtomicStart(region=region, origin="manual"), span=stmt.span)
        self._open_regions.append(region)
        self._lower_body(stmt.body)
        self._open_regions.pop()
        self._emit(ir.AtomicEnd(region=region, origin="manual"), span=stmt.span)

    def _lower_return(self, stmt: ast.Return) -> None:
        if stmt.expr is not None:
            value = self._lower_expr(stmt.expr)
            self._emit(
                ir.Assign(dest=RET_SLOT, expr=value, scope=ir.SCOPE_LOCAL),
                span=stmt.span,
            )
        for region in reversed(self._open_regions):
            self._emit(ir.AtomicEnd(region=region, origin="manual"), span=stmt.span)
        self._terminate(ir.Jump(target=self._ir.exit), span=stmt.span)

    def _lower_expr_stmt(self, stmt: ast.ExprStmt) -> None:
        expr = stmt.expr
        if isinstance(expr, ast.Call) and expr.func in ast.OUTPUT_BUILTINS:
            args = [self._lower_expr(a) for a in expr.args]
            if self._options.guard_outputs:
                region = self._module.fresh_region("u")
                self._emit(
                    ir.AtomicStart(region=region, origin="uart"), span=stmt.span
                )
                self._emit(ir.OutputInstr(op=expr.func, args=args), span=stmt.span)
                self._emit(ir.AtomicEnd(region=region, origin="uart"), span=stmt.span)
            else:
                self._emit(ir.OutputInstr(op=expr.func, args=args), span=stmt.span)
            return
        if isinstance(expr, ast.Call) and expr.func == "work":
            cycles = self._lower_expr(expr.args[0])
            self._emit(ir.WorkInstr(cycles=cycles), span=stmt.span)
            return
        if isinstance(expr, ast.Call) and expr.func not in ast.BUILTINS:
            self._emit_call(dest=None, call=expr)
            return
        # A pure expression in statement position: evaluate for nested
        # effects (already hoisted) and discard the rest.
        self._lower_expr(expr)

    # -- driver ---------------------------------------------------------------------

    def run(self) -> IRFunction:
        if self._has_ret_value:
            self._ir.locals.add(RET_SLOT)
            self._emit(ir.Assign(dest=RET_SLOT, expr=ast.IntLit(value=0)))
        self._lower_body(self._source.body)
        if self._current is not None:
            self._terminate(ir.Jump(target=self._ir.exit))
        _prune_unreachable(self._ir)
        return self._ir


def _prune_unreachable(func: IRFunction) -> None:
    reachable: set[str] = set()
    stack = [func.entry]
    while stack:
        name = stack.pop()
        if name in reachable:
            continue
        reachable.add(name)
        stack.extend(func.blocks[name].successors())
    reachable.add(func.exit)  # the landing pad always stays
    func.blocks = {
        name: block for name, block in func.blocks.items() if name in reachable
    }


def lower_program(
    program: ast.Program,
    options: LoweringOptions | None = None,
    info: ProgramInfo | None = None,
) -> Module:
    """Lower a validated program to an IR :class:`Module`.

    Validation runs automatically when ``info`` is not supplied.
    """
    options = options or LoweringOptions()
    if info is None:
        info = validate_program(program)
    module = Module(
        functions={},
        globals={name: decl.init for name, decl in program.globals.items()},
        arrays={name: decl.initial_values() for name, decl in program.arrays.items()},
        channels=list(program.channels),
    )
    for func in program.functions.values():
        module.functions[func.name] = _FunctionLowerer(
            module, program, func, info, options
        ).run()
    return module
