"""Call graph over IR functions.

The modeling language forbids recursion (validated up front), so the call
graph is a DAG.  Region inference walks it root-first (``findCandidate``,
Algorithm 1); the taint analysis walks call *paths*, which are finite for
the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir import instructions as ir
from repro.ir.module import Module


@dataclass(frozen=True)
class CallSite:
    """A call edge: instruction ``uid`` in ``caller`` invoking ``callee``."""

    caller: str
    callee: str
    uid: ir.InstrId


@dataclass
class CallGraph:
    entry: str
    #: callee -> list of call sites that invoke it
    callers: dict[str, list[CallSite]] = field(default_factory=dict)
    #: caller -> list of call sites it contains
    callees: dict[str, list[CallSite]] = field(default_factory=dict)

    def callees_of(self, func: str) -> list[CallSite]:
        return self.callees.get(func, [])

    def callers_of(self, func: str) -> list[CallSite]:
        return self.callers.get(func, [])

    def reachable_from(self, root: str) -> set[str]:
        seen: set[str] = set()
        stack = [root]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(site.callee for site in self.callees_of(name))
        return seen

    def topo_order(self, root: str | None = None) -> list[str]:
        """Functions in callee-first topological order (leaves first)."""
        root = root or self.entry
        order: list[str] = []
        seen: set[str] = set()

        def visit(name: str) -> None:
            if name in seen:
                return
            seen.add(name)
            for site in self.callees_of(name):
                visit(site.callee)
            order.append(name)

        visit(root)
        return order

    def call_paths(self, root: str | None = None) -> list[tuple[CallSite, ...]]:
        """Every call path (sequence of call sites) from ``root``.

        The empty tuple is the path for the root itself.  Finite because
        the graph is a DAG.
        """
        root = root or self.entry
        paths: list[tuple[CallSite, ...]] = [()]

        def visit(name: str, prefix: tuple[CallSite, ...]) -> None:
            for site in self.callees_of(name):
                path = prefix + (site,)
                paths.append(path)
                visit(site.callee, path)

        visit(root, ())
        return paths


def build_call_graph(module: Module) -> CallGraph:
    graph = CallGraph(entry=module.entry)
    graph.callers = {name: [] for name in module.functions}
    graph.callees = {name: [] for name in module.functions}
    for func in module.functions.values():
        for instr in func.all_instrs():
            if isinstance(instr, ir.CallInstr) and instr.func in module.functions:
                site = CallSite(caller=func.name, callee=instr.func, uid=instr.uid)
                graph.callees[func.name].append(site)
                graph.callers[instr.func].append(site)
    return graph
