"""IR well-formedness verifier.

Run after lowering and after every instrumentation pass; catches the usual
compiler-bug classes early: dangling block references, missing terminators,
duplicate labels, unbalanced atomic brackets along acyclic paths, and
stores through undeclared references.
"""

from __future__ import annotations

from repro.ir import instructions as ir
from repro.ir.module import IRError, IRFunction, Module


def verify_function(func: IRFunction, module: Module) -> None:
    if func.entry not in func.blocks:
        raise IRError(f"{func.name}: entry block '{func.entry}' missing")
    if func.exit not in func.blocks:
        raise IRError(f"{func.name}: exit block '{func.exit}' missing")

    seen_labels: set[int] = set()
    for name, block in func.blocks.items():
        if block.terminator is None:
            raise IRError(f"{func.name}/{name}: block has no terminator")
        for succ in block.successors():
            if succ not in func.blocks:
                raise IRError(f"{func.name}/{name}: dangling successor '{succ}'")
        for instr in block.all_instrs():
            if instr.uid.func != func.name:
                raise IRError(
                    f"{func.name}/{name}: instruction {instr.uid} has foreign uid"
                )
            if instr.uid.label in seen_labels:
                raise IRError(
                    f"{func.name}/{name}: duplicate label {instr.uid.label}"
                )
            seen_labels.add(instr.uid.label)
        for instr in block.instrs:
            if isinstance(instr, ir.Terminator):
                raise IRError(
                    f"{func.name}/{name}: terminator {instr.uid} in block body"
                )
            _verify_instr(func, module, instr)

    exit_block = func.blocks[func.exit]
    if not isinstance(exit_block.terminator, ir.RetInstr):
        raise IRError(f"{func.name}: exit block does not end in ret")
    for name, block in func.blocks.items():
        if isinstance(block.terminator, ir.RetInstr) and name != func.exit:
            raise IRError(f"{func.name}/{name}: ret outside the exit landing pad")


def _verify_instr(func: IRFunction, module: Module, instr: ir.Instr) -> None:
    if isinstance(instr, ir.Assign):
        if instr.scope == ir.SCOPE_GLOBAL and instr.dest not in module.globals:
            raise IRError(f"{instr.uid}: global store to undeclared '{instr.dest}'")
        if instr.scope == ir.SCOPE_LOCAL and instr.dest not in func.locals:
            raise IRError(f"{instr.uid}: local store to undeclared '{instr.dest}'")
    elif isinstance(instr, ir.StoreRefInstr):
        if instr.param not in func.by_ref_params:
            raise IRError(
                f"{instr.uid}: store through non-reference parameter '{instr.param}'"
            )
    elif isinstance(instr, ir.StoreArr):
        if instr.array not in module.arrays:
            raise IRError(f"{instr.uid}: store to undeclared array '{instr.array}'")
    elif isinstance(instr, ir.InputInstr):
        if instr.channel not in module.channels:
            raise IRError(f"{instr.uid}: input from undeclared channel")
    elif isinstance(instr, ir.CallInstr):
        if instr.func not in module.functions:
            raise IRError(f"{instr.uid}: call to unknown function '{instr.func}'")
        callee = module.functions[instr.func]
        if len(instr.args) != len(callee.params):
            raise IRError(f"{instr.uid}: arity mismatch calling '{instr.func}'")
        for arg, param in zip(instr.args, callee.params, strict=True):
            if isinstance(arg, ir.RefArg) != param.by_ref:
                raise IRError(
                    f"{instr.uid}: reference/value mismatch on parameter "
                    f"'{param.name}' of '{instr.func}'"
                )


def _check_bracket_balance(func: IRFunction) -> None:
    """Atomic start/end must balance along every acyclic path from entry.

    Depth is tracked per block; joining paths must agree on depth, which
    holds for lowering- and inference-produced regions (region bounds are
    placed at dominator/post-dominator points).
    """
    depth_at: dict[str, int] = {func.entry: 0}
    order = [func.entry]
    seen = {func.entry}
    idx = 0
    while idx < len(order):
        name = order[idx]
        idx += 1
        depth = depth_at[name]
        block = func.blocks[name]
        for instr in block.instrs:
            if isinstance(instr, ir.AtomicStart):
                depth += 1
            elif isinstance(instr, ir.AtomicEnd):
                depth -= 1
                if depth < 0:
                    raise IRError(
                        f"{func.name}/{name}: atomic_end without matching start"
                    )
        for succ in block.successors():
            if succ not in depth_at:
                depth_at[succ] = depth
                if succ not in seen:
                    seen.add(succ)
                    order.append(succ)
            elif depth_at[succ] != depth:
                raise IRError(
                    f"{func.name}: inconsistent atomic depth at join '{succ}' "
                    f"({depth_at[succ]} vs {depth})"
                )
    exit_depth = depth_at.get(func.exit, 0)
    if exit_depth != 0:
        raise IRError(f"{func.name}: function exits with open atomic region")


def verify_module(module: Module, check_brackets: bool = True) -> None:
    """Verify every function; optionally check atomic bracket balance."""
    if module.entry not in module.functions:
        raise IRError(f"module entry '{module.entry}' missing")
    for func in module.functions.values():
        verify_function(func, module)
        if check_brackets:
            _check_bracket_balance(func)
