"""Simulated sensing environment for the benchmark applications."""

from repro.sensors.environment import (
    Environment,
    Signal,
    bind_signal_specs,
    burst,
    constant,
    parse_signal_spec,
    phase_shifted,
    ramp,
    random_walk,
    sine,
    steps,
)

__all__ = [
    "Environment",
    "Signal",
    "bind_signal_specs",
    "burst",
    "constant",
    "parse_signal_spec",
    "phase_shifted",
    "ramp",
    "random_walk",
    "sine",
    "steps",
]
