"""Simulated sensing environment for the benchmark applications."""

from repro.sensors.environment import (
    Environment,
    Signal,
    burst,
    constant,
    parse_signal_spec,
    ramp,
    random_walk,
    sine,
    steps,
)

__all__ = [
    "Environment",
    "Signal",
    "burst",
    "constant",
    "parse_signal_spec",
    "ramp",
    "random_walk",
    "sine",
    "steps",
]
