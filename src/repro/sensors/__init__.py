"""Simulated sensing environment for the benchmark applications."""

from repro.sensors.environment import (
    Environment,
    Signal,
    burst,
    constant,
    ramp,
    random_walk,
    sine,
    steps,
)

__all__ = [
    "Environment",
    "Signal",
    "burst",
    "constant",
    "ramp",
    "random_walk",
    "sine",
    "steps",
]
