"""Simulated sensing environment.

The paper runs on real hardware with real (or simulated) sensors; the
essential property its correctness experiments need is that *a sensor's
value changes while the device is powered off*, so that a stale or
torn reading is observably different from a fresh one.  We model the
environment as a set of named, time-varying integer signals sampled at
logical time ``tau``.

Signals are deterministic functions of time and a seed, so every
experiment is reproducible; the provided generators cover the benchmark
scenarios (weather fronts for Greenhouse, motion episodes for Activity,
pressure drop events for Tire, light levels for Photo).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional

Signal = Callable[[int], int]


def _periodic(signal: Signal, period: Optional[int]) -> Signal:
    """Annotate ``signal`` with its exact period (if it has one).

    A period ``P`` promises ``signal(tau) == signal(tau % P)`` for every
    ``tau >= 0`` -- *exactly*, so only signals computed with pure integer
    arithmetic declare one (``sine`` rounds floats, where ``tau`` and
    ``tau % P`` can land on different sides of a rounding boundary, so it
    stays aperiodic).  The fleet memoizer keys activations on
    :meth:`Environment.segment_token`, which collapses logical times that
    provably see the same world; an undeclared period only costs cache
    hits, a wrongly declared one would corrupt results.
    """
    signal.period = period  # type: ignore[attr-defined]
    return signal


def signal_period(signal: Signal) -> Optional[int]:
    """The declared exact period of ``signal``, or None if aperiodic."""
    return getattr(signal, "period", None)


def constant(value: int) -> Signal:
    """A signal that never changes (useful in unit tests)."""
    return _periodic(lambda tau: value, 1)


def ramp(start: int, slope_per_kilocycle: int) -> Signal:
    """Linear drift: ``start + slope * tau / 1000``."""

    def signal(tau: int) -> int:
        return start + (slope_per_kilocycle * tau) // 1000

    return _periodic(signal, 1 if slope_per_kilocycle == 0 else None)


def sine(mean: int, amplitude: int, period: int) -> Signal:
    """Smooth oscillation around ``mean`` -- diurnal temperature, etc."""
    if period <= 0:
        raise ValueError("period must be positive")

    def signal(tau: int) -> int:
        return mean + round(amplitude * math.sin(2.0 * math.pi * tau / period))

    return signal


def steps(levels: list[int], dwell: int) -> Signal:
    """Piecewise-constant signal cycling through ``levels`` every ``dwell``.

    Step changes are what expose freshness violations: a power failure that
    straddles a step boundary makes the pre-failure reading stale.
    """
    if not levels:
        raise ValueError("need at least one level")
    if dwell <= 0:
        raise ValueError("dwell must be positive")
    count = len(levels)
    # Hot path: intermittent runs re-read channels many times per segment
    # (every input op of every activation), so remember the last segment's
    # value instead of re-indexing each time.
    last = (-1, 0)

    def signal(tau: int) -> int:
        nonlocal last
        segment = (tau // dwell) % count
        if segment == last[0]:
            return last[1]
        value = levels[segment]
        last = (segment, value)
        return value

    return _periodic(signal, dwell * count)


def random_walk(start: int, step: int, seed: int, interval: int = 200) -> Signal:
    """A seeded random walk, changing every ``interval`` cycles.

    Values are generated lazily but memoized per segment, so the signal is
    a pure function of ``tau`` -- repeated reads at the same time agree,
    which the temporal-consistency experiments rely on.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    cache: dict[int, int] = {0: start}

    def value_at_segment(segment: int) -> int:
        if segment in cache:
            return cache[segment]
        # Fill forward deterministically; each segment's step is a pure
        # function of (seed, segment index).
        known = max(k for k in cache if k <= segment)
        value = cache[known]
        for idx in range(known + 1, segment + 1):
            rng = random.Random(f"{seed}:{idx}")
            value += rng.choice((-step, 0, step))
            cache[idx] = value
        return cache[segment]

    # Same-segment reads dominate (sensing loops sample faster than the
    # walk moves), so keep the last evaluation out of the dict lookup.
    last = (0, start)

    def signal(tau: int) -> int:
        nonlocal last
        segment = max(0, tau) // interval
        if segment == last[0]:
            return last[1]
        value = value_at_segment(segment)
        last = (segment, value)
        return value

    return signal


def burst(base: int, spike: int, period: int, width: int, offset: int = 0) -> Signal:
    """Mostly ``base``, spiking to ``spike`` for ``width`` cycles each period.

    Models episodic events: a tire burst, a motion episode, a hot spell.
    """
    if period <= 0 or width <= 0:
        raise ValueError("period and width must be positive")

    def signal(tau: int) -> int:
        phase = (tau + offset) % period
        return spike if phase < width else base

    return _periodic(signal, period)


def phase_shifted(signal: Signal, offset: int) -> Signal:
    """``signal`` advanced by ``offset`` cycles: reads at ``tau`` see
    ``signal(tau + offset)``.

    Fleet simulations give each device a private phase so a thousand
    devices sampling the same diurnal sine do not all straddle the same
    step boundaries at the same logical times.
    """
    if offset == 0:
        return signal

    def shifted(tau: int) -> int:
        return signal(tau + offset)

    # A shift preserves exact periodicity: sig(tau + off) repeats with
    # the same period.  Shifts are nonnegative, so the tau >= 0 promise
    # of the base signal's period still covers every shifted read.
    return _periodic(shifted, signal_period(signal))


def parse_signal_spec(text: str, default_dwell: int = 2000) -> Signal:
    """Parse a textual signal spec: ``"42"`` or ``"a,b,...[:dwell]"``.

    The grammar backs both the CLI's ``--set ch=...`` flag and the
    declarative environment overrides of campaign specs: a lone integer
    is a constant signal; a comma-separated list (with an optional
    ``:dwell`` suffix) is a stepping signal.  Raises :class:`ValueError`
    with a human-readable message on malformed input.
    """
    text = text.strip()
    if ":" in text or "," in text:
        levels_text, _, dwell_text = text.partition(":")
        try:
            levels = [int(v) for v in levels_text.split(",")]
        except ValueError:
            raise ValueError(
                f"bad signal levels '{levels_text}': expected "
                "comma-separated integers"
            ) from None
        try:
            dwell = int(dwell_text) if dwell_text else default_dwell
        except ValueError:
            raise ValueError(
                f"bad signal dwell '{dwell_text}': expected an integer "
                "cycle count"
            ) from None
        return steps(levels, dwell)
    try:
        return constant(int(text))
    except ValueError:
        raise ValueError(
            f"bad signal value '{text}': expected an integer, "
            "or levels 'a,b,...[:dwell]'"
        ) from None


def bind_signal_specs(
    env: Environment,
    overrides: Mapping[str, str] | Iterable[tuple[str, str]],
) -> Environment:
    """Bind textual signal specs onto ``env``; the one spec-binding path.

    Both the CLI's ``--set CH=VALUE`` flags and the campaign engine's
    declarative environment overrides go through here, so the grammar,
    the defaults, and the error wording stay in one place.  Raises
    :class:`ValueError` naming the offending channel.
    """
    items = overrides.items() if isinstance(overrides, Mapping) else overrides
    for channel, spec in items:
        try:
            env.bind(channel, parse_signal_spec(spec))
        except ValueError as exc:
            raise ValueError(f"channel '{channel}': {exc}") from None
    return env


@dataclass
class Environment:
    """Named signals sampled by ``input(channel)`` operations.

    ``read`` is the single entry point the runtime uses.  Reads are pure:
    the environment holds no mutable state, so continuous and intermittent
    executions observing the same logical times see the same world -- the
    property the paper's correctness definitions quantify over.
    """

    signals: dict[str, Signal] = field(default_factory=dict)

    def bind(self, channel: str, signal: Signal) -> "Environment":
        self.signals[channel] = signal
        return self

    def read(self, channel: str, tau: int) -> int:
        try:
            signal = self.signals[channel]
        except KeyError:
            raise KeyError(
                f"environment has no signal for channel '{channel}'"
            ) from None
        return signal(tau)

    def shifted(self, offset: int) -> "Environment":
        """A view of this environment advanced by ``offset`` cycles."""
        if offset == 0:
            return self
        return Environment(
            {ch: phase_shifted(sig, offset) for ch, sig in self.signals.items()}
        )

    def period(self) -> Optional[int]:
        """The exact period of the whole environment, if every signal has one.

        The least common multiple of the per-signal periods: after
        ``period()`` cycles every channel provably repeats, so two logical
        times congruent modulo it see identical worlds.  ``None`` when any
        signal is aperiodic (a random walk, a nonzero ramp) -- then no two
        distinct times are provably equivalent.
        """
        periods = [signal_period(sig) for sig in self.signals.values()]
        if not periods or any(p is None for p in periods):
            return None
        return math.lcm(*periods)

    def segment_token(self, tau: int) -> int:
        """Quantize ``tau`` to this environment's repeating segment.

        The fleet memoizer's environment-time key: two activations whose
        tokens agree are guaranteed to sample identical values at every
        relative offset.  Aperiodic environments get the identity mapping
        (absolute ``tau``), which never produces a false equivalence.
        """
        period = self.period()
        return tau if period is None else tau % period

    @staticmethod
    def constant_for(channels: list[str], value: int = 0) -> "Environment":
        """An environment answering ``value`` on every listed channel."""
        return Environment({ch: constant(value) for ch in channels})
