"""Fleet reporting: aggregate tables and parity fingerprints.

Rendering is split from the engine so anything holding a
:class:`~repro.fleet.engine.FleetResult` -- the CLI, the demo scripts,
the benchmark harness -- shares one table layout, and so executor-parity
checks have a single definition of "the deterministic part" of a run.
"""

from __future__ import annotations

import json

from repro.eval.report import Table
from repro.fleet.aggregate import DUTY_BINS, ClassAggregate


def fleet_table(result) -> Table:
    """The per-class aggregate table of a fleet run."""
    table = Table(
        title=f"Fleet '{result.spec.name}' ({result.devices} devices)",
        headers=[
            "Class",
            "App",
            "Config",
            "Devices",
            "Activations",
            "Completed",
            "Violating",
            "Viol%",
            "Duty%",
            "Reboots",
        ],
    )
    for name in result.aggregate.class_names:
        agg = result.aggregate[name]
        table.add_row(
            name,
            agg.app,
            agg.config,
            agg.devices,
            agg.activations,
            agg.completed_runs,
            agg.violating_runs,
            100.0 * agg.violation_rate,
            100.0 * agg.duty_cycle,
            agg.reboots,
        )
    used = (
        result.executor
        if result.executor_used == result.executor
        else f"{result.executor}, ran {result.executor_used}"
    )
    table.add_note(
        f"{result.aggregate.total_activations} activations via "
        f"{used} executor ({result.engine} engine) in {result.wall_time:.2f}s "
        f"({result.devices_per_second:.1f} devices/s)"
    )
    if result.resumed_devices:
        table.add_note(
            f"resumed from checkpoint: {result.resumed_devices} devices "
            "folded from a previous invocation"
        )
    memo = getattr(result, "memo", None)
    if memo:
        table.add_note(
            f"activation memo: {memo['hits']} hits / {memo['misses']} "
            f"misses ({100.0 * memo['hit_rate']:.1f}% replayed, "
            f"{memo['entries']} entries)"
        )
        disk_loads = memo.get("disk_loads", 0)
        if disk_loads:
            table.add_note(
                f"persistent memo: started warm with {disk_loads} entries "
                "loaded from disk"
            )
        evictions = memo.get("evictions", 0)
        if evictions:
            table.add_note(
                f"memo cap: {evictions} LRU evictions (evicted keys "
                "re-miss; aggregates unaffected)"
            )
    return table


def histogram_table(result) -> Table:
    """Staleness / consistency-failure histograms per class.

    Columns are per-activation violation counts (0 .. 5+); a healthy
    enforced build concentrates all mass in the 0 column, a baseline
    spreads right -- the fleet-scale version of the Table 2b story.
    """
    table = Table(
        title=f"Fleet '{result.spec.name}' violation histograms",
        headers=["Class", "Kind", "0", "1", "2", "3", "4", "5+"],
    )
    for name in result.aggregate.class_names:
        agg: ClassAggregate = result.aggregate[name]
        table.add_row(name, "fresh", *agg.fresh_hist)
        table.add_row(name, "consistent", *agg.consistent_hist)
    return table


def duty_table(result) -> Table:
    """On/off duty-cycle distribution per class (10% bins)."""
    headers = ["Class"] + [
        f"{100 * i // DUTY_BINS}-{100 * (i + 1) // DUTY_BINS}%"
        for i in range(DUTY_BINS)
    ]
    table = Table(
        title=f"Fleet '{result.spec.name}' duty-cycle distribution",
        headers=headers,
    )
    for name in result.aggregate.class_names:
        table.add_row(name, *result.aggregate[name].duty_hist)
    return table


def aggregate_fingerprint(result) -> str:
    """Canonical bytes of the deterministic part of a fleet run.

    Everything except wall time and executor identity: the spec, the
    device count, and the full aggregate.  Two runs of the same spec --
    serial vs. sharded, one-shot vs. checkpoint-resumed -- must agree on
    this string exactly.
    """
    return json.dumps(
        {
            "spec": result.spec.to_dict(),
            "devices": result.devices,
            "aggregate": result.aggregate.to_dict(),
        },
        sort_keys=True,
        indent=2,
    )
