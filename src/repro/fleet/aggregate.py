"""Streaming fleet aggregation: fixed-size state, any number of devices.

A million-activation fleet run cannot keep per-activation results in
memory; the aggregator consumes the scheduler's event stream one record
at a time and retains only integer counters and fixed-width histograms
per device class.  Every field is an integer and every operation is a
sum, which buys three properties at once:

* **order independence** -- serial tau-order interleaving and sharded
  per-process runs fold the same records in different orders into the
  same state;
* **mergeability** -- shard aggregates combine with ``merge`` (used by
  the multiprocessing executor and by checkpoint/resume);
* **byte determinism** -- ``to_json`` over sorted keys is reproducible
  bit-for-bit across executors, process counts, and resumed runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Buckets for per-activation violation counts: 0, 1, 2, 3, 4, >=5.
VIOLATION_BUCKETS = 6
#: Duty-cycle histogram bins over on/(on+off), i.e. 0-10%, ..., 90-100%.
DUTY_BINS = 10


def _bucket(count: int) -> int:
    return min(count, VIOLATION_BUCKETS - 1)


@dataclass
class ClassAggregate:
    """Counters for one device class; all integers, all summable."""

    app: str = ""
    config: str = ""
    devices: int = 0
    stuck_devices: int = 0
    activations: int = 0
    completed_runs: int = 0
    violating_runs: int = 0
    violations: int = 0
    fresh_violations: int = 0
    consistent_violations: int = 0
    cycles_on: int = 0
    cycles_off: int = 0
    reboots: int = 0
    detector_queries: int = 0
    #: histogram of *fresh* (staleness) violations per completed activation
    fresh_hist: list[int] = field(
        default_factory=lambda: [0] * VIOLATION_BUCKETS
    )
    #: histogram of consistency violations per completed activation
    consistent_hist: list[int] = field(
        default_factory=lambda: [0] * VIOLATION_BUCKETS
    )
    #: histogram of per-activation duty cycle (cycles on / total cycles)
    duty_hist: list[int] = field(default_factory=lambda: [0] * DUTY_BINS)

    @property
    def violation_rate(self) -> float:
        if self.completed_runs == 0:
            return 0.0
        return self.violating_runs / self.completed_runs

    @property
    def duty_cycle(self) -> float:
        total = self.cycles_on + self.cycles_off
        if total == 0:
            return 0.0
        return self.cycles_on / total

    def observe(self, record) -> None:
        """Fold one :class:`ActivationRecord` into the counters."""
        self.activations += 1
        self.cycles_on += record.cycles_on
        self.cycles_off += record.cycles_off
        self.reboots += record.reboots
        self.violations += record.violations
        self.fresh_violations += record.fresh_violations
        self.consistent_violations += record.consistent_violations
        self.detector_queries += record.detector_queries
        if not record.completed:
            self.stuck_devices += 1
            return
        self.completed_runs += 1
        if record.violating:
            self.violating_runs += 1
        self.fresh_hist[_bucket(record.fresh_violations)] += 1
        self.consistent_hist[_bucket(record.consistent_violations)] += 1
        total = record.cycles_on + record.cycles_off
        if total > 0:
            # Integer binning keeps the histogram exact across platforms.
            self.duty_hist[
                min(DUTY_BINS - 1, (record.cycles_on * DUTY_BINS) // total)
            ] += 1

    def observe_many(self, record, count: int) -> None:
        """Fold ``count`` identical activation records at once.

        The vectorized executor replays one memoized record for a whole
        group of equivalent devices; since every counter is a sum, the
        multiplied fold equals ``count`` repetitions of :meth:`observe`
        exactly -- no rounding, so byte determinism survives batching.
        """
        if count <= 0:
            return
        self.activations += count
        self.cycles_on += record.cycles_on * count
        self.cycles_off += record.cycles_off * count
        self.reboots += record.reboots * count
        self.violations += record.violations * count
        self.fresh_violations += record.fresh_violations * count
        self.consistent_violations += record.consistent_violations * count
        self.detector_queries += record.detector_queries * count
        if not record.completed:
            self.stuck_devices += count
            return
        self.completed_runs += count
        if record.violating:
            self.violating_runs += count
        self.fresh_hist[_bucket(record.fresh_violations)] += count
        self.consistent_hist[_bucket(record.consistent_violations)] += count
        total = record.cycles_on + record.cycles_off
        if total > 0:
            self.duty_hist[
                min(DUTY_BINS - 1, (record.cycles_on * DUTY_BINS) // total)
            ] += count

    def merge(self, other: "ClassAggregate") -> None:
        if (self.app, self.config) != (other.app, other.config):
            raise ValueError(
                f"cannot merge class aggregates of ({self.app}, {self.config})"
                f" and ({other.app}, {other.config})"
            )
        self.devices += other.devices
        self.stuck_devices += other.stuck_devices
        self.activations += other.activations
        self.completed_runs += other.completed_runs
        self.violating_runs += other.violating_runs
        self.violations += other.violations
        self.fresh_violations += other.fresh_violations
        self.consistent_violations += other.consistent_violations
        self.cycles_on += other.cycles_on
        self.cycles_off += other.cycles_off
        self.reboots += other.reboots
        self.detector_queries += other.detector_queries
        for i, v in enumerate(other.fresh_hist):
            self.fresh_hist[i] += v
        for i, v in enumerate(other.consistent_hist):
            self.consistent_hist[i] += v
        for i, v in enumerate(other.duty_hist):
            self.duty_hist[i] += v

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "config": self.config,
            "devices": self.devices,
            "stuck_devices": self.stuck_devices,
            "activations": self.activations,
            "completed_runs": self.completed_runs,
            "violating_runs": self.violating_runs,
            "violations": self.violations,
            "fresh_violations": self.fresh_violations,
            "consistent_violations": self.consistent_violations,
            "cycles_on": self.cycles_on,
            "cycles_off": self.cycles_off,
            "reboots": self.reboots,
            "detector_queries": self.detector_queries,
            "fresh_hist": list(self.fresh_hist),
            "consistent_hist": list(self.consistent_hist),
            "duty_hist": list(self.duty_hist),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClassAggregate":
        agg = cls(app=data["app"], config=data["config"])
        for key in (
            "devices",
            "stuck_devices",
            "activations",
            "completed_runs",
            "violating_runs",
            "violations",
            "fresh_violations",
            "consistent_violations",
            "cycles_on",
            "cycles_off",
            "reboots",
            "detector_queries",
        ):
            setattr(agg, key, int(data[key]))
        agg.fresh_hist = [int(v) for v in data["fresh_hist"]]
        agg.consistent_hist = [int(v) for v in data["consistent_hist"]]
        agg.duty_hist = [int(v) for v in data["duty_hist"]]
        return agg


class FleetAggregator:
    """Per-class streaming aggregates over a fleet's event stream."""

    def __init__(self) -> None:
        self._classes: dict[str, ClassAggregate] = {}

    def _class(self, name: str, app: str = "", config: str = "") -> ClassAggregate:
        agg = self._classes.get(name)
        if agg is None:
            agg = ClassAggregate(app=app, config=config)
            self._classes[name] = agg
        return agg

    def add_device(self, spec) -> None:
        """Register a device before it runs (devices with zero completed
        activations still count toward the population)."""
        agg = self._class(spec.class_name, spec.app, spec.config)
        agg.devices += 1

    def add_devices(self, spec, count: int) -> None:
        """Register ``count`` same-class devices at once (batch peer of
        :meth:`add_device`; population counts are plain sums)."""
        agg = self._class(spec.class_name, spec.app, spec.config)
        agg.devices += count

    def observe(self, spec, record) -> None:
        """The scheduler sink: fold one activation of one device."""
        self._class(spec.class_name, spec.app, spec.config).observe(record)

    def observe_many(self, spec, record, count: int) -> None:
        """Batch sink: fold ``count`` devices replaying one record."""
        self._class(spec.class_name, spec.app, spec.config).observe_many(
            record, count
        )

    # -- views ---------------------------------------------------------------

    @property
    def class_names(self) -> list[str]:
        return sorted(self._classes)

    def __getitem__(self, name: str) -> ClassAggregate:
        return self._classes[name]

    @property
    def total_devices(self) -> int:
        return sum(a.devices for a in self._classes.values())

    @property
    def total_activations(self) -> int:
        return sum(a.activations for a in self._classes.values())

    @property
    def total_completed(self) -> int:
        return sum(a.completed_runs for a in self._classes.values())

    # -- merge / serialize ---------------------------------------------------

    def merge(self, other: "FleetAggregator") -> "FleetAggregator":
        for name in other.class_names:
            theirs = other[name]
            mine = self._classes.get(name)
            if mine is None:
                self._classes[name] = ClassAggregate.from_dict(theirs.to_dict())
            else:
                mine.merge(theirs)
        return self

    def to_dict(self) -> dict:
        return {
            "classes": {
                name: self._classes[name].to_dict()
                for name in sorted(self._classes)
            }
        }

    def to_json(self) -> str:
        """Canonical encoding: sorted keys, no whitespace surprises.

        This is the byte-for-byte artifact the parity and resume tests
        compare, so keep it free of floats and unordered containers.
        """
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, data: dict) -> "FleetAggregator":
        agg = cls()
        for name, payload in data.get("classes", {}).items():
            agg._classes[name] = ClassAggregate.from_dict(payload)
        return agg
