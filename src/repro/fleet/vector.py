"""Vectorized fleet execution: memoized activations over class batches.

A fleet's cost is dominated by stepping instructions, yet most of that
work is redundant: devices of one class share a compiled program, and an
activation's outcome is a pure function of its resume-point state --
nonvolatile memory, supply state, and the environment's behavior from
the start time (the observation behind the formal treatment in
Surbatovich et al.).  This executor exploits that in three layers:

* **Activation memoization** (:class:`ActivationMemo`).  Every executed
  activation is cached under a key built from equivalence *tokens*:
  program (app, build config, engine), environment identity, a
  time token (:meth:`Environment.segment_token
  <repro.sensors.environment.Environment.segment_token>` quantizes the
  start time when the environment is exactly periodic and the
  nonvolatile state carries no absolute-time taint), a structural
  nonvolatile-state token, and a supply token
  (:mod:`repro.energy.segments`).  A hit replays the cached
  :class:`~repro.runtime.harness.ActivationRecord`, time delta, and
  post-states without stepping a single instruction.

* **Struct-of-arrays run state** (:class:`_SoAState`).  Per-device
  logical clocks, activation counts, and stuck flags live in packed
  numpy arrays, so liveness scans and batch advances are vectorized;
  the nonvolatile token encoder (:class:`NVCodec`) likewise packs a
  class's fixed global/array slots and detector bit-vector into an
  int64 array + bitmask digest, amortizing digest cost across the
  class.  Both degrade to pure-python fallbacks when numpy is absent.

* **Wave batching**.  Devices advance in waves; devices in provably
  identical situations (same tokens, same logical time) group together,
  one representative executes (or a memo hit replays), and the whole
  group folds into the aggregate with one
  :meth:`~repro.fleet.aggregate.ClassAggregate.observe_many` call.
  On a homogeneous fleet the first device misses and every other device
  rides its entries -- hit rates approach (n-1)/n.

Soundness: tokens are conservative.  A supply without memo hooks, an
aperiodic environment, an unencodable nonvolatile state -- each only
*loses cache hits*; it never manufactures a false equivalence.  The
aggregate is commutative integer summation, so the vectorized fold is
byte-identical to the serial and sharded executors (property-tested in
``tests/test_fleet_vector.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, NamedTuple, Optional, Sequence

try:  # numpy accelerates run-state scans and NV digests; optional.
    import numpy as np
except ModuleNotFoundError:  # pragma: no cover - baked into the CI image
    np = None  # type: ignore[assignment]

from repro.apps import BENCHMARKS
from repro.core.cache import GLOBAL_CACHE
from repro.energy.segments import (
    capture_supply_state,
    restore_supply_state,
    supply_memo_token,
)
from repro.eval.campaign import SupplySpec
from repro.fleet.aggregate import FleetAggregator
from repro.fleet.spec import DeviceSpec
from repro.runtime.engine import ENGINE_FAST
from repro.runtime.executor import NVState
from repro.runtime.detector import BitVector
from repro.runtime.harness import ActivationStepper
from repro.sensors.environment import bind_signal_specs
from repro.runtime.supply import PowerSupply
from repro.telemetry.trace import span as _span


# ---------------------------------------------------------------------------
# Nonvolatile-state tokens


class NVRef(NamedTuple):
    """A tokenized nonvolatile state: hashable identity + replayable copy."""

    #: hashable structural token; equal tokens => equal nonvolatile states
    token: Hashable
    #: immutable copy: (globals dict, arrays dict of tuples, bits frozenset)
    snapshot: tuple
    #: True when any cell carries input taint (absolute-time provenance)
    tainted: bool


def materialize_nv(ref: NVRef) -> NVState:
    """A fresh mutable :class:`NVState` from a tokenized snapshot."""
    globals_, arrays, bits = ref.snapshot
    return NVState(
        globals=dict(globals_),
        arrays={name: list(cells) for name, cells in arrays.items()},
        bits=BitVector(set(bits)),
    )


class NVCodec:
    """Per-program struct-of-arrays encoder for nonvolatile state.

    A compiled program fixes the nonvolatile layout: its global names,
    array names and lengths, and the universe of detector bit chains.
    The codec assigns each a slot once, then digests any state of that
    program as (packed int64 values, bit mask, sparse taint list) --
    with numpy, the value digest is one ``tobytes`` over a packed
    array.  Anything outside the fixed layout (huge integers, an
    unexpected chain, a shape drift) falls back to a slower but exact
    structural tuple; the fallback only costs speed, never identity.
    """

    def __init__(self, module, plan) -> None:
        self.global_names = tuple(sorted(module.globals))
        self.array_names = tuple(sorted(module.arrays))
        self._bit_index = {
            chain: i for i, chain in enumerate(sorted(plan.bit_chains))
        }

    def encode(self, nv: NVState) -> NVRef:
        """Tokenize ``nv``; the snapshot copies every mutable container."""
        globals_ = nv.globals
        arrays = nv.arrays
        bits = nv.bits.bits
        snapshot = (
            dict(globals_),
            {name: tuple(cells) for name, cells in arrays.items()},
            frozenset(bits),
        )
        try:
            token, tainted = self._packed(globals_, arrays, bits)
        except (KeyError, OverflowError, TypeError, ValueError):
            token, tainted = self._structural(globals_, arrays, bits)
        return NVRef(token=token, snapshot=snapshot, tainted=tainted)

    def _packed(self, globals_, arrays, bits):
        if np is None:
            raise ValueError("no numpy; use structural tokens")
        if len(globals_) != len(self.global_names):
            raise ValueError("global layout drifted")
        if len(arrays) != len(self.array_names):
            raise ValueError("array layout drifted")
        values: list[int] = []
        taints: list[tuple[int, frozenset]] = []
        for name in self.global_names:
            cell = globals_[name]
            if cell.taint:
                taints.append((len(values), cell.taint))
            values.append(cell.value)
        for name in self.array_names:
            cells = arrays[name]
            values.append(len(cells))
            for cell in cells:
                if cell.taint:
                    taints.append((len(values), cell.taint))
                values.append(cell.value)
        mask = 0
        for chain in bits:
            mask |= 1 << self._bit_index[chain]
        packed = np.asarray(values, dtype=np.int64)
        # bytes objects cache their hash, so repeated dict probes on the
        # same token re-digest nothing.
        return ("v", packed.tobytes(), mask, tuple(taints)), bool(taints)

    @staticmethod
    def _structural(globals_, arrays, bits):
        token = (
            "s",
            tuple((name, globals_[name]) for name in sorted(globals_)),
            tuple((name, tuple(arrays[name])) for name in sorted(arrays)),
            frozenset(bits),
        )
        tainted = any(cell.taint for cell in globals_.values()) or any(
            cell.taint for cells in arrays.values() for cell in cells
        )
        return token, tainted


# ---------------------------------------------------------------------------
# The memo table


@dataclass
class MemoEntry:
    """Everything needed to replay one memoized activation."""

    record: object  # ActivationRecord; treated as immutable once cached
    tau_delta: int
    post_nv: NVRef
    post_supply_token: Optional[Hashable]
    post_supply_capture: object


@dataclass
class MemoStats:
    """Hit/miss accounting, in device-activations."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def to_dict(self, entries: int = 0) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "entries": entries,
        }


class ActivationMemo:
    """Bounded activation cache shared across batches and chunks.

    Eviction drops the oldest quarter of entries (insertion order) when
    the table fills; entries still referenced by in-flight devices stay
    alive through those references, so eviction can only cause future
    misses, never wrong replays.
    """

    def __init__(self, max_entries: int = 65_536) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = MemoStats()
        self._entries: dict[Hashable, MemoEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[MemoEntry]:
        return self._entries.get(key)

    def put(self, key: Hashable, entry: MemoEntry) -> None:
        if len(self._entries) >= self.max_entries:
            drop = max(1, self.max_entries // 4)
            for stale in list(self._entries)[:drop]:
                del self._entries[stale]
            self.stats.evictions += drop
        self._entries[key] = entry


# ---------------------------------------------------------------------------
# Struct-of-arrays run state


class _SoAState:
    """Packed per-device run state for one class batch (numpy-backed)."""

    def __init__(self, specs: Sequence[DeviceSpec]) -> None:
        n = len(specs)
        self.tau = np.zeros(n, dtype=np.int64)
        self.index = np.zeros(n, dtype=np.int64)
        self.stuck = np.zeros(n, dtype=bool)
        self.budget = np.fromiter(
            (s.budget_cycles for s in specs), dtype=np.int64, count=n
        )
        self.cap = np.fromiter(
            (s.max_activations for s in specs), dtype=np.int64, count=n
        )

    def live(self) -> list[int]:
        mask = (
            ~self.stuck & (self.tau < self.budget) & (self.index < self.cap)
        )
        return np.flatnonzero(mask).tolist()

    def tau_of(self, pos: int) -> int:
        return int(self.tau[pos])

    def index_of(self, pos: int) -> int:
        return int(self.index[pos])

    def advance(
        self, positions: Sequence[int], tau_delta: int, completed: bool
    ) -> None:
        idx = np.asarray(positions, dtype=np.intp)
        self.tau[idx] += tau_delta
        self.index[idx] += 1
        if not completed:
            self.stuck[idx] = True


class _ListState:
    """Pure-python fallback with the same interface as :class:`_SoAState`."""

    def __init__(self, specs: Sequence[DeviceSpec]) -> None:
        n = len(specs)
        self.tau = [0] * n
        self.index = [0] * n
        self.stuck = [False] * n
        self.budget = [s.budget_cycles for s in specs]
        self.cap = [s.max_activations for s in specs]

    def live(self) -> list[int]:
        return [
            pos
            for pos in range(len(self.tau))
            if not self.stuck[pos]
            and self.tau[pos] < self.budget[pos]
            and self.index[pos] < self.cap[pos]
        ]

    def tau_of(self, pos: int) -> int:
        return self.tau[pos]

    def index_of(self, pos: int) -> int:
        return self.index[pos]

    def advance(
        self, positions: Sequence[int], tau_delta: int, completed: bool
    ) -> None:
        for pos in positions:
            self.tau[pos] += tau_delta
            self.index[pos] += 1
            if not completed:
                self.stuck[pos] = True


def _run_state(specs: Sequence[DeviceSpec]):
    return _SoAState(specs) if np is not None else _ListState(specs)


# ---------------------------------------------------------------------------
# The executor


class VectorFleetExecutor:
    """Batch same-class devices through one shared decode + memo table.

    Drop-in peer of the serial and sharded executors: ``run`` takes
    device specs and returns a :class:`FleetAggregator` whose canonical
    JSON is byte-identical to theirs.  The memo table persists across
    ``run`` calls, so checkpointed chunked runs keep their warm cache.
    """

    name = "vector"

    def __init__(
        self,
        engine: str = ENGINE_FAST,
        memo: Optional[ActivationMemo] = None,
        max_entries: int = 65_536,
    ) -> None:
        self.engine = engine
        #: what actually executed the last batch (vector always itself)
        self.used = "vector"
        self.memo = memo if memo is not None else ActivationMemo(max_entries)
        self._supply_protos: dict[SupplySpec, PowerSupply] = {}
        self._envs: dict = {}
        self._codecs: dict = {}
        self._initials: dict = {}

    # -- shared-resource caches ---------------------------------------------

    def memo_stats(self) -> dict:
        """Hit/miss accounting for reports and benchmarks."""
        return self.memo.stats.to_dict(entries=len(self.memo))

    def _spawn_supply(self, spec: DeviceSpec) -> PowerSupply:
        proto = self._supply_protos.get(spec.supply)
        if proto is None:
            proto = spec.supply.build(0)
            self._supply_protos[spec.supply] = proto
        return proto.spawn(spec.seed + spec.supply.seed_offset)

    def _env(self, spec: DeviceSpec):
        """(env_key, env, period) for ``spec``; envs are pure, so shared."""
        key = (spec.app, spec.env_seed, spec.env_overrides, spec.phase)
        cached = self._envs.get(key)
        if cached is None:
            env = BENCHMARKS[spec.app].env_factory(spec.env_seed)
            if spec.env_overrides:
                bind_signal_specs(env, spec.env_overrides)
            env = env.shifted(spec.phase)
            cached = self._envs[key] = (key, env, env.period())
        return cached

    def _codec(self, spec: DeviceSpec, compiled, plan):
        key = (spec.app, spec.config)
        codec = self._codecs.get(key)
        if codec is None:
            codec = self._codecs[key] = NVCodec(compiled.module, plan)
            self._initials[key] = codec.encode(
                NVState.initial(compiled.module)
            )
        return codec, self._initials[key]

    # -- execution -----------------------------------------------------------

    def run(self, devices: Sequence[DeviceSpec]) -> FleetAggregator:
        with _span("fleet.vector", "fleet", devices=len(devices)):
            aggregator = FleetAggregator()
            batches: dict[str, list[DeviceSpec]] = {}
            for spec in devices:
                aggregator.add_device(spec)
                batches.setdefault(spec.class_name, []).append(spec)
            for specs in batches.values():
                self._run_batch(specs, aggregator)
            return aggregator

    def _stepper(self, spec, env, supply, nv, start_tau, start_index, shared):
        compiled, costs, plan = shared
        return ActivationStepper(
            compiled,
            env,
            supply,
            spec.budget_cycles,
            costs=costs,
            plan=plan,
            max_activations=spec.max_activations,
            nv=nv,
            engine=self.engine,
            start_tau=start_tau,
            start_index=start_index,
        )

    def _run_batch(
        self, specs: list[DeviceSpec], aggregator: FleetAggregator
    ) -> None:
        first = specs[0]
        meta = BENCHMARKS[first.app]
        compiled = GLOBAL_CACHE.get_or_compile(meta.source, first.config)
        costs = meta.cost_model()
        plan = compiled.detector_plan()
        shared = (compiled, costs, plan)
        codec, init_ref = self._codec(first, compiled, plan)
        prog_key = (first.app, first.config, self.engine)
        envs = [self._env(spec) for spec in specs]
        state = _run_state(specs)
        # Per-device execution slot: None (cold, supply not yet spawned),
        # ("cold", supply, token), ("virt", entry) -- fully tokenized,
        # no live machine -- or ("mat", stepper) for devices whose supply
        # is opaque and must step for real forever.
        slots: list = [None] * len(specs)

        while True:
            live = state.live()
            if not live:
                break
            # Group provably identical situations; insertion order (and
            # therefore representative choice) follows device order, so
            # runs are deterministic.
            groups: dict = {}
            for pos in live:
                slot = slots[pos]
                if slot is None:
                    supply = self._spawn_supply(specs[pos])
                    token = supply_memo_token(supply)
                    if token is None:
                        stepper = self._stepper(
                            specs[pos],
                            envs[pos][1],
                            supply,
                            materialize_nv(init_ref),
                            0,
                            0,
                            shared,
                        )
                        slot = ("mat", stepper)
                    else:
                        slot = ("cold", supply, token)
                    slots[pos] = slot
                kind = slot[0]
                if kind == "mat":
                    self._step_materialized(pos, slot[1], specs, state, aggregator)
                    continue
                if kind == "cold":
                    nv_ref, stoken = init_ref, slot[2]
                else:  # virt
                    entry = slot[1]
                    nv_ref, stoken = entry.post_nv, entry.post_supply_token
                    if stoken is None:
                        # Post-state supply became opaque: pin the device
                        # to a real stepper from here on.
                        supply = self._spawn_supply(specs[pos])
                        restore_supply_state(supply, entry.post_supply_capture)
                        stepper = self._stepper(
                            specs[pos],
                            envs[pos][1],
                            supply,
                            materialize_nv(nv_ref),
                            state.tau_of(pos),
                            state.index_of(pos),
                            shared,
                        )
                        slots[pos] = ("mat", stepper)
                        self._step_materialized(
                            pos, stepper, specs, state, aggregator
                        )
                        continue
                gkey = (envs[pos][0], state.tau_of(pos), nv_ref.token, stoken)
                group = groups.get(gkey)
                if group is None:
                    groups[gkey] = [nv_ref, slot, pos, [pos]]
                else:
                    group[3].append(pos)

            for gkey, (nv_ref, rep_slot, rep_pos, members) in groups.items():
                env_key, wave_tau, _, stoken = gkey
                period = envs[rep_pos][2]
                # Quantize time only when the environment provably
                # repeats and the nonvolatile state carries no
                # absolute-time taint; otherwise key on absolute tau.
                absolute = period is None or nv_ref.tainted
                time_token = wave_tau if absolute else wave_tau % period
                mkey = (prog_key, env_key, time_token, nv_ref.token, stoken)
                entry = self.memo.get(mkey)
                if entry is None:
                    entry = self._execute_miss(
                        specs[rep_pos],
                        envs[rep_pos][1],
                        nv_ref,
                        rep_slot,
                        wave_tau,
                        state.index_of(rep_pos),
                        codec,
                        shared,
                    )
                    self.memo.put(mkey, entry)
                    self.memo.stats.misses += 1
                    self.memo.stats.hits += len(members) - 1
                else:
                    self.memo.stats.hits += len(members)
                for pos in members:
                    slots[pos] = ("virt", entry)
                state.advance(members, entry.tau_delta, entry.record.completed)
                aggregator.observe_many(
                    specs[rep_pos], entry.record, len(members)
                )

    def _execute_miss(
        self, spec, env, nv_ref, rep_slot, wave_tau, wave_index, codec, shared
    ) -> MemoEntry:
        """Run one real activation for a group representative."""
        if rep_slot[0] == "cold":
            supply = rep_slot[1]
        else:
            supply = self._spawn_supply(spec)
            restore_supply_state(supply, rep_slot[1].post_supply_capture)
        stepper = self._stepper(
            spec,
            env,
            supply,
            materialize_nv(nv_ref),
            wave_tau,
            wave_index,
            shared,
        )
        record = stepper.step()
        assert record is not None, "grouped device stepped while exhausted"
        return MemoEntry(
            record=record,
            tau_delta=stepper.tau - wave_tau,
            post_nv=codec.encode(stepper.nv),
            post_supply_token=supply_memo_token(supply),
            post_supply_capture=capture_supply_state(supply),
        )

    def _step_materialized(self, pos, stepper, specs, state, aggregator):
        record = stepper.step()
        assert record is not None, "live arrays disagree with stepper"
        state.advance(
            [pos], stepper.tau - state.tau_of(pos), record.completed
        )
        aggregator.observe_many(specs[pos], record, 1)
