"""Vectorized fleet execution: cohorts, memoized activations, quantized keys.

A fleet's cost is dominated by stepping instructions, yet most of that
work is redundant: devices of one class share a compiled program, and an
activation's outcome is a pure function of its resume-point state --
nonvolatile memory, supply state, and the environment's behavior from
the start time (the observation behind the formal treatment in
Surbatovich et al.).  This executor exploits that in four layers:

* **Activation memoization** (:class:`ActivationMemo`).  Every executed
  activation is cached under a key built from equivalence *tokens*:
  program (app, build config, engine), environment identity, a
  time token (:meth:`Environment.segment_token
  <repro.sensors.environment.Environment.segment_token>` quantizes the
  start time when the environment is exactly periodic and the
  nonvolatile state carries no absolute-time taint), a structural
  nonvolatile-state token, and a supply token
  (:mod:`repro.energy.segments`).  A hit replays the cached
  :class:`~repro.runtime.harness.ActivationRecord`, time delta, and
  post-states without stepping a single instruction.  The memo is
  LRU-bounded (entry count, optionally bytes) and can persist to a
  content-addressed on-disk store (:mod:`repro.fleet.memostore`) keyed
  under the program fingerprint and aggregate-parity scheme, so re-runs
  and resumed checkpoints start warm.

* **Quantized supply keys** (:class:`QuantEntry`).  Exact supply tokens
  make every key unique on jittered fleets (per-device harvest rates
  and RNG stream positions).  Stochastic energy-driven supplies instead
  key on the capacitor geometry plus a configurable charge *bucket*,
  excluding everything per-device.  The bucketed key is paired with a
  replay gate that keeps it exact: an entry is stored only for a
  reboot-free activation and records the charge level it executed at; a
  hit replays only for devices at or above that level.  A reboot-free
  activation consults the supply only through charge checks monotone in
  the starting level, so the gated replay is bit-identical to real
  execution (contract spelled out in :mod:`repro.energy.segments`,
  perturbation-tested in ``tests/test_fleet_vector.py``).

* **Cohort wave batching** (:class:`_Cohort`).  Devices in provably
  identical situations -- same tokens, same logical time -- live in one
  cohort carrying a single shared state plus (for quantized cohorts) a
  packed per-member charge-level array.  Waves iterate cohorts, not
  devices: a homogeneous million-device fleet is *one* cohort, and each
  wave costs one memo probe and one aggregate fold, independent of
  population.  Cohorts split when replayed charge levels straddle a
  bucket boundary and merge when states reconverge.

* **Batched miss path** (:class:`_MissBatch`).  Misses within a class
  batch run through one driver holding the shared decoded program, cost
  model, and detector plan; it drives the machine directly (no
  per-activation stepper object), reuses the codec's preallocated
  struct-of-arrays NV buffers (:class:`NVCodec`), and folds each wave's
  records through one ``observe_many``-style sink.  Devices whose
  supply goes opaque mid-run fall back to the scalar
  :class:`~repro.runtime.harness.ActivationStepper`.

Soundness: tokens are conservative.  A supply without memo hooks, an
aperiodic environment, an unencodable nonvolatile state -- each only
*loses cache hits*; it never manufactures a false equivalence.  The
aggregate is commutative integer summation, so the vectorized fold is
byte-identical to the serial and sharded executors (property-tested in
``tests/test_fleet_vector.py``, including bucketed hits and warm
disk-memo runs).
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Hashable, NamedTuple, Optional, Sequence

try:  # numpy accelerates level scans and NV digests; optional.
    import numpy as np
except ModuleNotFoundError:  # pragma: no cover - baked into the CI image
    np = None  # type: ignore[assignment]

from repro.apps import BENCHMARKS
from repro.core.cache import GLOBAL_CACHE, CacheKey
from repro.energy.segments import (
    capture_supply_state,
    restore_supply_state,
    supply_memo_token,
)
from repro.eval.campaign import SupplySpec
from repro.fleet.aggregate import FleetAggregator
from repro.fleet.memostore import MEMO_SCHEMA, MemoStore
from repro.fleet.spec import DeviceSpec
from repro.runtime.engine import ENGINE_FAST, create_machine
from repro.runtime.executor import NVState
from repro.runtime.detector import BitVector
from repro.runtime.harness import ActivationRecord, ActivationStepper
from repro.sensors.environment import bind_signal_specs
from repro.runtime.supply import PowerSupply
from repro.telemetry.trace import span as _span


#: Default number of charge buckets spanning a capacitor's capacity for
#: quantized supply keys.  Coarser (fewer) buckets collapse more devices
#: onto one key; the replay gate keeps any granularity exact.
DEFAULT_SUPPLY_BUCKETS = 32


# ---------------------------------------------------------------------------
# Nonvolatile-state tokens


class NVRef(NamedTuple):
    """A tokenized nonvolatile state: hashable identity + replayable copy."""

    #: hashable structural token; equal tokens => equal nonvolatile states
    token: Hashable
    #: immutable copy: (globals dict, arrays dict of tuples, bits frozenset)
    snapshot: tuple
    #: True when any cell carries input taint (absolute-time provenance)
    tainted: bool


def materialize_nv(ref: NVRef) -> NVState:
    """A fresh mutable :class:`NVState` from a tokenized snapshot."""
    globals_, arrays, bits = ref.snapshot
    return NVState(
        globals=dict(globals_),
        arrays={name: list(cells) for name, cells in arrays.items()},
        bits=BitVector(set(bits)),
    )


class NVCodec:
    """Per-program struct-of-arrays encoder for nonvolatile state.

    A compiled program fixes the nonvolatile layout: its global names,
    array names and lengths, and the universe of detector bit chains.
    The codec assigns each a slot once, then digests any state of that
    program as (packed int64 values, bit mask, sparse taint list) --
    with numpy, the value digest is one ``tobytes`` over a packed
    array.  The value buffer is preallocated once and reused across
    encodes, so the batched miss path pays no per-activation list
    churn.  Anything outside the fixed layout (huge integers, an
    unexpected chain, a shape drift) falls back to a slower but exact
    structural tuple; the fallback only costs speed, never identity.
    """

    def __init__(self, module, plan) -> None:
        self.global_names = tuple(sorted(module.globals))
        self.array_names = tuple(sorted(module.arrays))
        self._bit_index = {
            chain: i for i, chain in enumerate(sorted(plan.bit_chains))
        }
        # Reused across encodes; tobytes() copies, so reuse is safe.
        self._values: list[int] = []

    def encode(self, nv: NVState) -> NVRef:
        """Tokenize ``nv``; the snapshot copies every mutable container."""
        globals_ = nv.globals
        arrays = nv.arrays
        bits = nv.bits.bits
        snapshot = (
            dict(globals_),
            {name: tuple(cells) for name, cells in arrays.items()},
            frozenset(bits),
        )
        try:
            token, tainted = self._packed(globals_, arrays, bits)
        except (KeyError, OverflowError, TypeError, ValueError):
            token, tainted = self._structural(globals_, arrays, bits)
        return NVRef(token=token, snapshot=snapshot, tainted=tainted)

    def _packed(self, globals_, arrays, bits):
        if np is None:
            raise ValueError("no numpy; use structural tokens")
        if len(globals_) != len(self.global_names):
            raise ValueError("global layout drifted")
        if len(arrays) != len(self.array_names):
            raise ValueError("array layout drifted")
        values = self._values
        values.clear()
        taints: list[tuple[int, frozenset]] = []
        for name in self.global_names:
            cell = globals_[name]
            if cell.taint:
                taints.append((len(values), cell.taint))
            values.append(cell.value)
        for name in self.array_names:
            cells = arrays[name]
            values.append(len(cells))
            for cell in cells:
                if cell.taint:
                    taints.append((len(values), cell.taint))
                values.append(cell.value)
        mask = 0
        for chain in bits:
            mask |= 1 << self._bit_index[chain]
        packed = np.asarray(values, dtype=np.int64)
        # bytes objects cache their hash, so repeated dict probes on the
        # same token re-digest nothing.
        return ("v", packed.tobytes(), mask, tuple(taints)), bool(taints)

    @staticmethod
    def _structural(globals_, arrays, bits):
        token = (
            "s",
            tuple((name, globals_[name]) for name in sorted(globals_)),
            tuple((name, tuple(arrays[name])) for name in sorted(arrays)),
            frozenset(bits),
        )
        tainted = any(cell.taint for cell in globals_.values()) or any(
            cell.taint for cells in arrays.values() for cell in cells
        )
        return token, tainted


# ---------------------------------------------------------------------------
# The memo table


@dataclass
class MemoEntry:
    """Everything needed to replay one memoized activation (exact key)."""

    record: object  # ActivationRecord; treated as immutable once cached
    tau_delta: int
    post_nv: NVRef
    post_supply_token: Optional[Hashable]
    post_supply_capture: object


@dataclass
class QuantEntry:
    """A replayable activation under a *quantized* supply key.

    Stored only for reboot-free activations.  ``exec_level`` is the
    charge level the recorded run started from; the replay gate admits
    only devices at or above it (monotonicity makes that exact -- see
    :mod:`repro.energy.segments`).  ``exec_level`` tightens downward
    whenever a lower-level device re-executes the same key reboot-free.
    A replayed device ends at ``level - consumed`` with its RNG streams
    untouched (a reboot-free activation never draws them).
    """

    record: object  # ActivationRecord; reboot-free, treated as immutable
    tau_delta: int
    post_nv: NVRef
    consumed: int
    exec_level: int


@dataclass
class MemoStats:
    """Hit/miss accounting, in device-activations."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: entries adopted from the persistent store (cold size of warm runs)
    disk_loads: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def to_dict(self, entries: int = 0) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_loads": self.disk_loads,
            "hit_rate": self.hit_rate,
            "entries": entries,
        }


class ActivationMemo:
    """Bounded LRU activation cache shared across batches and chunks.

    Capped by entry count and optionally by (approximate, pickled)
    bytes; eviction drops the least-recently-used entry.  Entries still
    referenced by in-flight cohorts stay alive through those
    references, so eviction can only cause future misses, never wrong
    replays -- an evicted key simply re-executes on next encounter and
    the aggregate bytes are unchanged (tested).
    """

    def __init__(
        self, max_entries: int = 65_536, max_bytes: Optional[int] = None
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = MemoStats()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        # Byte accounting only when a byte cap is active; sizing costs a
        # pickle per put, which the uncapped path should not pay.
        self._sizes: Optional[dict[Hashable, int]] = (
            {} if max_bytes is not None else None
        )
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def items(self):
        return self._entries.items()

    def get(self, key: Hashable):
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: Hashable, entry) -> None:
        if self._sizes is not None:
            try:
                size = len(pickle.dumps(entry, pickle.HIGHEST_PROTOCOL))
            except Exception:
                size = 1024  # unpicklable: charge a nominal footprint
            self._bytes += size - self._sizes.pop(key, 0)
            self._sizes[key] = size
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries or (
            self.max_bytes is not None
            and self._bytes > self.max_bytes
            and len(self._entries) > 1
        ):
            stale, _ = self._entries.popitem(last=False)
            if self._sizes is not None:
                self._bytes -= self._sizes.pop(stale, 0)
            self.stats.evictions += 1


# ---------------------------------------------------------------------------
# The batched miss driver


class _MissBatch:
    """Amortized miss execution for one class batch.

    Holds the batch's shared decoded program, cost model, detector
    plan, and NV codec once; every miss drives the machine directly
    instead of building a per-activation
    :class:`~repro.runtime.harness.ActivationStepper`, and post-state
    tokenization reuses the codec's preallocated buffers.  Devices that
    diverge into opaque supply state mid-wave fall back to the scalar
    stepper (:meth:`stepper`).
    """

    __slots__ = ("compiled", "costs", "plan", "engine", "codec")

    def __init__(self, compiled, costs, plan, engine: str, codec: NVCodec):
        self.compiled = compiled
        self.costs = costs
        self.plan = plan
        self.engine = engine
        self.codec = codec

    def run(self, env, supply, nv_ref: NVRef, tau: int, index: int):
        """One real activation; returns (record, tau_delta, post_nv)."""
        machine = create_machine(
            self.engine,
            self.compiled,
            env,
            supply,
            costs=self.costs,
            plan=self.plan,
            nv=materialize_nv(nv_ref),
            start_tau=tau,
        )
        result = machine.run()
        kinds = [v.kind for v in result.trace.violations]
        record = ActivationRecord(
            index=index,
            completed=result.stats.completed,
            violations=result.stats.violations,
            cycles_on=result.stats.cycles_on,
            cycles_off=result.stats.cycles_off,
            reboots=result.stats.reboots,
            fresh_violations=kinds.count("fresh"),
            consistent_violations=kinds.count("consistent"),
            detector_queries=result.detector_queries,
        )
        return record, machine.tau - tau, self.codec.encode(machine.nv)

    def stepper(self, spec, env, supply, nv, start_tau, start_index):
        """Scalar fallback for devices pinned to real stepping."""
        return ActivationStepper(
            self.compiled,
            env,
            supply,
            spec.budget_cycles,
            costs=self.costs,
            plan=self.plan,
            max_activations=spec.max_activations,
            nv=nv,
            engine=self.engine,
            start_tau=start_tau,
            start_index=start_index,
        )


# ---------------------------------------------------------------------------
# Cohorts

#: Sentinel: a uni cohort whose supply has never run (spawn, don't restore).
_FRESH = object()
#: Sentinel: a uni cohort whose supply token has not been computed yet.
_UNSET = object()


class _Cohort:
    """A set of devices in a provably identical situation.

    All members share logical time, activation index, nonvolatile
    state, and supply equivalence; liveness (budget, activation cap,
    stuckness) is all-or-nothing because those limits are uniform
    within the cohort.  Three kinds:

    * ``uni`` -- exact supply-token equivalence (deterministic
      supplies): one shared capture, one representative executes.
    * ``quant`` -- bucketed equivalence (stochastic energy-driven
      supplies): members share the charge *bucket* but keep individual
      levels (packed array) and lazily-materialized supply objects.
    * ``mat`` -- a singleton pinned to a real scalar stepper (opaque
      supply state).
    """

    __slots__ = (
        "kind",
        "positions",
        "tau",
        "index",
        "stuck",
        "budget",
        "cap",
        "env_key",
        "env",
        "period",
        "nv_ref",
        # uni
        "stoken",
        "capture",
        # quant
        "static",
        "bucket_size",
        "bucket",
        "levels",
        "supplies",
        # mat
        "stepper",
    )

    def __init__(self, kind, positions, budget, cap, env_key, env, period, nv_ref):
        self.kind = kind
        self.positions = positions
        self.tau = 0
        self.index = 0
        self.stuck = False
        self.budget = budget
        self.cap = cap
        self.env_key = env_key
        self.env = env
        self.period = period
        self.nv_ref = nv_ref
        self.stoken = _UNSET
        self.capture = _FRESH
        self.static = None
        self.bucket_size = 0
        self.bucket = 0
        self.levels = None
        self.supplies = None
        self.stepper = None

    def alive(self) -> bool:
        return (
            not self.stuck and self.tau < self.budget and self.index < self.cap
        )

    def time_token(self):
        """Period-quantized start time, absolute when taint forbids it."""
        if self.period is None or self.nv_ref.tainted:
            return self.tau
        return self.tau % self.period


def _levels_array(values):
    if np is not None:
        return np.asarray(values, dtype=np.int64)
    return list(values)


def _levels_min(levels) -> int:
    if np is not None and isinstance(levels, np.ndarray):
        return int(levels.min())
    return min(levels)


# ---------------------------------------------------------------------------
# The executor


class VectorFleetExecutor:
    """Batch same-class devices through one shared decode + memo table.

    Drop-in peer of the serial and sharded executors: ``run`` takes
    device specs and returns a :class:`FleetAggregator` whose canonical
    JSON is byte-identical to theirs.  The memo table persists across
    ``run`` calls, so checkpointed chunked runs keep their warm cache;
    with ``memo_dir`` it also persists across processes through a
    :class:`~repro.fleet.memostore.MemoStore`.
    """

    name = "vector"

    def __init__(
        self,
        engine: str = ENGINE_FAST,
        memo: Optional[ActivationMemo] = None,
        max_entries: int = 65_536,
        max_bytes: Optional[int] = None,
        memo_dir: Optional[Path | str] = None,
        supply_buckets: int = DEFAULT_SUPPLY_BUCKETS,
    ) -> None:
        if supply_buckets < 0:
            raise ValueError("supply_buckets must be >= 0 (0 disables)")
        self.engine = engine
        #: what actually executed the last batch (vector always itself)
        self.used = "vector"
        self.memo = (
            memo if memo is not None else ActivationMemo(max_entries, max_bytes)
        )
        self.supply_buckets = supply_buckets
        self.store = MemoStore(memo_dir) if memo_dir is not None else None
        self._shard_tokens: dict = {}
        self._dirty: set = set()
        self._supply_protos: dict[SupplySpec, PowerSupply] = {}
        self._envs: dict = {}
        self._codecs: dict = {}
        self._initials: dict = {}

    # -- shared-resource caches ---------------------------------------------

    def memo_stats(self) -> dict:
        """Hit/miss accounting for reports and benchmarks."""
        return self.memo.stats.to_dict(entries=len(self.memo))

    def _spawn_supply(self, spec: DeviceSpec) -> PowerSupply:
        proto = self._supply_protos.get(spec.supply)
        if proto is None:
            proto = spec.supply.build(0)
            self._supply_protos[spec.supply] = proto
        return proto.spawn(spec.seed + spec.supply.seed_offset)

    def _env(self, spec: DeviceSpec):
        """(env_key, env, period) for ``spec``; envs are pure, so shared."""
        key = (spec.app, spec.env_seed, spec.env_overrides, spec.phase)
        cached = self._envs.get(key)
        if cached is None:
            env = BENCHMARKS[spec.app].env_factory(spec.env_seed)
            if spec.env_overrides:
                bind_signal_specs(env, spec.env_overrides)
            env = env.shifted(spec.phase)
            cached = self._envs[key] = (key, env, env.period())
        return cached

    def _codec(self, spec: DeviceSpec, compiled, plan):
        key = (spec.app, spec.config)
        codec = self._codecs.get(key)
        if codec is None:
            codec = self._codecs[key] = NVCodec(compiled.module, plan)
            self._initials[key] = codec.encode(
                NVState.initial(compiled.module)
            )
        return codec, self._initials[key]

    def _supply_mode(self, sspec) -> str:
        """How a class's supplies group: uni / quant / exact.

        ``uni`` needs spawn-equivalence across per-device seeds, which
        is provable for our own spec kinds: continuous and schedule
        supplies are seed-invariant, and a harvest supply with
        degenerate jitter and boot band excludes every RNG from its
        token.  Stochastic harvest supplies quantize (unless bucketing
        is disabled); anything unrecognized degrades to per-device
        exact tokens -- conservative, never wrong.
        """
        if not isinstance(sspec, SupplySpec):
            return "exact"
        if sspec.kind != "harvest":
            return "uni"
        lo, hi = sspec.boot_fraction
        if sspec.harvest_spread == 1.0 and hi <= lo:
            return "uni"
        return "quant" if self.supply_buckets > 0 else "exact"

    # -- persistent shards ---------------------------------------------------

    def _load_shard(self, prog_key, meta) -> None:
        if self.store is None or prog_key in self._shard_tokens:
            return
        app, config, engine = prog_key
        token = repr(
            (
                MEMO_SCHEMA,
                _parity_scheme(),
                app,
                config,
                engine,
                CacheKey.make(meta.source, config),
                repr(meta.cost_model()),
            )
        )
        self._shard_tokens[prog_key] = token
        loaded = 0
        for key, entry in self.store.load(token).items():
            if key not in self.memo:
                self.memo.put(key, entry)
                loaded += 1
        self.memo.stats.disk_loads += loaded

    def _save_shards(self) -> None:
        if self.store is None:
            return
        for prog_key in sorted(self._dirty):
            entries = {
                key: entry
                for key, entry in self.memo.items()
                if key[0] == prog_key
            }
            if self.store.save(self._shard_tokens[prog_key], entries):
                self._dirty.discard(prog_key)

    # -- execution -----------------------------------------------------------

    def run(self, devices: Sequence[DeviceSpec]) -> FleetAggregator:
        with _span("fleet.vector", "fleet", devices=len(devices)):
            aggregator = FleetAggregator()
            batches: dict[str, list[DeviceSpec]] = {}
            for spec in devices:
                batches.setdefault(spec.class_name, []).append(spec)
            for specs in batches.values():
                aggregator.add_devices(specs[0], len(specs))
                self._run_batch(specs, aggregator)
            self._save_shards()
            return aggregator

    def _run_batch(
        self, specs: list[DeviceSpec], aggregator: FleetAggregator
    ) -> None:
        first = specs[0]
        meta = BENCHMARKS[first.app]
        compiled = GLOBAL_CACHE.get_or_compile(meta.source, first.config)
        costs = meta.cost_model()
        plan = compiled.detector_plan()
        codec, init_ref = self._codec(first, compiled, plan)
        prog_key = (first.app, first.config, self.engine)
        self._load_shard(prog_key, meta)
        driver = _MissBatch(compiled, costs, plan, self.engine, codec)

        cohorts = self._initial_cohorts(specs, init_ref)
        sink: dict = {}
        while True:
            live = [c for c in cohorts if c.alive()]
            if not live:
                break
            groups: dict = {}
            next_cohorts: list[_Cohort] = []
            for c in live:
                if c.kind == "mat":
                    self._step_mat(c, sink)
                    next_cohorts.append(c)
                    continue
                if c.kind == "uni":
                    if c.stoken is _UNSET:
                        c = self._resolve_uni(c, specs, driver)
                        if c.kind == "mat":
                            self._step_mat(c, sink)
                            next_cohorts.append(c)
                            continue
                    gkey = (
                        "u",
                        c.env_key,
                        c.budget,
                        c.cap,
                        c.index,
                        c.tau,
                        c.nv_ref.token,
                        c.stoken,
                    )
                else:
                    gkey = (
                        "q",
                        c.env_key,
                        c.budget,
                        c.cap,
                        c.index,
                        c.tau,
                        c.nv_ref.token,
                        c.static,
                        c.bucket_size,
                        c.bucket,
                    )
                groups.setdefault(gkey, []).append(c)
            for gkey, cs in groups.items():
                if gkey[0] == "u":
                    next_cohorts.extend(
                        self._wave_uni(cs, prog_key, specs, driver, sink)
                    )
                else:
                    next_cohorts.extend(
                        self._wave_quant(cs, prog_key, specs, driver, sink)
                    )
            self._flush_sink(sink, first, aggregator)
            cohorts = next_cohorts

    # -- cohort formation ----------------------------------------------------

    def _initial_cohorts(
        self, specs: list[DeviceSpec], init_ref: NVRef
    ) -> list[_Cohort]:
        cohorts: dict = {}
        order: list[_Cohort] = []
        for pos, spec in enumerate(specs):
            env_key, env, period = self._env(spec)
            mode = self._supply_mode(spec.supply)
            if mode == "quant":
                static = (
                    "energyq",
                    spec.supply.capacity,
                    spec.supply.low_threshold,
                )
                ckey = (
                    "q",
                    env_key,
                    spec.budget_cycles,
                    spec.max_activations,
                    static,
                )
            elif mode == "uni":
                ckey = (
                    "u",
                    env_key,
                    spec.budget_cycles,
                    spec.max_activations,
                    spec.supply,
                )
            else:
                ckey = ("x", pos)
            cohort = cohorts.get(ckey)
            if cohort is None:
                kind = "quant" if mode == "quant" else "uni"
                cohort = _Cohort(
                    kind,
                    [],
                    spec.budget_cycles,
                    spec.max_activations,
                    env_key,
                    env,
                    period,
                    init_ref,
                )
                if kind == "quant":
                    cohort.static = ckey[4]
                cohorts[ckey] = cohort
                order.append(cohort)
            cohort.positions.append(pos)
        for cohort in order:
            if cohort.kind == "quant":
                capacity = cohort.static[1]
                cohort.bucket_size = max(
                    1, capacity // max(1, self.supply_buckets)
                )
                cohort.bucket = capacity // cohort.bucket_size
                cohort.levels = _levels_array(
                    [capacity] * len(cohort.positions)
                )
                cohort.supplies = [None] * len(cohort.positions)
        return order

    def _resolve_uni(
        self, cohort: _Cohort, specs: list[DeviceSpec], driver: _MissBatch
    ) -> _Cohort:
        """Compute a cold uni cohort's supply token with one probe spawn.

        An opaque token (no memo hooks) pins every member to the scalar
        stepper; callers get back either the same cohort (token set) or
        a replacement ``mat`` cohort (singletons only reach this path
        opaque, because grouping by spec proved nothing about them).
        """
        spec = specs[cohort.positions[0]]
        supply = self._spawn_supply(spec)
        token = supply_memo_token(supply)
        if token is not None:
            cohort.stoken = token
            return cohort
        assert len(cohort.positions) == 1, "opaque supply in a shared cohort"
        mat = _Cohort(
            "mat",
            cohort.positions,
            cohort.budget,
            cohort.cap,
            cohort.env_key,
            cohort.env,
            cohort.period,
            cohort.nv_ref,
        )
        mat.stepper = driver.stepper(
            spec, cohort.env, supply, materialize_nv(cohort.nv_ref), 0, 0
        )
        return mat

    # -- wave processing -----------------------------------------------------

    def _wave_uni(self, cs, prog_key, specs, driver, sink):
        rep = cs[0]
        members = sum(len(c.positions) for c in cs)
        mkey = (prog_key, rep.env_key, rep.time_token(), rep.nv_ref.token, rep.stoken)
        entry = self.memo.get(mkey)
        if entry is None:
            spec = specs[rep.positions[0]]
            supply = self._spawn_supply(spec)
            if rep.capture is not _FRESH:
                restore_supply_state(supply, rep.capture)
            record, tau_delta, post_nv = driver.run(
                rep.env, supply, rep.nv_ref, rep.tau, rep.index
            )
            entry = MemoEntry(
                record=record,
                tau_delta=tau_delta,
                post_nv=post_nv,
                post_supply_token=supply_memo_token(supply),
                post_supply_capture=capture_supply_state(supply),
            )
            self.memo.put(mkey, entry)
            self._dirty.add(prog_key)
            self.memo.stats.misses += 1
            self.memo.stats.hits += members - 1
        else:
            self.memo.stats.hits += members
        _sink(sink, entry.record, members)
        new_tau = rep.tau + entry.tau_delta
        new_index = rep.index + 1
        if not entry.record.completed:
            return []  # every member is stuck; records already folded
        if entry.post_supply_token is None:
            # Post-state supply became opaque: pin each member to a real
            # stepper from here on (the scalar fallback path).
            if new_tau >= rep.budget or new_index >= rep.cap:
                return []
            out = []
            for c in cs:
                for pos in c.positions:
                    supply = self._spawn_supply(specs[pos])
                    restore_supply_state(supply, entry.post_supply_capture)
                    mat = _Cohort(
                        "mat",
                        [pos],
                        c.budget,
                        c.cap,
                        c.env_key,
                        c.env,
                        c.period,
                        entry.post_nv,
                    )
                    mat.tau = new_tau
                    mat.index = new_index
                    mat.stepper = driver.stepper(
                        specs[pos],
                        c.env,
                        supply,
                        materialize_nv(entry.post_nv),
                        new_tau,
                        new_index,
                    )
                    out.append(mat)
            return out
        if len(cs) > 1:
            positions = rep.positions
            for c in cs[1:]:
                positions.extend(c.positions)
        rep.tau = new_tau
        rep.index = new_index
        rep.nv_ref = entry.post_nv
        rep.stoken = entry.post_supply_token
        rep.capture = entry.post_supply_capture
        return [rep]

    def _wave_quant(self, cs, prog_key, specs, driver, sink):
        rep = cs[0]
        bsize = rep.bucket_size
        qkey = (
            prog_key,
            rep.env_key,
            rep.time_token(),
            rep.nv_ref.token,
            ("q", rep.static, bsize, rep.bucket),
        )
        entry = self.memo.get(qkey)
        if entry is not None and all(
            _levels_min(c.levels) >= entry.exec_level for c in cs
        ):
            return self._quant_replay_all(cs, entry, sink)
        # Mixed wave: walk members in deterministic order; the first
        # reboot-free execution publishes (or tightens) the bucket entry
        # and later members in the same wave ride it.
        new_index = rep.index + 1
        regroup: dict = {}
        order: list[_Cohort] = []
        for c in cs:
            levels = c.levels
            supplies = c.supplies
            for i, pos in enumerate(c.positions):
                level = int(levels[i])
                if entry is not None and level >= entry.exec_level:
                    self.memo.stats.hits += 1
                    _sink(sink, entry.record, 1)
                    if entry.record.completed:
                        self._requeue(
                            regroup,
                            order,
                            c,
                            new_index,
                            rep.tau + entry.tau_delta,
                            entry.post_nv,
                            level - entry.consumed,
                            pos,
                            supplies[i],
                        )
                    continue
                supply = supplies[i]
                if supply is None:
                    supply = self._spawn_supply(specs[pos])
                # Bucketed replays track levels outside the supply
                # object; re-sync before real execution.
                supply.capacitor.level = level
                record, tau_delta, post_nv = driver.run(
                    c.env, supply, c.nv_ref, rep.tau, rep.index
                )
                self.memo.stats.misses += 1
                _sink(sink, record, 1)
                new_level = supply.capacitor.level
                if record.reboots == 0 and record.cycles_off == 0:
                    if entry is None:
                        entry = QuantEntry(
                            record=record,
                            tau_delta=tau_delta,
                            post_nv=post_nv,
                            consumed=level - new_level,
                            exec_level=level,
                        )
                        self.memo.put(qkey, entry)
                        self._dirty.add(prog_key)
                    elif level < entry.exec_level:
                        # Same key, reboot-free from a lower level: the
                        # identical path re-ran; widen the gate.
                        entry.exec_level = level
                        self._dirty.add(prog_key)
                if record.completed:
                    self._requeue(
                        regroup,
                        order,
                        c,
                        new_index,
                        rep.tau + tau_delta,
                        post_nv,
                        new_level,
                        pos,
                        supply,
                    )
        for cohort in order:
            cohort.levels = _levels_array(cohort.levels)
        return order

    def _quant_replay_all(self, cs, entry: QuantEntry, sink) -> list:
        """Whole-group bucketed replay: vectorized drain + bucket split."""
        members = sum(len(c.positions) for c in cs)
        self.memo.stats.hits += members
        _sink(sink, entry.record, members)
        if not entry.record.completed:
            return []
        consumed = entry.consumed
        by_bucket: dict = {}
        order: list[_Cohort] = []
        for c in cs:
            c.tau += entry.tau_delta
            c.index += 1
            c.nv_ref = entry.post_nv
            bsize = c.bucket_size
            if np is not None and isinstance(c.levels, np.ndarray):
                c.levels -= consumed
                buckets = c.levels // bsize
                first = int(buckets[0])
                if bool((buckets == first).all()):
                    splits = [(first, None)]
                else:
                    splits = [
                        (int(b), buckets == b) for b in np.unique(buckets)
                    ]
            else:
                c.levels = [lv - consumed for lv in c.levels]
                buckets = [lv // bsize for lv in c.levels]
                uniq = sorted(set(buckets))
                if len(uniq) == 1:
                    splits = [(uniq[0], None)]
                else:
                    splits = [(b, b) for b in uniq]
            for bucket, mask in splits:
                target = by_bucket.get(bucket)
                if mask is None and target is None and len(splits) == 1:
                    # Common case: the cohort stays whole; keep its
                    # membership arrays untouched (O(1) per wave).
                    c.bucket = bucket
                    by_bucket[bucket] = c
                    order.append(c)
                    continue
                if np is not None and isinstance(mask, np.ndarray):
                    idx = np.flatnonzero(mask)
                    positions = [c.positions[j] for j in idx]
                    levels = c.levels[idx]
                    supplies = [c.supplies[j] for j in idx]
                elif mask is None:
                    positions = c.positions
                    levels = c.levels
                    supplies = c.supplies
                else:  # list fallback: mask is the bucket value
                    sel = [j for j, b in enumerate(buckets) if b == mask]
                    positions = [c.positions[j] for j in sel]
                    levels = [c.levels[j] for j in sel]
                    supplies = [c.supplies[j] for j in sel]
                if target is None:
                    split = _Cohort(
                        "quant",
                        list(positions),
                        c.budget,
                        c.cap,
                        c.env_key,
                        c.env,
                        c.period,
                        c.nv_ref,
                    )
                    split.tau = c.tau
                    split.index = c.index
                    split.static = c.static
                    split.bucket_size = bsize
                    split.bucket = bucket
                    split.levels = levels
                    split.supplies = list(supplies)
                    by_bucket[bucket] = split
                    order.append(split)
                else:
                    target.positions.extend(positions)
                    target.supplies.extend(supplies)
                    if np is not None and isinstance(
                        target.levels, np.ndarray
                    ):
                        target.levels = np.concatenate(
                            [target.levels, np.asarray(levels, dtype=np.int64)]
                        )
                    else:
                        target.levels = list(target.levels) + list(levels)
        return order

    @staticmethod
    def _requeue(
        regroup, order, src: _Cohort, index, tau, nv_ref, level, pos, supply
    ) -> None:
        """File one quant member into its post-activation cohort."""
        bucket = level // src.bucket_size
        key = (tau, nv_ref.token, bucket)
        cohort = regroup.get(key)
        if cohort is None:
            cohort = _Cohort(
                "quant",
                [],
                src.budget,
                src.cap,
                src.env_key,
                src.env,
                src.period,
                nv_ref,
            )
            cohort.tau = tau
            cohort.index = index
            cohort.static = src.static
            cohort.bucket_size = src.bucket_size
            cohort.bucket = bucket
            cohort.levels = []
            cohort.supplies = []
            regroup[key] = cohort
            order.append(cohort)
        cohort.positions.append(pos)
        cohort.levels.append(level)
        cohort.supplies.append(supply)

    def _step_mat(self, cohort: _Cohort, sink) -> None:
        record = cohort.stepper.step()
        assert record is not None, "cohort liveness disagrees with stepper"
        cohort.tau = cohort.stepper.tau
        cohort.index += 1
        if not record.completed:
            cohort.stuck = True
        _sink(sink, record, 1)

    @staticmethod
    def _flush_sink(sink: dict, spec: DeviceSpec, aggregator) -> None:
        """One ``observe_many`` per distinct record content per wave."""
        for record, count in sink.values():
            aggregator.observe_many(spec, record, count)
        sink.clear()


def _sink(sink: dict, record, count: int) -> None:
    key = (
        record.index,
        record.completed,
        record.violations,
        record.cycles_on,
        record.cycles_off,
        record.reboots,
        record.fresh_violations,
        record.consistent_violations,
        record.detector_queries,
    )
    slot = sink.get(key)
    if slot is None:
        sink[key] = [record, count]
    else:
        slot[1] += count


def _parity_scheme() -> str:
    from repro.fleet.engine import AGGREGATE_PARITY_SCHEME

    return AGGREGATE_PARITY_SCHEME
