"""Logical-time fleet scheduling: advance many devices in tau order.

Devices are independent (no radio model yet), but the scheduler still
interleaves them on one global logical clock: it keeps every live device
in a priority queue keyed by the device's current tau and always runs
one activation of the *earliest* device.  That gives downstream
consumers a single, monotone-by-device event stream -- the property a
streaming aggregator, a timeline renderer, or a future shared-medium
model all need -- while touching only one device's state at a time, so
memory stays at one machine per device rather than one trace per
activation.
"""

from __future__ import annotations

import heapq
from typing import Iterator, Sequence

from repro.fleet.device import FleetDevice
from repro.fleet.spec import DeviceSpec
from repro.runtime.harness import ActivationRecord

#: One scheduled event: which device just ran which activation.
FleetEvent = tuple[DeviceSpec, ActivationRecord]


class FleetScheduler:
    """Run a set of devices to exhaustion, activation by activation."""

    def __init__(self, devices: Sequence[FleetDevice]) -> None:
        # The enumeration index breaks tau ties deterministically (two
        # devices booting at tau=0 run in expansion order) and keeps the
        # heap from ever comparing FleetDevice objects.
        self._heap: list[tuple[int, int, FleetDevice]] = [
            (device.stepper.tau, order, device)
            for order, device in enumerate(devices)
            if not device.stepper.exhausted
        ]
        heapq.heapify(self._heap)

    @property
    def live_devices(self) -> int:
        return len(self._heap)

    def events(self) -> Iterator[FleetEvent]:
        """Yield (device, activation) pairs in global tau order.

        "Tau order" means: each activation is started by the device whose
        logical clock is earliest among all live devices at that moment.
        A device leaves the queue when its stepper is exhausted (budget
        spent, activation cap, or stuck region).
        """
        heap = self._heap
        while heap:
            _, order, device = heapq.heappop(heap)
            record = device.stepper.step()
            if record is None:
                continue
            yield device.spec, record
            if not device.stepper.exhausted:
                heapq.heappush(heap, (device.stepper.tau, order, device))

    def run(self, sink) -> int:
        """Drain the schedule into ``sink(spec, record)``; return events."""
        count = 0
        for spec, record in self.events():
            sink(spec, record)
            count += 1
        return count
