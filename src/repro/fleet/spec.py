"""Declarative fleet specifications: N devices as data.

A :class:`FleetSpec` describes a heterogeneous population of
intermittently-powered devices the way a
:class:`~repro.eval.campaign.CampaignSpec` describes an evaluation grid:
JSON-loadable, picklable, and expandable into per-device work units.  The
unit of heterogeneity is the :class:`DeviceClass` -- "1000 tire monitors
built with the ocelot config, NoisyHarvester rates drawn from a seeded
±50% band, environments phase-shifted per device" is one class entry --
and :meth:`FleetSpec.expand` stamps it into :class:`DeviceSpec` rows,
one per physical device, every per-device parameter derived
deterministically from the fleet's single root seed.

Reuses the campaign engine's :class:`EnvironmentSpec` and
:class:`SupplySpec` axes so the same environment-override grammar and
supply profiles describe both sweeps and fleets.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, replace

from repro.apps import BENCHMARKS
from repro.core.passes import BuildConfig, ensure_registered
from repro.energy.seeds import SEED_SCHEME, derive_seed
from repro.eval.campaign import EnvironmentSpec, SupplySpec
from repro.eval.profiles import STANDARD_BUDGET_CYCLES


class FleetError(ValueError):
    """A malformed fleet spec (unknown app, bad count, bad jitter, ...)."""


def _normalize_config(config: str | BuildConfig) -> str:
    try:
        name = ensure_registered(config)
    except ValueError as exc:
        raise FleetError(str(exc)) from None
    return name if isinstance(config, BuildConfig) else config


@dataclass(frozen=True)
class DeviceClass:
    """One homogeneous slice of the fleet, described by data only.

    ``count`` devices share an (app, config, environment, supply) shape;
    the jitter knobs make the population heterogeneous *within* the
    class, each device's draw seeded from the fleet root seed:

    * ``harvest_jitter`` -- each device's harvest rate is drawn uniformly
      from ``rate * [1 - j, 1 + j]`` (RF shadowing: some nodes sit closer
      to the transmitter than others);
    * ``phase_jitter`` -- each device's environment is advanced by a
      per-device offset in ``[0, phase_jitter)`` cycles, de-correlating
      signal epochs across the fleet;
    * ``env_seed_stride`` -- device ``i`` builds its environment from
      ``env_seed + i * stride`` (distinct worlds, not just phases).
    """

    name: str
    app: str
    config: str = "ocelot"
    count: int = 1
    environment: EnvironmentSpec = EnvironmentSpec()
    supply: SupplySpec = SupplySpec()
    harvest_jitter: float = 0.0
    phase_jitter: int = 0
    env_seed_stride: int = 0
    budget_cycles: int | None = None
    max_activations: int | None = None

    def __post_init__(self) -> None:
        if self.count < 0:
            raise FleetError(f"class '{self.name}': count must be >= 0")
        if self.app not in BENCHMARKS:
            known = ", ".join(BENCHMARKS)
            raise FleetError(
                f"class '{self.name}': unknown app '{self.app}'; known: {known}"
            )
        object.__setattr__(self, "config", _normalize_config(self.config))
        if not 0.0 <= self.harvest_jitter < 1.0:
            raise FleetError(
                f"class '{self.name}': harvest_jitter must be in [0, 1)"
            )
        if self.phase_jitter < 0:
            raise FleetError(
                f"class '{self.name}': phase_jitter must be >= 0"
            )
        if self.env_seed_stride < 0:
            # Negative strides drive env seeds negative, which the apps'
            # environment factories reject only deep inside a worker.
            raise FleetError(
                f"class '{self.name}': env_seed_stride must be >= 0"
            )

    def to_dict(self) -> dict:
        data: dict = {
            "name": self.name,
            "app": self.app,
            "config": self.config,
            "count": self.count,
            "environment": self.environment.to_dict(),
            "supply": self.supply.to_dict(),
        }
        if self.harvest_jitter:
            data["harvest_jitter"] = self.harvest_jitter
        if self.phase_jitter:
            data["phase_jitter"] = self.phase_jitter
        if self.env_seed_stride:
            data["env_seed_stride"] = self.env_seed_stride
        if self.budget_cycles is not None:
            data["budget_cycles"] = self.budget_cycles
        if self.max_activations is not None:
            data["max_activations"] = self.max_activations
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "DeviceClass":
        try:
            environment = EnvironmentSpec.from_dict(
                data.get("environment", {"name": "default"})
            )
            supply = SupplySpec.from_dict(
                data.get("supply", {"name": "harvest"})
            )
        except (TypeError, ValueError) as exc:
            raise FleetError(
                f"class '{data.get('name', '?')}': {exc}"
            ) from None
        return cls(
            name=data["name"],
            app=data["app"],
            config=data.get("config", "ocelot"),
            count=int(data.get("count", 1)),
            environment=environment,
            supply=supply,
            harvest_jitter=float(data.get("harvest_jitter", 0.0)),
            phase_jitter=int(data.get("phase_jitter", 0)),
            env_seed_stride=int(data.get("env_seed_stride", 0)),
            budget_cycles=(
                int(data["budget_cycles"])
                if data.get("budget_cycles") is not None
                else None
            ),
            max_activations=(
                int(data["max_activations"])
                if data.get("max_activations") is not None
                else None
            ),
        )


@dataclass(frozen=True)
class DeviceSpec:
    """One physical device, fully determined by primitives.

    Everything a worker process needs to materialize and run the device:
    which build to fetch from the compile cache, how to construct its
    environment (seed + overrides + phase), and its supply parameters
    (already jittered -- the per-device harvest-rate draw happens at
    expansion time so a spec pickles as plain data and shards produce
    the same device regardless of which process runs it).
    """

    device_id: str
    class_name: str
    app: str
    config: str
    index: int
    seed: int
    env_seed: int
    env_overrides: tuple[tuple[str, str], ...]
    phase: int
    supply: SupplySpec
    budget_cycles: int
    max_activations: int


@dataclass(frozen=True)
class FleetSpec:
    """A whole fleet: device classes plus fleet-wide defaults."""

    classes: tuple[DeviceClass, ...]
    fleet_seed: int = 0
    budget_cycles: int = STANDARD_BUDGET_CYCLES
    max_activations: int = 100_000
    name: str = "fleet"

    def __post_init__(self) -> None:
        if not self.classes:
            raise FleetError("fleet needs at least one device class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise FleetError(f"duplicate device class names: {names}")
        if self.budget_cycles <= 0:
            raise FleetError("budget_cycles must be positive")

    @property
    def device_count(self) -> int:
        return sum(c.count for c in self.classes)

    def with_total_devices(self, total: int) -> "FleetSpec":
        """Rescale class counts so the fleet has exactly ``total`` devices.

        Apportions proportionally to the spec's counts with the
        largest-remainder method (deterministic: remainder ties break by
        class order), so ``--devices N`` scales a population without
        distorting its class mix.
        """
        if total < 0:
            raise FleetError("device total must be >= 0")
        weights = [c.count for c in self.classes]
        weight_sum = sum(weights)
        if weight_sum == 0:
            raise FleetError("cannot rescale a fleet with zero devices")
        quotas = [total * w / weight_sum for w in weights]
        counts = [int(q) for q in quotas]
        remainders = sorted(
            range(len(quotas)),
            key=lambda i: (-(quotas[i] - counts[i]), i),
        )
        for i in remainders[: total - sum(counts)]:
            counts[i] += 1
        return replace(
            self,
            classes=tuple(
                replace(cls, count=n)
                for cls, n in zip(self.classes, counts, strict=True)
            ),
        )

    def expand(self) -> list[DeviceSpec]:
        """Stamp every class into per-device specs, in class order.

        Per-device randomness (rate jitter, phase) comes from streams
        derived from ``(fleet_seed, class, index)``, so the expansion is
        a pure function of the spec: re-running, resuming, and sharding
        all see identical devices.
        """
        devices: list[DeviceSpec] = []
        for cls in self.classes:
            budget = (
                cls.budget_cycles
                if cls.budget_cycles is not None
                else self.budget_cycles
            )
            max_acts = (
                cls.max_activations
                if cls.max_activations is not None
                else self.max_activations
            )
            for index in range(cls.count):
                seed = derive_seed(self.fleet_seed, cls.name, index)
                supply = cls.supply
                if cls.harvest_jitter and supply.kind == "harvest":
                    rng = random.Random(derive_seed(seed, "rate"))
                    factor = rng.uniform(
                        1.0 - cls.harvest_jitter, 1.0 + cls.harvest_jitter
                    )
                    supply = replace(
                        supply,
                        harvest_rate=max(1, round(supply.harvest_rate * factor)),
                    )
                phase = 0
                if cls.phase_jitter:
                    rng = random.Random(derive_seed(seed, "phase"))
                    phase = rng.randrange(cls.phase_jitter)
                devices.append(
                    DeviceSpec(
                        device_id=f"{cls.name}/d{index}",
                        class_name=cls.name,
                        app=cls.app,
                        config=cls.config,
                        index=index,
                        seed=seed,
                        env_seed=cls.environment.env_seed
                        + index * cls.env_seed_stride,
                        env_overrides=cls.environment.overrides,
                        phase=phase,
                        supply=supply,
                        budget_cycles=budget,
                        max_activations=max_acts,
                    )
                )
        return devices

    def fingerprint(self) -> str:
        """Content hash binding checkpoints to the exact fleet they ran.

        The seed-derivation scheme version is folded in: every device
        stream derives from ``derive_seed``, so a checkpoint written
        under an older scheme must be rejected on resume rather than
        silently mixing old-stream and new-stream devices in one
        aggregate.
        """
        payload = json.dumps(
            {"seed_scheme": SEED_SCHEME, "spec": self.to_dict()},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "fleet_seed": self.fleet_seed,
            "budget_cycles": self.budget_cycles,
            "max_activations": self.max_activations,
            "classes": [c.to_dict() for c in self.classes],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSpec":
        raw_classes = data.get("classes")
        if not isinstance(raw_classes, list) or not raw_classes:
            raise FleetError("fleet spec needs a non-empty 'classes' list")
        try:
            classes = tuple(DeviceClass.from_dict(c) for c in raw_classes)
            return cls(
                classes=classes,
                fleet_seed=int(data.get("fleet_seed", 0)),
                budget_cycles=int(
                    data.get("budget_cycles", STANDARD_BUDGET_CYCLES)
                ),
                max_activations=int(data.get("max_activations", 100_000)),
                name=data.get("name", "fleet"),
            )
        except FleetError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise FleetError(f"malformed fleet spec: {exc}") from None

    @classmethod
    def from_json(cls, text: str) -> "FleetSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FleetError(f"fleet spec is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise FleetError("fleet spec must be a JSON object")
        return cls.from_dict(data)
