"""``repro.fleet``: scalable multi-device intermittent fleet simulation.

The paper evaluates one device at a time; deployments run fleets.  This
subsystem executes thousands of intermittently-powered devices in one
simulation:

* :mod:`repro.fleet.spec` -- declarative :class:`FleetSpec` (JSON-loadable,
  mirroring campaign specs) with generators for heterogeneous populations;
* :mod:`repro.fleet.device` -- materialization with shared compiled builds
  and cheaply re-seeded per-device supplies;
* :mod:`repro.fleet.scheduler` -- a logical-time scheduler advancing many
  machines in tau order;
* :mod:`repro.fleet.aggregate` -- streaming, mergeable, byte-deterministic
  aggregates (violation rates, staleness/consistency histograms, duty
  cycles) that never materialize per-activation results;
* :mod:`repro.fleet.engine` -- serial and sharded-multiprocessing
  executors with bit-identical aggregates, plus checkpoint/resume so long
  runs split across invocations;
* :mod:`repro.fleet.vector` -- the vectorized executor: activation
  memoization with quantized supply keys, cohort wave batching over
  same-class devices, and a batched miss driver, still bit-identical to
  the serial path;
* :mod:`repro.fleet.memostore` -- content-addressed on-disk persistence
  for the activation memo (``--memo-dir``), so re-runs start warm;
* :mod:`repro.fleet.report` -- tables and parity fingerprints.

Entry point: ``python -m repro fleet SPEC.json --devices N --executor vector``.
"""

from repro.fleet.aggregate import ClassAggregate, FleetAggregator
from repro.fleet.device import DeviceFactory, FleetDevice
from repro.fleet.engine import (
    AGGREGATE_PARITY_SCHEME,
    FleetCheckpoint,
    FleetResult,
    SerialFleetExecutor,
    ShardedFleetExecutor,
    checkpoint_fingerprint,
    make_fleet_executor,
    precompile_fleet,
    run_fleet,
    run_shard,
)
from repro.fleet.memostore import MemoStore
from repro.fleet.vector import (
    ActivationMemo,
    NVCodec,
    QuantEntry,
    VectorFleetExecutor,
)
from repro.fleet.report import (
    aggregate_fingerprint,
    duty_table,
    fleet_table,
    histogram_table,
)
from repro.fleet.scheduler import FleetScheduler
from repro.fleet.spec import DeviceClass, DeviceSpec, FleetError, FleetSpec

__all__ = [
    "AGGREGATE_PARITY_SCHEME",
    "ActivationMemo",
    "ClassAggregate",
    "FleetAggregator",
    "DeviceFactory",
    "FleetDevice",
    "FleetCheckpoint",
    "FleetResult",
    "MemoStore",
    "NVCodec",
    "QuantEntry",
    "SerialFleetExecutor",
    "ShardedFleetExecutor",
    "VectorFleetExecutor",
    "checkpoint_fingerprint",
    "make_fleet_executor",
    "precompile_fleet",
    "run_fleet",
    "run_shard",
    "aggregate_fingerprint",
    "duty_table",
    "fleet_table",
    "histogram_table",
    "FleetScheduler",
    "DeviceClass",
    "DeviceSpec",
    "FleetError",
    "FleetSpec",
]
