"""Fleet execution: serial and sharded runs, checkpointing, results.

The engine turns a :class:`FleetSpec` into an aggregate:

1. expand the spec into per-device :class:`DeviceSpec` rows (pure data);
2. precompile every (app, config) build once into the shared cache;
3. hand device batches to an executor -- :class:`SerialFleetExecutor`
   runs one tau-ordered scheduler over the batch in-process;
   :class:`ShardedFleetExecutor` deals devices round-robin to worker
   processes, each running its own scheduler, and merges the shard
   aggregates.  Aggregation is commutative integer summation, so both
   executors produce **bit-identical** aggregates;
4. optionally checkpoint after every chunk of devices, so a
   million-activation fleet splits across invocations: a resumed run
   folds the checkpointed aggregate and continues with the next device,
   producing the same bytes as one uninterrupted run.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import multiprocessing
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Protocol, Sequence

from repro.apps import BENCHMARKS
from repro.core.cache import GLOBAL_CACHE
from repro.core.passes import BuildConfig, get_config, register_config
from repro.eval.report import Table
from repro.fleet.aggregate import FleetAggregator
from repro.fleet.device import DeviceFactory
from repro.fleet.scheduler import FleetScheduler
from repro.fleet.spec import DeviceSpec, FleetError, FleetSpec
from repro.runtime.engine import ENGINE_FAST
from repro.telemetry.trace import span as _span


def run_shard(
    devices: Sequence[DeviceSpec], engine: str = ENGINE_FAST
) -> FleetAggregator:
    """Run one batch of devices to exhaustion; the executor work unit.

    Materializes the batch through one :class:`DeviceFactory` (shared
    builds, spawned supplies), schedules it in tau order, and streams
    every activation into a fresh aggregator.
    """
    factory = DeviceFactory(engine=engine)
    aggregator = FleetAggregator()
    materialized = []
    for spec in devices:
        aggregator.add_device(spec)
        materialized.append(factory.build(spec))
    FleetScheduler(materialized).run(aggregator.observe)
    return aggregator


def _run_shard_payload(payload: tuple[tuple[DeviceSpec, ...], str]) -> dict:
    """Worker entry point: ship the aggregate back as primitives."""
    devices, engine = payload
    return run_shard(devices, engine=engine).to_dict()


def _register_worker_configs(configs: tuple[BuildConfig, ...]) -> None:
    for config in configs:
        register_config(config, replace=True)


class FleetExecutor(Protocol):
    """Runs a batch of devices and returns its aggregate."""

    name: str

    def run(self, devices: Sequence[DeviceSpec]) -> FleetAggregator: ...


class SerialFleetExecutor:
    """One scheduler over the whole batch, in-process."""

    name = "serial"

    def __init__(self, engine: str = ENGINE_FAST) -> None:
        self.engine = engine
        #: what actually executed the last batch (serial always itself)
        self.used = "serial"

    def run(self, devices: Sequence[DeviceSpec]) -> FleetAggregator:
        with _span("fleet.serial", "fleet", devices=len(devices)):
            return run_shard(devices, engine=self.engine)


class ShardedFleetExecutor:
    """Deal devices across worker processes; merge shard aggregates.

    Sharding is round-robin over the expansion order (device ``i`` goes
    to shard ``i mod n``), which balances heterogeneous classes across
    workers without any cross-process coordination.  Workers prefer the
    ``fork`` start method to inherit the parent's warm compile cache; a
    pool initializer re-registers the fleet's build configurations so
    spawned workers resolve them by name too.

    Small batches fall back to the in-process path: with one effective
    worker, or fewer than ``min_devices_per_shard`` devices per shard,
    pool setup and aggregate shipping cost more than the sharding wins
    (the regression the ``BENCH_fleet.json`` sharding_speedup < 1 run
    exposed).  Aggregation is commutative either way, so the fallback is
    invisible in the result bytes; ``used`` records which path ran so
    the fleet report can say what actually executed.
    """

    name = "sharded"

    def __init__(
        self,
        processes: Optional[int] = None,
        shards: Optional[int] = None,
        engine: str = ENGINE_FAST,
        min_devices_per_shard: int = 16,
    ) -> None:
        if processes is not None and processes <= 0:
            raise ValueError("processes must be positive (or None for auto)")
        if shards is not None and shards <= 0:
            raise ValueError("shards must be positive (or None for auto)")
        if min_devices_per_shard <= 0:
            raise ValueError("min_devices_per_shard must be positive")
        self.processes = processes
        self.shards = shards
        self.engine = engine
        self.min_devices_per_shard = min_devices_per_shard
        #: executor actually used by the last ``run`` ("sharded" or "serial")
        self.used = "sharded"

    def _context(self):
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context()

    def run(self, devices: Sequence[DeviceSpec]) -> FleetAggregator:
        with _span("fleet.sharded", "fleet", devices=len(devices)):
            return self._run(devices)

    def _run(self, devices: Sequence[DeviceSpec]) -> FleetAggregator:
        ctx = self._context()
        processes = self.processes or min(len(devices) or 1, ctx.cpu_count() or 1)
        shard_count = min(self.shards or processes, len(devices) or 1)
        if self.shards is None:
            # Right-size rather than all-or-nothing: a many-core host
            # with a medium batch runs fewer, fuller shards instead of
            # losing parallelism entirely to the small-batch fallback.
            # An explicit shard count is honored as given.
            shard_count = min(
                shard_count, max(1, len(devices) // self.min_devices_per_shard)
            )
        if processes == 1 or shard_count <= 1:
            self.used = "serial"
            return run_shard(devices, engine=self.engine)
        self.used = "sharded"
        shards = [
            (tuple(devices[i::shard_count]), self.engine)
            for i in range(shard_count)
        ]
        configs = tuple(
            get_config(name)
            for name in sorted({d.config for d in devices})
        )
        aggregate = FleetAggregator()
        with ctx.Pool(
            processes=min(processes, shard_count),
            initializer=_register_worker_configs,
            initargs=(configs,),
        ) as pool:
            for payload in pool.map(_run_shard_payload, shards):
                aggregate.merge(FleetAggregator.from_dict(payload))
        return aggregate


def make_fleet_executor(
    name: str,
    processes: Optional[int] = None,
    engine: str = ENGINE_FAST,
    memo_dir: Optional[Path | str] = None,
    supply_buckets: Optional[int] = None,
) -> FleetExecutor:
    if name == "vector":
        from repro.fleet.vector import DEFAULT_SUPPLY_BUCKETS, VectorFleetExecutor

        return VectorFleetExecutor(
            engine=engine,
            memo_dir=memo_dir,
            supply_buckets=(
                supply_buckets
                if supply_buckets is not None
                else DEFAULT_SUPPLY_BUCKETS
            ),
        )
    if memo_dir is not None or supply_buckets is not None:
        # The memo knobs silently doing nothing on a memo-less executor
        # would read as "persistence is on" when it is not.
        raise FleetError(
            f"--memo-dir / --supply-buckets require the vector executor, "
            f"not '{name}'"
        )
    if name == "serial":
        return SerialFleetExecutor(engine=engine)
    if name in ("sharded", "parallel"):
        return ShardedFleetExecutor(processes=processes, engine=engine)
    raise FleetError(
        f"unknown fleet executor '{name}' (serial | sharded | vector)"
    )


# ---------------------------------------------------------------------------
# Checkpointing

#: Version of the cross-executor aggregate-parity contract.  All three
#: executor families (serial, sharded, vector) fold activations with
#: commutative integer sums into the same canonical aggregate encoding,
#: so a checkpoint written by one family resumes under another and the
#: final bytes match an uninterrupted run.  If a future change breaks
#: that equivalence, bump this string: checkpoint fingerprints bind it
#: (the same pattern as the seed-scheme fingerprint binding), so every
#: older checkpoint is rejected instead of silently mixing families.
#: fleet-parity-2: ``ClassAggregate`` grew ``detector_queries``; older
#: checkpoints lack the key and must be rejected on resume.
AGGREGATE_PARITY_SCHEME = "fleet-parity-2"


def checkpoint_fingerprint(spec: FleetSpec) -> str:
    """What a checkpoint must match to be resumable against ``spec``.

    Binds the spec fingerprint (itself seed-scheme-bound) together with
    the aggregate-parity scheme, so a resume is accepted exactly when
    the remaining devices *and* the fold semantics are provably the
    same as the run that wrote the checkpoint -- regardless of which
    executor family wrote it.
    """
    payload = json.dumps(
        {
            "parity": AGGREGATE_PARITY_SCHEME,
            "spec": spec.fingerprint(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class FleetCheckpoint:
    """Resume point: how many devices are folded into ``aggregate``.

    Devices are folded in expansion order, so ``devices_done`` plus the
    spec fingerprint fully determines the remaining work.  The aggregate
    is stored in its canonical dict form; resuming merges it and
    continues -- sums make the split invisible in the final bytes.
    ``executor_family`` records who wrote the checkpoint, so a resumed
    run can report every family that contributed to its aggregate.
    """

    fingerprint: str
    devices_done: int
    aggregate: dict
    executor_family: str = ""

    def save(self, path: Path | str) -> None:
        payload = {
            "fingerprint": self.fingerprint,
            "devices_done": self.devices_done,
            "aggregate": self.aggregate,
            "executor_family": self.executor_family,
        }
        target = Path(path)
        # Write-then-rename so a crash mid-save never corrupts the
        # previous checkpoint (resume would silently restart otherwise).
        tmp = target.with_suffix(target.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        tmp.replace(target)

    @classmethod
    def load(cls, path: Path | str) -> "FleetCheckpoint":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise FleetError(f"cannot load fleet checkpoint: {exc}") from None
        try:
            return cls(
                fingerprint=data["fingerprint"],
                devices_done=int(data["devices_done"]),
                aggregate=data["aggregate"],
                executor_family=str(data.get("executor_family", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FleetError(f"malformed fleet checkpoint: {exc}") from None


# ---------------------------------------------------------------------------
# Results


@dataclass
class FleetResult:
    """Aggregate plus run-level bookkeeping."""

    spec: FleetSpec
    aggregate: FleetAggregator
    executor: str = "serial"
    #: executor path that actually ran (a sharded executor may fall back
    #: to the serial path on small batches / single-core hosts)
    executor_used: str = "serial"
    engine: str = ENGINE_FAST
    devices: int = 0
    wall_time: float = 0.0
    resumed_devices: int = 0
    #: activation-memo accounting (vector executor only; None otherwise)
    memo: Optional[dict] = None

    @property
    def devices_per_second(self) -> float:
        if self.wall_time <= 0:
            return 0.0
        return (self.devices - self.resumed_devices) / self.wall_time

    def rows(self) -> list[dict]:
        """Per-class aggregate rows -- the deterministic report payload."""
        rows = []
        for name in self.aggregate.class_names:
            agg = self.aggregate[name]
            rows.append({"class": name, **agg.to_dict()})
        return rows

    def table(self) -> Table:
        from repro.fleet.report import fleet_table

        return fleet_table(self)

    def to_dict(self) -> dict:
        payload = {
            "spec": self.spec.to_dict(),
            "executor": self.executor,
            "executor_used": self.executor_used,
            "engine": self.engine,
            "devices": self.devices,
            "wall_time": self.wall_time,
            "resumed_devices": self.resumed_devices,
            "aggregate": self.aggregate.to_dict(),
        }
        if self.memo is not None:
            payload["memo"] = self.memo
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


# ---------------------------------------------------------------------------
# Driver


def precompile_fleet(spec: FleetSpec) -> int:
    """Warm the compile cache with every (app, config) build of the fleet.

    Device classes share builds: a fleet of 10,000 devices over 3 classes
    compiles at most 3 programs, and forked shard workers inherit all of
    them.  Returns the number of fresh compiles.
    """
    compiled_now = 0
    pairs = {(c.app, c.config) for c in spec.classes}
    for app, config in sorted(pairs):
        meta = BENCHMARKS[app]
        _, cached = GLOBAL_CACHE.get_or_compile_with_info(meta.source, config)
        if not cached:
            compiled_now += 1
    return compiled_now


def run_fleet(
    spec: FleetSpec,
    executor: FleetExecutor | str | None = None,
    processes: Optional[int] = None,
    checkpoint_path: Optional[Path | str] = None,
    checkpoint_every: Optional[int] = None,
    engine: str = ENGINE_FAST,
    memo_dir: Optional[Path | str] = None,
    supply_buckets: Optional[int] = None,
) -> FleetResult:
    """Run (or resume) a whole fleet and aggregate it.

    With ``checkpoint_path``, progress is saved after every
    ``checkpoint_every`` devices (default 256) and a matching checkpoint
    on disk is resumed from instead of restarting; the final aggregate
    is byte-identical to an uninterrupted run.  A checkpoint whose
    fingerprint does not match ``spec`` is an error, not a silent
    restart.

    ``memo_dir`` backs the vector executor's activation memo with a
    persistent on-disk store and ``supply_buckets`` tunes its quantized
    supply keys; both require ``executor`` to name the vector family.
    """
    if memo_dir is not None or supply_buckets is not None:
        if not isinstance(executor, str) or executor != "vector":
            raise FleetError(
                "memo_dir / supply_buckets require executor='vector' "
                "(pass a configured VectorFleetExecutor instance otherwise)"
            )
    if executor is None:
        executor = SerialFleetExecutor(engine=engine)
    elif isinstance(executor, str):
        executor = make_fleet_executor(
            executor,
            processes=processes,
            engine=engine,
            memo_dir=memo_dir,
            supply_buckets=supply_buckets,
        )
    if checkpoint_every is not None and checkpoint_every <= 0:
        raise FleetError("checkpoint_every must be positive")
    if checkpoint_every is not None and checkpoint_path is None:
        # Chunking without a checkpoint path would silently persist
        # nothing while paying a fresh executor batch per chunk.
        raise FleetError("checkpoint_every requires a checkpoint path")

    started = time.perf_counter()
    devices = spec.expand()
    aggregate = FleetAggregator()
    start_index = 0
    used: list[str] = []
    fingerprint = (
        checkpoint_fingerprint(spec) if checkpoint_path is not None else ""
    )

    if checkpoint_path is not None and Path(checkpoint_path).exists():
        checkpoint = FleetCheckpoint.load(checkpoint_path)
        if checkpoint.fingerprint != fingerprint:
            # Covers both a different fleet spec and a checkpoint written
            # under an older parity scheme: either way the remaining work
            # or the fold semantics are not provably the same, so resuming
            # -- even within the same executor family -- is refused.
            raise FleetError(
                f"checkpoint '{checkpoint_path}' belongs to a different "
                "fleet spec or aggregate-parity scheme; delete it or "
                "point --checkpoint elsewhere"
            )
        if not checkpoint.executor_family:
            raise FleetError(
                f"checkpoint '{checkpoint_path}' does not record which "
                "executor family wrote it; cannot prove its aggregate "
                "matches this run -- delete it to restart"
            )
        if checkpoint.devices_done > len(devices):
            raise FleetError(
                f"checkpoint claims {checkpoint.devices_done} devices done "
                f"but the fleet has only {len(devices)}"
            )
        aggregate = FleetAggregator.from_dict(checkpoint.aggregate)
        start_index = checkpoint.devices_done
        # Cross-family resume is sound (that is what the parity
        # fingerprint just proved); report every family that built the
        # final aggregate, not just this process's.
        if checkpoint.devices_done > 0:
            used.append(checkpoint.executor_family)

    precompile_fleet(spec)
    chunk = (
        checkpoint_every
        if checkpoint_every is not None
        else (256 if checkpoint_path is not None else len(devices) or 1)
    )
    for lo in itertools.count(start_index, chunk):
        if lo >= len(devices):
            break
        batch = devices[lo : lo + chunk]
        aggregate.merge(executor.run(batch))
        chunk_used = getattr(executor, "used", executor.name)
        if chunk_used not in used:
            used.append(chunk_used)
        if checkpoint_path is not None:
            FleetCheckpoint(
                fingerprint=fingerprint,
                devices_done=lo + len(batch),
                aggregate=aggregate.to_dict(),
                executor_family=executor.name,
            ).save(checkpoint_path)

    memo_stats = getattr(executor, "memo_stats", None)
    return FleetResult(
        spec=spec,
        aggregate=aggregate,
        executor=executor.name,
        executor_used="+".join(used) if used else executor.name,
        engine=getattr(executor, "engine", engine),
        devices=len(devices),
        wall_time=time.perf_counter() - started,
        resumed_devices=start_index,
        memo=memo_stats() if memo_stats is not None else None,
    )
