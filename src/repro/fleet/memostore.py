"""On-disk persistence for the fleet activation memo.

Activation-memo entries are pure functions of their key (the formal
foundation's observation: an activation's outcome is determined by
program, environment segment, nonvolatile state, and supply state), so
they are safe to reuse across processes and runs.  The store keeps one
*shard* file per program identity; the shard token the executor derives
binds everything an entry's validity depends on:

* the memo schema version (:data:`MEMO_SCHEMA`),
* the aggregate-parity scheme (``AGGREGATE_PARITY_SCHEME``),
* the program: app, build config, engine, source digest, pass-pipeline
  fingerprint (via :class:`~repro.core.cache.CacheKey`), and cost model.

File names are content addresses -- a digest of the shard token -- and
the token itself is stored inside the payload, so a digest collision or
a stray file can never smuggle entries into the wrong program.  Loads
are corruption-tolerant: any unreadable, truncated, or schema-mismatched
shard degrades to a cold cache instead of an error (a miss costs one
re-execution; a wrong hit would cost correctness).

Entries are pickled.  Pickle byte-streams are not canonical across
processes (hash randomization perturbs set iteration order), which is
why shards are probed by in-process dict equality after load, never by
byte comparison.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path

#: Version of the on-disk entry schema.  Bump whenever the pickled
#: entry layout (``MemoEntry`` / ``QuantEntry`` fields, key structure)
#: changes; old shards then load as cold instead of misreplaying.
MEMO_SCHEMA = "repro-memo-1"


class MemoStore:
    """Content-addressed shard files under one root directory."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        #: shard files successfully read (not entries; see MemoStats)
        self.loads = 0
        #: shard files successfully written
        self.stores = 0

    def shard_path(self, shard_token: str) -> Path:
        digest = hashlib.blake2b(
            shard_token.encode("utf-8"), digest_size=16
        ).hexdigest()
        return self.root / f"memo-{digest}.pkl"

    def load(self, shard_token: str) -> dict:
        """Entries of one shard; ``{}`` for missing/corrupt/mismatched."""
        path = self.shard_path(shard_token)
        try:
            payload = pickle.loads(path.read_bytes())
        except FileNotFoundError:
            return {}
        except Exception:  # corrupt pickles raise nearly anything
            return {}
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != MEMO_SCHEMA
            or payload.get("shard") != shard_token
        ):
            return {}
        entries = payload.get("entries")
        if not isinstance(entries, dict):
            return {}
        self.loads += 1
        return entries

    def save(self, shard_token: str, entries: dict) -> bool:
        """Write one shard atomically; False when entries won't pickle."""
        payload = {
            "schema": MEMO_SCHEMA,
            "shard": shard_token,
            "entries": entries,
        }
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            # An unpicklable entry (exotic supply state) only loses
            # persistence, never the run.
            return False
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.shard_path(shard_token)
        tmp = path.with_suffix(".pkl.tmp")
        tmp.write_bytes(blob)
        tmp.replace(path)
        self.stores += 1
        return True
