"""Device materialization: from declarative :class:`DeviceSpec` to a
runnable :class:`FleetDevice`.

Builds are shared: every device of a class resolves its program through
the process-wide compile cache, so a thousand identical tire monitors
cost one compile.  Supplies are shared *structurally*: one prototype
supply is built per distinct supply shape and then :meth:`spawn`-ed per
device, which re-derives only the RNG streams -- the cheap per-device
re-seeding path the energy layer provides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import BENCHMARKS
from repro.core.cache import GLOBAL_CACHE
from repro.eval.campaign import SupplySpec
from repro.fleet.spec import DeviceSpec
from repro.runtime.engine import ENGINE_FAST
from repro.runtime.harness import ActivationStepper
from repro.runtime.supply import PowerSupply


@dataclass
class FleetDevice:
    """One materialized device: its spec plus a resumable activation loop."""

    spec: DeviceSpec
    stepper: ActivationStepper


class DeviceFactory:
    """Builds devices, reusing compiled programs and supply prototypes.

    One factory lives per worker process (or per serial run); its caches
    are keyed by value (benchmark name, config name, supply spec), so two
    factories in different processes materialize identical devices.
    """

    def __init__(self, engine: str = ENGINE_FAST) -> None:
        self.engine = engine
        self._supply_protos: dict[SupplySpec, PowerSupply] = {}

    def _make_supply(self, spec: DeviceSpec) -> PowerSupply:
        proto = self._supply_protos.get(spec.supply)
        if proto is None:
            proto = spec.supply.build(0)
            self._supply_protos[spec.supply] = proto
        return proto.spawn(spec.seed + spec.supply.seed_offset)

    def build(self, spec: DeviceSpec) -> FleetDevice:
        meta = BENCHMARKS[spec.app]
        compiled = GLOBAL_CACHE.get_or_compile(meta.source, spec.config)
        env = meta.env_factory(spec.env_seed)
        if spec.env_overrides:
            from repro.sensors.environment import bind_signal_specs

            bind_signal_specs(env, spec.env_overrides)
        env = env.shifted(spec.phase)
        stepper = ActivationStepper(
            compiled,
            env,
            self._make_supply(spec),
            budget_cycles=spec.budget_cycles,
            costs=meta.cost_model(),
            max_activations=spec.max_activations,
            engine=self.engine,
        )
        return FleetDevice(spec=spec, stepper=stepper)
