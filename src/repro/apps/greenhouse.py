"""Greenhouse -- humidity/temperature monitor (from the TICS artifact).

The application assembles one *consistent* reading triple -- two humidity
samples (for a gradient estimate) plus the air temperature -- computes a
vapor-pressure-deficit-style comfort metric, and decides whether to vent,
mist, or do nothing.  A second, unannotated temperature reading feeds a
slow-moving daily statistics log.

Timing constraint (Table 1: ``Con``): the triple must come from one point
in time.  Figure 2's storm-logging bug is exactly this app's failure mode:
humidity from before a power failure combined with temperature from after
it reports weather no continuous execution could have seen.
"""

from __future__ import annotations

from repro.apps.meta import BenchmarkMeta, SamoyedShape
from repro.sensors.environment import Environment, sine, steps

SOURCE = """\
// Greenhouse climate monitor (TICS).
inputs hum, temp;

nonvolatile vent_events = 0;
nonvolatile mist_events = 0;
nonvolatile samples_logged = 0;
nonvolatile temp_accum = 0;

fn read_hum() {
  let raw = input(hum);
  return min(raw, 100);
}

fn read_temp() {
  let raw = input(temp);
  return raw;
}

// Integer approximation of a vapor-pressure-deficit comfort score.
fn comfort(h, t) {
  let sat = 6 * t + 40;          // saturation proxy, scaled
  let vap = sat * h / 100;
  return sat - vap;
}

fn main() {
  // --- one consistent climate snapshot: gradient + temperature -----------
  let consistent(1) h1 = read_hum();
  work(160);                      // RH sensor settle
  let consistent(1) h2 = read_hum();
  let consistent(1) t = read_temp();

  // --- control decision ---------------------------------------------------
  let h = (h1 + h2) / 2;
  let gradient = h2 - h1;
  let score = comfort(h, t);
  work(180);
  if score > 120 {
    mist_events = mist_events + 1;
    log(1, score);                // actuate: mist
  } else {
    if score < 30 && gradient >= 0 {
      vent_events = vent_events + 1;
      log(2, score);              // actuate: vent
    }
  }

  // --- slow statistics (no timing constraint) -----------------------------
  let t2 = read_temp();
  temp_accum = temp_accum + t2;
  samples_logged = samples_logged + 1;
  work(140);
  if samples_logged % 16 == 0 {
    log(3, temp_accum / 16);
    temp_accum = 0;
  }
}
"""


def make_env(seed: int = 0) -> Environment:
    """Diurnal temperature plus humidity fronts moving through."""
    return Environment(
        {
            "hum": steps(
                levels=[35, 42, 55, 78, 90, 72, 50], dwell=4000 + 29 * (seed % 13)
            ),
            "temp": sine(mean=24, amplitude=9, period=50_000 + 101 * seed),
        }
    )


META = BenchmarkMeta(
    name="greenhouse",
    origin="TICS",
    sensors=["Hum", "Temp"],
    constraints="Con",
    paper_loc=170,
    input_sites=4,
    fresh_lines=0,
    consistent_lines=3,
    freshcon_lines=0,
    consistent_sets=1,
    samoyed=SamoyedShape(atomic_fns=1, params=3, loop_fns=0),
    paper_effort={"ocelot": 7, "tics": 12, "samoyed": 6},
    input_costs={"hum": 50, "temp": 40},
    source=SOURCE,
    env_factory=make_env,
)
