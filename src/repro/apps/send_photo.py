"""SendPhoto -- threshold-triggered radio report (Samoyed microbenchmark).

Samples the photoresistor (a short three-sample burst, keeping the peak)
and sends a radio packet if the light level is above threshold.  The peak
must be *fresh* when the send decision is made: deciding to transmit based
on a reading taken before an arbitrary power-off gap reports light that is
no longer there (and wastes the radio energy budget, the most expensive
operation the device has).
"""

from __future__ import annotations

from repro.apps.meta import BenchmarkMeta, SamoyedShape
from repro.sensors.environment import Environment, burst

SOURCE = """\
// Photoresistor sample + conditional radio send (Samoyed).
inputs photo;

nonvolatile packets_sent = 0;
nonvolatile samples_taken = 0;

// A short burst of three samples; keep the peak to debounce flicker.
fn sample_peak() {
  let a = input(photo);
  let b = input(photo);
  let c = input(photo);
  return max(a, max(b, c));
}

fn main() {
  let level = sample_peak();
  Fresh(level);
  work(420);                      // packet framing / CRC
  if level > 900 {
    send(level);
    packets_sent = packets_sent + 1;
  }
  samples_taken = samples_taken + 1;
  work(160);                      // housekeeping after the decision
}
"""


def make_env(seed: int = 0) -> Environment:
    """Mostly dim with periodic bright flashes worth reporting."""
    return Environment(
        {
            "photo": burst(
                base=140,
                spike=1600,
                period=7000 + 53 * (seed % 19),
                width=2200,
                offset=97 * seed,
            )
        }
    )


META = BenchmarkMeta(
    name="send_photo",
    origin="Samoyed",
    sensors=["Photo"],
    constraints="Fresh",
    paper_loc=92,
    input_sites=1,
    fresh_lines=1,
    consistent_lines=0,
    freshcon_lines=0,
    consistent_sets=0,
    samoyed=SamoyedShape(atomic_fns=1, params=1, loop_fns=0),
    paper_effort={"ocelot": 4, "tics": 8, "samoyed": 4},
    input_costs={"photo": 100},
    source=SOURCE,
    env_factory=make_env,
)
