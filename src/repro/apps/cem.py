"""CEM -- compressive logging of temperature data (from DINO).

The application samples the thermometer, quantizes the reading, and folds
it into a compressed event log: a direct-indexed dictionary table (an
LZW-style code table) held in nonvolatile memory, plus hit/miss statistics
and periodic summary output.  Most of the runtime is compression
arithmetic over the table.

Timing constraint (Table 1: ``Fresh``): the sample must be *fresh* when it
is quantized and compared against the dictionary -- compressing a stale
sample corrupts the event stream's timeline.  The constraint covers only a
few instructions, which is why Ocelot's inferred region is small and CEM's
Ocelot runtime is close to JIT, while the Atomics-only build must back the
entire table into the undo log (its ~2.5x overhead in Figure 7).
"""

from __future__ import annotations

from repro.apps.meta import BenchmarkMeta, SamoyedShape
from repro.sensors.environment import Environment, random_walk

TABLE_SIZE = 256

SOURCE = f"""\
// Compressive event logger (DINO's CEM).
inputs temp;

nonvolatile table[{TABLE_SIZE}];
nonvolatile hits = 0;
nonvolatile misses = 0;
nonvolatile entries = 0;
nonvolatile samples = 0;

fn read_temp() {{
  let raw = input(temp);
  return raw;
}}

// Quantize a raw reading into a small symbol alphabet.
fn quantize(v) {{
  let clamped = min(max(v, 0), 1023);
  return clamped / 8;
}}

// Direct-index hash into the code table.
fn slot_of(sym) {{
  let h = sym * 31 + 17;
  return h % {TABLE_SIZE};
}}

fn main() {{
  // --- the freshness-constrained span: sample -> quantize ----------------
  let t = read_temp();
  Fresh(t);
  let sym = quantize(t);

  // --- dictionary lookup / insert (no timing constraint) -----------------
  let idx = slot_of(sym);
  let current = table[idx];
  if current == sym + 1 {{
    hits = hits + 1;
  }} else {{
    table[idx] = sym + 1;        // store sym+1 so 0 means empty
    misses = misses + 1;
    entries = entries + 1;
  }}

  // --- compression arithmetic over the log (dominates the runtime) -------
  work(680);
  samples = samples + 1;
  if samples % 32 == 0 {{
    log(hits, misses, entries);
  }}
}}
"""


def make_env(seed: int = 0) -> Environment:
    """Slowly wandering ambient temperature."""
    return Environment(
        {"temp": random_walk(start=400, step=6, seed=seed, interval=900)}
    )


META = BenchmarkMeta(
    name="cem",
    origin="DINO",
    sensors=["Temp*"],
    constraints="Fresh",
    paper_loc=292,
    input_sites=1,
    fresh_lines=1,
    consistent_lines=0,
    freshcon_lines=0,
    consistent_sets=0,
    samoyed=SamoyedShape(atomic_fns=1, params=1, loop_fns=0),
    paper_effort={"ocelot": 2, "tics": 8, "samoyed": 4},
    input_costs={"temp": 40},
    source=SOURCE,
    env_factory=make_env,
)
