"""Tire -- tire safety monitor (the paper's own application, Section 7.1).

The monitor interleaves two duties:

1. a **motion scan**: a short loop sampling the accelerometer; each sample
   must be acted on while *fresh* (a burst alarm for a parked car, or a
   missed alarm for a moving one, is exactly the Figure 2 staleness bug);
2. a **burst/leak decision** over one *consistent* snapshot: pressure,
   temperature, and motion must come from the same instant, because the
   temperature-compensated pressure delta is meaningless across a gap.
   The smoothed delta both belongs to the consistent set and must be fresh
   when the alarm branch runs -- the combined ``FreshConsistent``
   constraint of Figure 9.

Table 1: sensors Pres*, Temp*, Accel*; constraints Fresh, Con, FreshCon.
"""

from __future__ import annotations

from repro.apps.meta import BenchmarkMeta, SamoyedShape
from repro.sensors.environment import Environment, burst, sine, steps

SOURCE = """\
// Tire pressure / burst monitor (Ocelot's own benchmark, Figure 9).
inputs pres, temp, accel;

nonvolatile baseline_pressure = 3200;
nonvolatile urgent_warnings = 0;
nonvolatile leak_warnings = 0;
nonvolatile motion_events = 0;
nonvolatile checks_done = 0;

fn read_pressure() {
  let raw = input(pres);
  return max(raw, 0);
}

fn read_temp() {
  let raw = input(temp);
  return raw;
}

fn read_accel() {
  let raw = input(accel);
  return min(raw, 4000);
}

// Simple linear temperature compensation of a pressure reading.
fn compensate(p, t) {
  let corr = (t - 20) * 6;
  return p - corr;
}

fn is_moving(m) {
  return m > 1200;
}

fn main() {
  // --- motion scan: each sample acted on while fresh ----------------------
  repeat 6 {
    let m = read_accel();
    Fresh(m);
    if is_moving(m) {
      motion_events = motion_events + 1;
    }
    work(110);                    // vibration filter between samples
  }

  // --- consistent snapshot for the burst/leak decision --------------------
  let consistent(1) p = read_pressure();
  let consistent(1) t = read_temp();
  let consistent(1) m2 = read_accel();
  let pc = compensate(p, t);
  let consistent(1) pdelta = baseline_pressure - pc;
  let avgDiff = (pdelta * 3) / 4;
  FreshConsistent(avgDiff, 1);

  // --- the Figure 9 decision ----------------------------------------------
  if is_moving(m2) && avgDiff > 400 {
    send(avgDiff);                // "urgent_burst_tire!"
    urgent_warnings = urgent_warnings + 1;
  } else {
    if avgDiff > 150 {
      leak_warnings = leak_warnings + 1;
    }
  }

  // --- trend bookkeeping (unconstrained) -----------------------------------
  checks_done = checks_done + 1;
  work(240);                      // pressure-trend model update
  if checks_done % 12 == 0 {
    log(urgent_warnings, leak_warnings, motion_events);
  }
}
"""


def make_env(seed: int = 0) -> Environment:
    """Pressure with occasional sharp drops, diurnal temp, motion bursts."""
    return Environment(
        {
            "pres": steps(
                levels=[3200, 3190, 3180, 2600, 3185, 3195],
                dwell=6000 + 71 * (seed % 7),
            ),
            "temp": sine(mean=28, amplitude=14, period=40_000 + 131 * seed),
            "accel": burst(
                base=150,
                spike=2100,
                period=8000 + 43 * (seed % 13),
                width=3000,
                offset=59 * seed,
            ),
        }
    )


META = BenchmarkMeta(
    name="tire",
    origin="Ocelot",
    sensors=["Pres*", "Temp*", "Accel*"],
    constraints="Fresh, Con, FreshCon",
    paper_loc=338,
    input_sites=3,
    fresh_lines=1,
    consistent_lines=4,
    freshcon_lines=1,
    consistent_sets=1,
    samoyed=SamoyedShape(atomic_fns=3, params=7, loop_fns=1),
    paper_effort={"ocelot": 9, "tics": 32, "samoyed": 24},
    input_costs={"pres": 40, "temp": 40, "accel": 10},
    source=SOURCE,
    env_factory=make_env,
)
