"""Benchmark registry: the six applications of the evaluation (Table 1)."""

from __future__ import annotations

from repro.apps import activity, cem, greenhouse, photo, send_photo, tire
from repro.apps.meta import BenchmarkMeta

#: Evaluation order matches the paper's figures.
BENCHMARKS: dict[str, BenchmarkMeta] = {
    meta.name: meta
    for meta in (
        activity.META,
        cem.META,
        greenhouse.META,
        photo.META,
        send_photo.META,
        tire.META,
    )
}

BENCHMARK_NAMES = list(BENCHMARKS)


def get_benchmark(name: str) -> BenchmarkMeta:
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark '{name}'; known: {', '.join(BENCHMARK_NAMES)}"
        ) from None
