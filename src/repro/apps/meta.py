"""Benchmark metadata: Table 1 characteristics + effort-model parameters.

Each benchmark module exports a :class:`BenchmarkMeta`; the registry
collects them and the evaluation harness derives Table 1 (characteristics)
and Tables 3/4 (programming-effort models) from these fields.

The effort parameters mirror how the paper models LoC changes
(Section 7.4):

* ``input_sites`` -- input operations the programmer must name in the
  ``[IO: fn = ...]`` declaration (one line each);
* ``fresh_lines`` / ``consistent_lines`` / ``freshcon_lines`` -- source
  annotation lines (``FreshConsistent`` is a single line declaring both
  constraints, Figure 9);
* ``consistent_sets`` -- number of distinct consistent-set ids (TICS needs
  one expiration check + handler per set);
* ``samoyed`` -- the restructuring shape Samoyed would need: atomic
  functions created, parameters threaded into them, and how many contain
  loops (those need a scaling rule + fallback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.energy.costs import CostModel
from repro.sensors.environment import Environment


@dataclass(frozen=True)
class SamoyedShape:
    """What converting the app to Samoyed atomic functions would take."""

    atomic_fns: int
    params: int
    loop_fns: int


@dataclass(frozen=True)
class BenchmarkMeta:
    name: str
    origin: str  # TICS / Samoyed / DINO / Ocelot (Table 1 "Origin")
    sensors: list[str]  # '*' marks sensors the paper simulated
    constraints: str  # Table 1 "Constraints"
    paper_loc: int  # Table 1 "LoC" (the authors' Rust code)
    input_sites: int
    fresh_lines: int
    consistent_lines: int
    freshcon_lines: int
    consistent_sets: int
    samoyed: SamoyedShape
    #: the paper's Table 4 row for cross-checking our effort model
    paper_effort: dict[str, int]
    source: str
    env_factory: Callable[[int], Environment]
    #: per-channel sampling cost overrides (sensor mix of this app)
    input_costs: dict[str, int] = field(default_factory=dict)

    def cost_model(self) -> CostModel:
        """The benchmark's cost model: defaults + its sensor sampling costs."""
        return CostModel(input_costs=dict(self.input_costs))

    @property
    def annotation_lines(self) -> int:
        return self.fresh_lines + self.consistent_lines + self.freshcon_lines

    @property
    def fresh_vars(self) -> int:
        """Variables carrying a freshness constraint (plain + combined)."""
        return self.fresh_lines + self.freshcon_lines

    @property
    def consistent_vars(self) -> int:
        """Variables in consistent sets (plain + combined)."""
        return self.consistent_lines + self.freshcon_lines

    @property
    def loc(self) -> int:
        """Lines of our modeling-language source (excluding blanks/comments)."""
        count = 0
        for line in self.source.splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith("//"):
                count += 1
        return count
