"""The six benchmark applications (Section 7.1, Table 1)."""

from repro.apps.meta import BenchmarkMeta, SamoyedShape
from repro.apps.registry import BENCHMARK_NAMES, BENCHMARKS, get_benchmark

__all__ = [
    "BenchmarkMeta",
    "SamoyedShape",
    "BENCHMARK_NAMES",
    "BENCHMARKS",
    "get_benchmark",
]
