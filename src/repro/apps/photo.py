"""Photo -- averaged photoresistor sampling (Samoyed microbenchmark).

Takes the average of five photoresistor readings.  The five samples form
one *consistent* set: averaging light levels from two different moments
(before and after an arbitrary-length power failure) produces a value no
continuous execution could compute.  The settle time between samples makes
the constrained span cover almost the whole program, which is why JIT
violates so often on intermittent power (77% in Table 2b).
"""

from __future__ import annotations

from repro.apps.meta import BenchmarkMeta, SamoyedShape
from repro.sensors.environment import Environment, steps

SOURCE = """\
// Five-sample photoresistor average (Samoyed).
inputs photo;

nonvolatile readings_taken = 0;

fn read_photo() {
  let raw = input(photo);
  return min(raw, 4095);
}

fn main() {
  let sum = 0;
  repeat 5 {
    let consistent(1) r = read_photo();
    sum = sum + r;
    work(160);                    // exposure settle between samples
  }
  let avg = sum / 5;
  readings_taken = readings_taken + 1;
  log(avg);
}
"""


def make_env(seed: int = 0) -> Environment:
    """Light level stepping as clouds / shadows pass."""
    return Environment(
        {
            "photo": steps(
                levels=[210, 240, 900, 1800, 1100, 300],
                dwell=3500 + 41 * (seed % 17),
            )
        }
    )


META = BenchmarkMeta(
    name="photo",
    origin="Samoyed",
    sensors=["Photo"],
    constraints="Con",
    paper_loc=68,
    input_sites=1,
    fresh_lines=0,
    consistent_lines=1,
    freshcon_lines=0,
    consistent_sets=1,
    samoyed=SamoyedShape(atomic_fns=1, params=1, loop_fns=1),
    paper_effort={"ocelot": 2, "tics": 8, "samoyed": 12},
    input_costs={"photo": 100},
    source=SOURCE,
    env_factory=make_env,
)
