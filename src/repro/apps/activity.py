"""Activity -- accelerometer activity recognition (from the TICS artifact).

The application samples a small window of accelerometer readings, extracts
features (mean magnitude and jitter), classifies the window against
nearest-centroid models (stationary / walking / shaking), and accumulates
per-class nonvolatile counters that are logged periodically.

Timing constraints (Table 1: ``Con, Fresh``):

* the three window samples must be **temporally consistent** -- a window
  assembled across a power failure mixes two different motion episodes and
  classifies garbage;
* the classified feature must be **fresh** when the class counters are
  updated -- counting a minutes-old window as current activity is wrong.
"""

from __future__ import annotations

from repro.apps.meta import BenchmarkMeta, SamoyedShape
from repro.sensors.environment import Environment, burst

SOURCE = """\
// Activity recognition on a single accelerometer channel (TICS).
inputs accel;

nonvolatile stationary_count = 0;
nonvolatile walking_count = 0;
nonvolatile shaking_count = 0;
nonvolatile windows_seen = 0;

// Read one accelerometer sample (magnitude, already rectified).
fn read_accel() {
  let raw = input(accel);
  let clipped = min(raw, 4000);
  return clipped;
}

// Mean of the three window samples.
fn window_mean(a, b, c) {
  let sum = a + b + c;
  return sum / 3;
}

// Total absolute deviation from the mean: a cheap jitter feature.
fn window_jitter(a, b, c, m) {
  let da = abs(a - m);
  let db = abs(b - m);
  let dc = abs(c - m);
  return da + db + dc;
}

// Nearest-centroid classifier over (mean, jitter).
//   class 0: stationary   (low mean, low jitter)
//   class 1: walking      (mid mean, mid jitter)
//   class 2: shaking      (high mean or high jitter)
fn classify(m, j) {
  let d0 = abs(m - 80) + abs(j - 10);
  let d1 = abs(m - 600) + abs(j - 120);
  let d2 = abs(m - 1800) + abs(j - 500);
  let best = 0;
  let bestd = d0;
  if d1 < bestd {
    best = 1;
    bestd = d1;
  }
  if d2 < bestd {
    best = 2;
    bestd = d2;
  }
  return best;
}

fn update_counts(cls) {
  if cls == 0 {
    stationary_count = stationary_count + 1;
  } else {
    if cls == 1 {
      walking_count = walking_count + 1;
    } else {
      shaking_count = shaking_count + 1;
    }
  }
}

fn main() {
  // --- sample one consistent window of three readings -------------------
  let consistent(1) w0 = read_accel();
  work(120);                      // sensor settle between samples
  let consistent(1) w1 = read_accel();
  work(120);
  let consistent(1) w2 = read_accel();

  // --- feature extraction ------------------------------------------------
  let m = window_mean(w0, w1, w2);
  let j = window_jitter(w0, w1, w2, m);
  work(260);                      // filter arithmetic the model abstracts

  // --- classification: the class must be acted on while fresh ------------
  let cls = classify(m, j);
  Fresh(cls);
  update_counts(cls);
  if cls == 2 {
    alarm();                      // shake alarm must reflect *current* motion
  }

  // --- bookkeeping and periodic reporting --------------------------------
  windows_seen = windows_seen + 1;
  work(420);                      // model update / smoothing
  if windows_seen % 8 == 0 {
    log(stationary_count, walking_count, shaking_count);
  }
}
"""


def make_env(seed: int = 0) -> Environment:
    """Motion episodes: mostly stationary, periodic walking/shaking bursts."""
    return Environment(
        {
            "accel": burst(
                base=70 + (seed % 7),
                spike=1900,
                period=9000 + 37 * (seed % 11),
                width=2600,
                offset=131 * seed,
            )
        }
    )


META = BenchmarkMeta(
    name="activity",
    origin="TICS",
    sensors=["Accel*"],
    constraints="Con, Fresh",
    paper_loc=470,
    input_sites=1,
    fresh_lines=1,
    consistent_lines=3,
    freshcon_lines=0,
    consistent_sets=1,
    samoyed=SamoyedShape(atomic_fns=2, params=4, loop_fns=1),
    paper_effort={"ocelot": 5, "tics": 20, "samoyed": 18},
    input_costs={"accel": 80},
    source=SOURCE,
    env_factory=make_env,
)
