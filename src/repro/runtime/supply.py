"""Power supplies: when does power fail, and for how long.

Three implementations cover the paper's three experimental regimes:

* :class:`ContinuousPower` -- never fails (Figure 7),
* :class:`ScheduledFailures` -- pathological injection at chosen dynamic
  instruction occurrences (Table 2a: "immediately before the use of a
  fresh variable and between input operations in a consistent set"),
* :class:`EnergyDrivenSupply` -- capacitor + harvester + comparator
  (Figure 8 and Table 2b).

The executor consults ``fail_before`` ahead of each instruction (simulated
failure points) and ``consume`` after each instruction (energy-driven low
signal); both deliver the low-power interrupt of Section 6.3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Protocol

from repro.analysis.provenance import Chain
from repro.energy.capacitor import Capacitor
from repro.energy.seeds import derive_seed
from repro.ir.instructions import InstrId


class PowerSupply(Protocol):
    """What the executor needs from a power model."""

    def fail_before(self, uid: InstrId, chain: Chain | None = None) -> bool:
        """Force a power failure just before executing ``uid``?

        ``chain`` is the dynamic provenance of the instruction, supplied
        by the executor when the instruction is one of the supply's
        ``watched_uids`` (scheduled injection); energy-driven supplies
        ignore it.
        """
        ...

    def consume(self, energy: int) -> bool:
        """Account for ``energy``; True when the low-power comparator trips."""
        ...

    def would_trip(self, energy: int) -> bool:
        """Would spending ``energy`` cross the comparator point?

        The hardware comparator is asynchronous: it fires *during* a long
        operation.  The executor asks before each instruction and takes
        the low-power interrupt first, so the reserve band is never
        consumed by regular execution.
        """
        ...

    def checkpoint_energy(self, energy: int) -> None:
        """Spend checkpoint energy from the post-interrupt reserve."""
        ...

    def off_and_recharge(self) -> int:
        """Power off; return the off-time (cycles) until reboot."""
        ...

    # Memoization hooks (see :mod:`repro.energy.segments`).  Optional:
    # the fleet memoizer probes them with getattr and treats a supply
    # without them (or one answering ``memo_token() is None``) as
    # opaque, which disables replay but never affects correctness.
    #
    # def memo_token(self) -> Hashable | None: ...
    # def memo_capture(self) -> object: ...
    # def memo_restore(self, state: object) -> None: ...


@dataclass
class ContinuousPower:
    """Wall power: never fails."""

    def fail_before(self, uid: InstrId, chain: Chain | None = None) -> bool:
        return False

    def consume(self, energy: int) -> bool:
        return False

    def would_trip(self, energy: int) -> bool:
        return False

    def checkpoint_energy(self, energy: int) -> None:  # pragma: no cover
        raise AssertionError("continuous power never checkpoints")

    def off_and_recharge(self) -> int:  # pragma: no cover
        raise AssertionError("continuous power never reboots")

    def spawn(self, seed: int) -> "ContinuousPower":
        """Wall power has no state; every device gets an equivalent one."""
        return ContinuousPower()

    def reseed(self, seed: int) -> None:
        """Nothing to reset; kept for per-device re-seeding uniformity."""

    def memo_token(self):
        """Hashable identity of future behavior; wall power never varies."""
        return ("wall",)

    def memo_capture(self):
        """Mutable-state snapshot for memo replay; wall power has none."""
        return None

    def memo_restore(self, state) -> None:
        """Apply a captured snapshot; stateless, so nothing to do."""


@dataclass(frozen=True)
class FailurePoint:
    """Fail immediately before a chosen dynamic execution point.

    Either an ``occurrence`` of a static instruction ``uid`` (1-based,
    counted across the whole run including post-reboot re-executions), or
    a context-qualified ``chain`` (fails the first time that exact dynamic
    site executes -- the natural unit for detector check sites).  A point
    that has fired is never re-armed; otherwise a JIT resume at the same
    instruction would fail forever.
    """

    uid: InstrId | None = None
    occurrence: int = 1
    chain: Chain | None = None

    def __post_init__(self) -> None:
        if (self.uid is None) == (self.chain is None):
            raise ValueError("exactly one of uid / chain must be given")

    @property
    def trigger_uid(self) -> InstrId:
        return self.uid if self.uid is not None else self.chain.op


@dataclass
class ScheduledFailures:
    """Deterministic failure injection at specific dynamic points."""

    points: list[FailurePoint]
    off_cycles: int = 10_000
    _counts: dict[InstrId, int] = field(default_factory=dict)
    _fired: set[FailurePoint] = field(default_factory=set)

    def watched_uids(self) -> frozenset[InstrId]:
        """Instructions the executor should report chains for."""
        return frozenset(p.trigger_uid for p in self.points)

    def fail_before(self, uid: InstrId, chain: Chain | None = None) -> bool:
        relevant = [
            p
            for p in self.points
            if p.trigger_uid == uid and p not in self._fired
        ]
        if not relevant:
            return False
        count = self._counts.get(uid, 0) + 1
        self._counts[uid] = count
        for point in relevant:
            if point.chain is not None:
                if chain is not None and chain == point.chain:
                    self._fired.add(point)
                    return True
            elif point.occurrence == count:
                self._fired.add(point)
                return True
        return False

    def consume(self, energy: int) -> bool:
        return False

    def would_trip(self, energy: int) -> bool:
        return False

    def checkpoint_energy(self, energy: int) -> None:
        pass  # simulated failures have ideal reserve

    def off_and_recharge(self) -> int:
        return self.off_cycles

    @property
    def all_fired(self) -> bool:
        return len(self._fired) == len(set(self.points))

    def spawn(self, seed: int) -> "ScheduledFailures":
        """A fresh injection schedule: same points, all re-armed.

        Injection is deterministic, so ``seed`` is unused; the parameter
        keeps the spawn signature uniform across supply kinds, letting a
        fleet derive per-device supplies without caring which kind a
        device class uses.
        """
        return ScheduledFailures(list(self.points), off_cycles=self.off_cycles)

    def reseed(self, seed: int) -> None:
        """Re-arm every failure point in place."""
        self._counts.clear()
        self._fired.clear()

    def memo_token(self):
        """Hashable identity of future behavior: the *armed* schedule only.

        Every future answer depends on the points that have not fired
        yet, the occurrence counters of the uids those armed points
        watch, and the off time.  Fired points and counters for uids
        with no armed point can never influence another answer
        (``fail_before`` returns without touching state when nothing
        armed matches the uid), so both are excluded -- the
        schedule-cursor quantization the fleet memoizer relies on:
        devices that reached the same armed state through different
        firing histories compare equal.
        """
        armed = tuple(p for p in self.points if p not in self._fired)
        watched = {p.trigger_uid for p in armed}
        return (
            "sched",
            armed,
            self.off_cycles,
            tuple(
                (uid, count)
                for uid, count in sorted(self._counts.items())
                if uid in watched
            ),
        )

    def memo_capture(self):
        """Snapshot the firing bookkeeping for memo replay."""
        return (dict(self._counts), set(self._fired))

    def memo_restore(self, state) -> None:
        """Apply a captured firing-bookkeeping snapshot."""
        counts, fired = state
        self._counts = dict(counts)
        self._fired = set(fired)


class Harvester(Protocol):
    def off_cycles(self, deficit: int) -> int: ...

    def spawn(self, seed: int) -> "Harvester": ...

    def reseed(self, seed: int) -> None: ...

    def memo_token(self): ...

    def memo_capture(self): ...

    def memo_restore(self, state) -> None: ...


@dataclass
class EnergyDrivenSupply:
    """Capacitor drained by execution, refilled by a harvester while off.

    ``boot_fraction`` randomizes the storage level at which the node boots
    after an off period: bursty ambient energy means the firmware's boot
    comparator fires anywhere between a floor and a full capacitor.  This
    de-correlates power-failure phase from program phase, which matters
    for the Table 2b violation-rate experiment (a deterministic refill
    makes failures land at a fixed program offset forever).  The floor is
    clamped so the post-boot usable window still fits the largest atomic
    region (the Section 5.3 feasibility requirement).
    """

    capacitor: Capacitor
    harvester: Harvester
    boot_fraction: tuple[float, float] = (1.0, 1.0)
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        lo, hi = self.boot_fraction
        if not 0.0 < lo <= hi <= 1.0:
            raise ValueError("boot_fraction must satisfy 0 < lo <= hi <= 1")
        self._rng = random.Random(self.seed)

    def fail_before(self, uid: InstrId, chain: Chain | None = None) -> bool:
        return False

    def consume(self, energy: int) -> bool:
        return self.capacitor.drain(energy)

    def would_trip(self, energy: int) -> bool:
        return self.capacitor.level - energy <= self.capacitor.low_threshold

    def checkpoint_energy(self, energy: int) -> None:
        self.capacitor.drain_reserve(energy)

    def off_and_recharge(self) -> int:
        before = max(0, self.capacitor.level)
        deficit = self.capacitor.refill()
        lo, hi = self.boot_fraction
        if hi > lo:
            fraction = self._rng.uniform(lo, hi)
            usable_span = self.capacitor.capacity - self.capacitor.low_threshold
            target = self.capacitor.low_threshold + int(fraction * usable_span)
            self.capacitor.level = max(target, self.capacitor.low_threshold + 1)
            deficit = max(1, self.capacitor.level - before)
        return self.harvester.off_cycles(deficit)

    def spawn(self, seed: int) -> "EnergyDrivenSupply":
        """A fresh, fully-charged supply on device stream ``seed``.

        The new supply copies this one's physical configuration (capacitor
        geometry, harvester kind and rate, boot comparator band) but draws
        its boot and harvest randomness from streams derived from ``seed``,
        so a fleet can stamp out thousands of statistically independent
        devices from one prototype and one root seed -- cheaper and less
        error-prone than rebuilding each supply from a profile.
        """
        return EnergyDrivenSupply(
            capacitor=Capacitor(
                self.capacitor.capacity, self.capacitor.low_threshold
            ),
            harvester=self.harvester.spawn(derive_seed(seed, "harvest")),
            boot_fraction=self.boot_fraction,
            seed=derive_seed(seed, "boot"),
        )

    def reseed(self, seed: int) -> None:
        """Recharge and restart both randomness streams in place."""
        self.capacitor.level = self.capacitor.capacity
        self.harvester.reseed(derive_seed(seed, "harvest"))
        self.seed = derive_seed(seed, "boot")
        self._rng = random.Random(self.seed)

    def memo_token(self):
        """Hashable identity of future behavior.

        Covers everything the supply's answers depend on: capacitor
        geometry and charge, the boot-comparator band, and -- only where
        randomness can actually influence an outcome -- the exact RNG
        stream positions.  A degenerate boot band (``lo == hi``) never
        draws, so its RNG is excluded and devices on different per-device
        seeds still compare equal; likewise the harvester excludes its
        stream when its jitter is degenerate.  Returns ``None`` when the
        harvester is opaque (no memo hooks), which disables replay.
        """
        token = getattr(self.harvester, "memo_token", None)
        harvester = token() if token is not None else None
        if harvester is None:
            return None
        lo, hi = self.boot_fraction
        boot = self._rng.getstate() if hi > lo else None
        return (
            "energy",
            self.capacitor.capacity,
            self.capacitor.low_threshold,
            self.capacitor.level,
            self.boot_fraction,
            boot,
            harvester,
        )

    def memo_quantum(self):
        """Bucketing profile for quantized memo keys: geometry + charge.

        Returns ``(static_token, charge_level)``.  The static token is
        the capacitor geometry only; everything else that varies per
        device -- harvest rate, jitter and boot RNG stream positions,
        the boot band -- is deliberately excluded.  The exclusion is
        sound because a reboot-free activation consults the supply only
        through charge-threshold checks that are monotone in the
        starting level (see :mod:`repro.energy.segments` for the
        replay-gate contract the fleet memoizer enforces).
        """
        return (
            ("energyq", self.capacitor.capacity, self.capacitor.low_threshold),
            self.capacitor.level,
        )

    def memo_capture(self):
        """Snapshot charge and stream positions for memo replay."""
        return (
            self.capacitor.level,
            self._rng.getstate(),
            self.harvester.memo_capture(),
        )

    def memo_restore(self, state) -> None:
        """Apply a captured snapshot (charge + stream positions)."""
        level, rng_state, harvester_state = state
        self.capacitor.level = level
        self._rng.setstate(rng_state)
        self.harvester.memo_restore(harvester_state)
