"""Fork/restore of machine execution state (the verifier's substrate).

The bounded model checker in :mod:`repro.verify` explores power-failure
schedules by branching a single machine: capture the full execution
state right before a candidate failure point, keep running the
failure-free continuation, and later restore the capture to take the
failing branch.  A snapshot therefore covers everything a
:class:`~repro.runtime.executor.Machine` /
:class:`~repro.runtime.engine.FastMachine` step can read or write:

* logical time ``tau`` and the per-activation :class:`RunStats`;
* nonvolatile memory -- globals, arrays, the detector bit vector;
* the volatile frame stack (engine-specific frame classes share
  ``copy()``, so :func:`copy_stack` works for both);
* the saved execution contexts (JIT checkpoint / atomic undo log);
* the volatile hoisted-query cache and the detector-query counter;
* completion state (``_done``, the return value).

Both :func:`capture_machine` and :func:`restore_machine` copy every
mutable container, so one snapshot can be restored any number of times
and a restored machine never aliases the snapshot.  The trace is *not*
part of a snapshot: the explorer cares about the observations of each
segment in isolation, so restoring installs a fresh (caller-provided)
trace instead of replaying history.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.runtime import observations as obs
from repro.runtime.executor import AtomContext, JitContext, copy_stack
from repro.runtime.values import TVal


@dataclass(frozen=True)
class MachineSnapshot:
    """One restorable machine state (see the module docstring)."""

    tau: int
    nv_globals: dict[str, TVal]
    nv_arrays: dict[str, list[TVal]]
    bits: frozenset
    frames: list
    jit_frames: Optional[list]
    #: (region, frames, undo_globals, undo_arrays, natom, omega) or None
    atom: Optional[tuple]
    hoist: dict[int, frozenset]
    stats: obs.RunStats
    detector_queries: int
    done: bool
    ret_value: Optional[TVal]
    #: fast-engine work-op scratch; dead at step boundaries but restored
    #: anyway so a snapshot is a complete state
    pending_cycles: int


def capture_machine(machine) -> MachineSnapshot:
    """Deep-copy ``machine``'s execution state into a snapshot."""
    atom = machine._atom_ctx
    return MachineSnapshot(
        tau=machine.tau,
        nv_globals=dict(machine.nv.globals),
        nv_arrays={name: list(v) for name, v in machine.nv.arrays.items()},
        bits=frozenset(machine.nv.bits.bits),
        frames=copy_stack(machine._frames),
        jit_frames=(
            copy_stack(machine._jit_ctx.frames)
            if machine._jit_ctx is not None
            else None
        ),
        atom=(
            (
                atom.region,
                copy_stack(atom.frames),
                dict(atom.undo_globals),
                {name: list(v) for name, v in atom.undo_arrays.items()},
                atom.natom,
                atom.omega,
            )
            if atom is not None
            else None
        ),
        hoist=dict(machine._hoist_cache),
        stats=replace(machine.stats),
        detector_queries=machine.detector_queries,
        done=machine._done,
        ret_value=machine._ret_value,
        pending_cycles=getattr(machine, "_pending_cycles", 0),
    )


def restore_machine(
    machine, snapshot: MachineSnapshot, trace: Optional[obs.Trace] = None
) -> None:
    """Restore ``machine`` to ``snapshot``; install ``trace`` (or a fresh
    one) as the observation sink for the replayed branch."""
    machine.tau = snapshot.tau
    machine.nv.globals = dict(snapshot.nv_globals)
    machine.nv.arrays = {name: list(v) for name, v in snapshot.nv_arrays.items()}
    machine.nv.bits.bits = set(snapshot.bits)
    machine._frames = copy_stack(snapshot.frames)
    machine._jit_ctx = (
        JitContext(frames=copy_stack(snapshot.jit_frames))
        if snapshot.jit_frames is not None
        else None
    )
    if snapshot.atom is not None:
        region, frames, undo_globals, undo_arrays, natom, omega = snapshot.atom
        machine._atom_ctx = AtomContext(
            region=region,
            frames=copy_stack(frames),
            undo_globals=dict(undo_globals),
            undo_arrays={name: list(v) for name, v in undo_arrays.items()},
            natom=natom,
            omega=omega,
        )
    else:
        machine._atom_ctx = None
    machine._hoist_cache = dict(snapshot.hoist)
    machine.stats = replace(snapshot.stats)
    machine.detector_queries = snapshot.detector_queries
    machine._done = snapshot.done
    machine._ret_value = snapshot.ret_value
    if hasattr(machine, "_pending_cycles"):
        machine._pending_cycles = snapshot.pending_cycles
    machine.trace = trace if trace is not None else obs.Trace()


def begin_activation(machine, trace: Optional[obs.Trace] = None) -> None:
    """Reset ``machine``'s volatile state for the next activation.

    Equivalent to building a fresh machine over the same nonvolatile
    state, supply, and logical clock -- what
    :class:`~repro.runtime.harness.ActivationStepper` does per
    activation -- without re-running machine construction: the frame
    stack restarts at ``main``, the saved contexts and the volatile
    hoist cache clear, and per-activation stats/trace reset.  ``tau``
    and ``nv`` persist, like an embedded ``while (1) main();`` loop.
    """
    machine._restart_main()
    machine._jit_ctx = None
    machine._atom_ctx = None
    machine._hoist_cache = {}
    machine._done = False
    machine._ret_value = None
    machine.stats = obs.RunStats()
    machine.detector_queries = 0
    if hasattr(machine, "_pending_cycles"):
        machine._pending_cycles = 0
    machine.trace = trace if trace is not None else obs.Trace()
