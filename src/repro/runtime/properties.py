"""Dynamic counterparts of the formal definitions (Appendix C).

The paper defines freshness and temporal consistency as predicates over
taint-augmented traces (Definitions 2 and 3).  These functions check the
equivalent conditions on our machine's observation stream:

* **Freshness** (Definition 2): for every use of a fresh variable, the
  segment from the earliest input operation the value depends on to the
  use must contain no reboot -- in a continuous execution it trivially
  holds; in an intermittent execution it holds exactly when the span
  executed without an interleaving power failure, which is what atomic
  nesting guarantees.

* **Temporal consistency** (Definition 3): as the members of a consistent
  set are (re-)declared, the span from the earliest to the latest of the
  *currently live* input operations of the set must contain no reboot.
  Region re-execution re-collects every member after a failure, so the
  final assembled set is reboot-free; a JIT resume mid-set leaves a stale
  member behind the reboot, which this predicate flags.

Because values carry their dynamic input events (Appendix B taint), the
predicates need no static information beyond the set membership: the trace
is self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.policies import PolicyDecls
from repro.ir.instructions import InstrId
from repro.runtime import observations as obs


@dataclass(frozen=True)
class PropertyViolation:
    """One detected violation of a formal property on a trace."""

    pid: str
    kind: str  # 'fresh' | 'consistent'
    at_tau: int
    detail: str


def _reboot_taus(trace: obs.Trace) -> list[int]:
    return [e.tau for e in trace.of_type(obs.RebootObs)]


def _reboot_between(reboots: list[int], start: int, end: int) -> Optional[int]:
    """First reboot with ``start < tau <= end`` (None if the span is clean)."""
    for tau in reboots:
        if start < tau <= end:
            return tau
    return None


def check_freshness(trace: obs.Trace) -> list[PropertyViolation]:
    """Definition 2 on an execution trace.

    For every ``UseObs``: take the latest preceding ``FreshDeclObs`` of the
    same policy; the span from its earliest dependent input event to the
    use must be reboot-free.
    """
    reboots = _reboot_taus(trace)
    violations: list[PropertyViolation] = []
    latest_decl: dict[str, obs.FreshDeclObs] = {}
    for event in trace:
        if isinstance(event, obs.FreshDeclObs):
            latest_decl[event.pid] = event
        elif isinstance(event, obs.UseObs):
            decl = latest_decl.get(event.pid)
            if decl is None or not decl.inputs:
                continue
            first_input = min(inp.tau for inp in decl.inputs)
            reboot = _reboot_between(reboots, first_input, event.tau)
            if reboot is not None:
                violations.append(
                    PropertyViolation(
                        pid=event.pid,
                        kind="fresh",
                        at_tau=event.tau,
                        detail=(
                            f"use at tau={event.tau} depends on input at "
                            f"tau={first_input} with a reboot at tau={reboot} "
                            "in between"
                        ),
                    )
                )
    return violations


def check_consistency(
    trace: obs.Trace, policies: Optional[PolicyDecls] = None
) -> list[PropertyViolation]:
    """Definition 3 on an execution trace.

    At each ``ConsistentDeclObs``, assemble the live set: the latest
    declaration per declaration site of the same policy.  The union of
    their dependent input events must span no reboot.
    """
    reboots = _reboot_taus(trace)
    violations: list[PropertyViolation] = []
    #: pid -> decl uid -> latest declaration observation
    live: dict[str, dict[InstrId, obs.ConsistentDeclObs]] = {}
    for event in trace:
        if not isinstance(event, obs.ConsistentDeclObs):
            continue
        members = live.setdefault(event.pid, {})
        if event.uid in members:
            # The same declaration site executing again means the
            # collection round restarted (an atomic region rolled back and
            # re-executed).  Definition 3 constrains one collection: the
            # aborted attempt's members are superseded, not mixed in.
            members.clear()
        members[event.uid] = event
        input_taus = [
            inp.tau for decl in members.values() for inp in decl.inputs
        ]
        if len(input_taus) < 2:
            continue
        earliest, latest = min(input_taus), max(input_taus)
        reboot = _reboot_between(reboots, earliest, latest)
        if reboot is not None:
            violations.append(
                PropertyViolation(
                    pid=event.pid,
                    kind="consistent",
                    at_tau=event.tau,
                    detail=(
                        f"set inputs span tau=[{earliest}, {latest}] across "
                        f"a reboot at tau={reboot}"
                    ),
                )
            )
    return violations


def check_all_properties(
    trace: obs.Trace, policies: Optional[PolicyDecls] = None
) -> list[PropertyViolation]:
    """Both formal properties; empty list means the trace is correct."""
    return check_freshness(trace) + check_consistency(trace, policies)


@dataclass
class RegionNesting:
    """Definition 2/3 also require proper region nesting; this verifies the
    trace's region events bracket correctly (enter/exit alternate and every
    restart re-enters the same region)."""

    errors: list[str] = field(default_factory=list)


def check_region_bracketing(trace: obs.Trace) -> RegionNesting:
    result = RegionNesting()
    open_region: Optional[str] = None
    for event in trace:
        if isinstance(event, obs.RegionEnterObs):
            if open_region is not None:
                result.errors.append(
                    f"region '{event.region}' entered while '{open_region}' open"
                )
            open_region = event.region
        elif isinstance(event, obs.RegionExitObs):
            if open_region is None:
                result.errors.append(f"region '{event.region}' exited while closed")
            elif event.region != open_region:
                result.errors.append(
                    f"region '{event.region}' exited but '{open_region}' was open"
                )
            open_region = None
        elif (
            isinstance(event, obs.RebootObs)
            and event.mode == "jit"
            and open_region is not None
        ):
            # A jit-mode reboot cannot happen inside an open region.
            result.errors.append(
                f"jit reboot at tau={event.tau} inside region '{open_region}'"
            )
    return result
