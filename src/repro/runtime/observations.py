"""Observations and execution traces.

The operational semantics emits observations (Appendix B): input
operations, annotation declarations (``fresh``/``cnst``), uses of fresh
variables, and externally visible outputs.  We add the runtime events the
intermittent semantics introduces -- checkpoints, power failures, reboots,
region entry/exit -- plus detector verdicts, so a single trace object
supports the formal property predicates *and* the empirical Table 2
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.ir.instructions import InstrId
from repro.runtime.values import Taint


@dataclass(frozen=True)
class Obs:
    """Base class: every observation happens at a logical time ``tau``."""

    tau: int


@dataclass(frozen=True)
class InputObs(Obs):
    """``x := IN()`` executed: channel sampled, value observed."""

    uid: InstrId
    channel: str
    value: int


@dataclass(frozen=True)
class FreshDeclObs(Obs):
    """``fresh(f, l, I)``: a freshness policy declared over input set I."""

    uid: InstrId
    pid: str
    inputs: Taint


@dataclass(frozen=True)
class ConsistentDeclObs(Obs):
    """``cnst(f, l, n, I)``: a consistency declaration for set ``n``."""

    uid: InstrId
    pid: str
    set_id: int
    inputs: Taint


@dataclass(frozen=True)
class UseObs(Obs):
    """``use(f, l, tau_decl)``: a fresh variable used."""

    uid: InstrId
    pid: str


@dataclass(frozen=True)
class OutputObs(Obs):
    """``log`` / ``send`` / ``alarm`` with evaluated arguments."""

    uid: InstrId
    op: str
    values: tuple[int, ...]


@dataclass(frozen=True)
class RegionEnterObs(Obs):
    """Outermost atomic region entered (``startatom``)."""

    uid: InstrId
    region: str


@dataclass(frozen=True)
class RegionExitObs(Obs):
    """Outermost atomic region committed (``endatom``)."""

    uid: InstrId
    region: str


@dataclass(frozen=True)
class PowerFailObs(Obs):
    """Power failed; ``mode`` records jit/atomic at the time."""

    mode: str


@dataclass(frozen=True)
class RebootObs(Obs):
    """System rebooted after ``off_cycles`` of charging."""

    off_cycles: int
    mode: str


@dataclass(frozen=True)
class CheckpointObs(Obs):
    """A JIT checkpoint was taken (volatile state saved)."""

    saved_words: int


@dataclass(frozen=True)
class ViolationObs(Obs):
    """The bit-vector detector flagged a timing violation (Section 7.3)."""

    uid: InstrId
    pid: str
    kind: str  # 'fresh' or 'consistent'
    #: context-qualified input operations (provenance Chains) whose
    #: detector bits were clear at the check
    missing: tuple = ()


@dataclass
class Trace:
    """An append-only observation sequence with convenience queries."""

    events: list[Obs] = field(default_factory=list)

    def emit(self, obs: Obs) -> None:
        self.events.append(obs)

    def of_type(self, kind: type) -> list:
        return [e for e in self.events if isinstance(e, kind)]

    @property
    def violations(self) -> list[ViolationObs]:
        return self.of_type(ViolationObs)

    @property
    def outputs(self) -> list[OutputObs]:
        return self.of_type(OutputObs)

    @property
    def inputs(self) -> list[InputObs]:
        return self.of_type(InputObs)

    @property
    def reboots(self) -> list[RebootObs]:
        return self.of_type(RebootObs)

    def __iter__(self) -> Iterator[Obs]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def segment(self, start_tau: int, end_tau: int) -> list[Obs]:
        """Events with ``start_tau <= tau <= end_tau`` in emission order."""
        return [e for e in self.events if start_tau <= e.tau <= end_tau]


@dataclass
class RunStats:
    """Aggregate counters for one execution."""

    cycles_on: int = 0
    cycles_off: int = 0
    instructions: int = 0
    jit_checkpoints: int = 0
    region_entries: int = 0
    region_commits: int = 0
    region_restarts: int = 0
    reboots: int = 0
    violations: int = 0
    completed: bool = False

    @property
    def total_cycles(self) -> int:
        return self.cycles_on + self.cycles_off


@dataclass
class RunResult:
    """Trace plus stats plus the final return value of ``main``."""

    trace: Trace
    stats: RunStats
    ret: Optional[int] = None
    #: bit-vector detector scans executed; deliberately *outside*
    #: ``RunStats`` so optimized builds stay stat-identical to baseline
    detector_queries: int = 0
