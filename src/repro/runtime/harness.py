"""Run harness: one-shot and repeated executions of a compiled build.

The evaluation needs three run modes:

* :func:`run_continuous` -- one activation on wall power (Figure 7),
* :func:`run_once` -- one activation on an arbitrary supply (Table 2a's
  pathological injection),
* :func:`run_activations` -- back-to-back activations sharing nonvolatile
  state and one energy supply for a fixed logical-time budget (Figure 8
  and Table 2b: "we ran each benchmark for a fixed time ... and recorded
  the percentage of complete runs that contained a policy violation").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.pipeline import CompiledProgram
from repro.energy.costs import DEFAULT_COSTS, CostModel
from repro.runtime.detector import DetectorPlan
from repro.runtime.engine import ENGINE_FAST, create_machine
from repro.runtime.executor import MachineConfig, NVState
from repro.runtime.observations import RunResult
from repro.runtime.supply import ContinuousPower, PowerSupply
from repro.sensors.environment import Environment


def _plan_for(compiled: CompiledProgram, plan: Optional[DetectorPlan]) -> DetectorPlan:
    return plan if plan is not None else compiled.detector_plan()


def run_continuous(
    compiled: CompiledProgram,
    env: Environment,
    costs: CostModel = DEFAULT_COSTS,
    plan: Optional[DetectorPlan] = None,
    config: Optional[MachineConfig] = None,
    engine: str = ENGINE_FAST,
) -> RunResult:
    """One activation of ``main`` on continuous power."""
    machine = create_machine(
        engine,
        compiled,
        env,
        ContinuousPower(),
        costs=costs,
        plan=_plan_for(compiled, plan),
        config=config,
    )
    return machine.run()


def run_once(
    compiled: CompiledProgram,
    env: Environment,
    supply: PowerSupply,
    costs: CostModel = DEFAULT_COSTS,
    plan: Optional[DetectorPlan] = None,
    nv: Optional[NVState] = None,
    config: Optional[MachineConfig] = None,
    engine: str = ENGINE_FAST,
) -> RunResult:
    """One activation under ``supply`` (failures allowed)."""
    machine = create_machine(
        engine,
        compiled,
        env,
        supply,
        costs=costs,
        plan=_plan_for(compiled, plan),
        nv=nv,
        config=config,
    )
    return machine.run()


@dataclass
class ActivationRecord:
    """One completed (or abandoned) iteration of ``main``."""

    index: int
    completed: bool
    violations: int
    cycles_on: int
    cycles_off: int
    reboots: int
    fresh_violations: int = 0
    consistent_violations: int = 0
    detector_queries: int = 0

    @property
    def violating(self) -> bool:
        return self.violations > 0


@dataclass
class ActivationsResult:
    """Aggregate over a fixed-budget repeated-activation experiment."""

    records: list[ActivationRecord] = field(default_factory=list)
    total_cycles_on: int = 0
    total_cycles_off: int = 0

    @property
    def completed_runs(self) -> int:
        return sum(1 for r in self.records if r.completed)

    @property
    def violating_runs(self) -> int:
        return sum(1 for r in self.records if r.completed and r.violating)

    @property
    def violation_rate(self) -> float:
        """Fraction of *complete* runs containing a violation (Table 2b)."""
        completed = self.completed_runs
        if completed == 0:
            return 0.0
        return self.violating_runs / completed

    def summary(self) -> "ActivationsSummary":
        return ActivationsSummary.from_result(self)


@dataclass(frozen=True)
class ActivationsSummary:
    """Picklable flat aggregate of an :class:`ActivationsResult`.

    Campaign jobs run in worker processes and ship results back through
    ``multiprocessing``; this summary carries only integers (no traces,
    no closures), so it crosses process boundaries cheaply.
    """

    activations: int = 0
    completed_runs: int = 0
    violating_runs: int = 0
    violations: int = 0
    fresh_violations: int = 0
    consistent_violations: int = 0
    cycles_on: int = 0
    cycles_off: int = 0
    completed_cycles_on: int = 0
    completed_cycles_off: int = 0
    reboots: int = 0
    detector_queries: int = 0

    @property
    def violation_rate(self) -> float:
        if self.completed_runs == 0:
            return 0.0
        return self.violating_runs / self.completed_runs

    @classmethod
    def from_result(cls, result: "ActivationsResult") -> "ActivationsSummary":
        completed = [r for r in result.records if r.completed]
        return cls(
            activations=len(result.records),
            completed_runs=len(completed),
            violating_runs=sum(1 for r in completed if r.violating),
            violations=sum(r.violations for r in result.records),
            fresh_violations=sum(r.fresh_violations for r in result.records),
            consistent_violations=sum(
                r.consistent_violations for r in result.records
            ),
            cycles_on=result.total_cycles_on,
            cycles_off=result.total_cycles_off,
            completed_cycles_on=sum(r.cycles_on for r in completed),
            completed_cycles_off=sum(r.cycles_off for r in completed),
            reboots=sum(r.reboots for r in result.records),
            detector_queries=sum(r.detector_queries for r in result.records),
        )


class ActivationStepper:
    """A device's activation loop as a resumable stream.

    One stepper owns everything that persists across activations of one
    device: nonvolatile memory, the power supply, and the logical clock.
    ``step`` runs exactly one activation of ``main`` and reports it as an
    :class:`ActivationRecord`; the stepper is ``exhausted`` once the
    logical-time budget runs out, the activation cap is hit, or an
    activation gets stuck (a region larger than the energy budget).

    :func:`run_activations` drives one stepper to exhaustion -- the
    single-device experiments of Figure 8 / Table 2b.  The fleet
    scheduler instead keeps thousands of steppers in a priority queue and
    advances whichever device is earliest in logical time, which is why
    stepping is factored out of the driving loop.
    """

    def __init__(
        self,
        compiled: CompiledProgram,
        env: Environment,
        supply: PowerSupply,
        budget_cycles: int,
        costs: CostModel = DEFAULT_COSTS,
        plan: Optional[DetectorPlan] = None,
        max_activations: int = 100_000,
        config: Optional[MachineConfig] = None,
        nv: Optional[NVState] = None,
        engine: str = ENGINE_FAST,
        start_tau: int = 0,
        start_index: int = 0,
    ) -> None:
        self._compiled = compiled
        self._env = env
        self._supply = supply
        self._costs = costs
        self._plan = _plan_for(compiled, plan)
        self._budget = budget_cycles
        self._max_activations = max_activations
        self._config = config
        self._engine = engine
        self.nv = nv or NVState.initial(compiled.module)
        # Mid-stream resume point: the vectorized fleet executor rebuilds
        # a stepper around replayed (nv, supply, tau, index) state, so a
        # device can switch between memo replay and real stepping without
        # re-running its history.
        self.tau = start_tau
        self.index = start_index
        self._stuck = False

    @property
    def exhausted(self) -> bool:
        return (
            self._stuck
            or self.tau >= self._budget
            or self.index >= self._max_activations
        )

    def step(self) -> Optional[ActivationRecord]:
        """Run one activation; ``None`` once the stepper is exhausted."""
        if self.exhausted:
            return None
        machine = create_machine(
            self._engine,
            self._compiled,
            self._env,
            self._supply,
            costs=self._costs,
            plan=self._plan,
            nv=self.nv,
            start_tau=self.tau,
            config=self._config,
        )
        run = machine.run()
        self.tau = machine.tau
        kinds = [v.kind for v in run.trace.violations]
        record = ActivationRecord(
            index=self.index,
            completed=run.stats.completed,
            violations=run.stats.violations,
            cycles_on=run.stats.cycles_on,
            cycles_off=run.stats.cycles_off,
            reboots=run.stats.reboots,
            fresh_violations=kinds.count("fresh"),
            consistent_violations=kinds.count("consistent"),
            detector_queries=run.detector_queries,
        )
        self.index += 1
        if not record.completed:
            self._stuck = True
        return record


def run_activations(
    compiled: CompiledProgram,
    env: Environment,
    supply: PowerSupply,
    budget_cycles: int,
    costs: CostModel = DEFAULT_COSTS,
    plan: Optional[DetectorPlan] = None,
    max_activations: int = 100_000,
    config: Optional[MachineConfig] = None,
    engine: str = ENGINE_FAST,
) -> ActivationsResult:
    """Loop ``main`` until the logical-time budget runs out.

    Nonvolatile memory and the supply persist across activations, like an
    embedded ``while (1) main();`` deployment; the saved execution contexts
    reset per activation (each iteration is a fresh program entry).
    """
    stepper = ActivationStepper(
        compiled,
        env,
        supply,
        budget_cycles,
        costs=costs,
        plan=plan,
        max_activations=max_activations,
        config=config,
        engine=engine,
    )
    result = ActivationsResult()
    while (record := stepper.step()) is not None:
        result.records.append(record)
        result.total_cycles_on += record.cycles_on
        result.total_cycles_off += record.cycles_off
    return result
