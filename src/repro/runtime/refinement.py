"""Refinement oracle: does an intermittent run match *some* continuous run?

The paper's correctness criterion is relational: "Ocelot enforces
freshness and temporal consistency by ensuring that an intermittent
execution does what some continuous execution would do; the continuous
execution is the specification of correct behaviour" (Section 1).  The
trace predicates of :mod:`repro.runtime.properties` check the two timing
properties directly; this module checks the *relation itself* by search:

given an intermittent run, re-execute the program continuously from a set
of candidate start times (every moment the intermittent run was live:
start, region entries, reboots) and ask whether any continuous run
produces the same committed output suffix.

This is a semi-decision procedure -- the candidate set is finite and
environment-driven, so a miss does not *prove* unrefinability -- but for
deterministic programs over deterministic environments it is exact in
practice: a correct (Ocelot) run matches the continuous run launched at
its final post-reboot live period, while a JIT run that tore a consistent
pair matches nothing (the Figure 2 storm log exists in no continuous
world).

The oracle powers differential tests (``tests/test_refinement.py``) and is
exposed for downstream users who want end-to-end checking rather than
property-level checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.pipeline import CompiledProgram
from repro.energy.costs import DEFAULT_COSTS, CostModel
from repro.runtime import observations as obs
from repro.runtime.executor import Machine
from repro.runtime.supply import ContinuousPower
from repro.sensors.environment import Environment

#: Builds a fresh, identically-seeded environment per candidate run.  The
#: environment must be a pure function of tau (all provided signal
#: generators are), so one factory serves every candidate.
EnvFactory = Callable[[], Environment]


@dataclass(frozen=True)
class CommittedOutput:
    """One externally visible effect: operation name and values."""

    op: str
    values: tuple[int, ...]


@dataclass
class RefinementResult:
    """Outcome of the oracle."""

    refined: bool
    #: start time of a continuous witness run, when one was found
    witness_tau: Optional[int] = None
    #: the committed outputs the oracle tried to match
    target: list[CommittedOutput] = field(default_factory=list)
    candidates_tried: list[int] = field(default_factory=list)


def committed_outputs(trace: obs.Trace) -> list[CommittedOutput]:
    """The output events of a trace, as comparable records.

    Output operations sit inside UART guard regions, so a re-executed
    region may emit an output twice (the real hardware would re-send the
    UART message too); commitment de-duplicates *consecutive identical*
    outputs, which is exactly what an idempotent message sink sees.
    """
    outputs: list[CommittedOutput] = []
    for event in trace.of_type(obs.OutputObs):
        record = CommittedOutput(op=event.op, values=event.values)
        if outputs and outputs[-1] == record:
            continue
        outputs.append(record)
    return outputs


def candidate_start_times(trace: obs.Trace) -> list[int]:
    """Moments a continuous specification run could plausibly start.

    Every time the intermittent execution (re-)gained agency: the start of
    the trace, each reboot, and each region entry.  For the final
    committed behaviour, the witness is usually the last reboot before the
    final commit.
    """
    taus = {0}
    for event in trace:
        if isinstance(event, (obs.RebootObs, obs.RegionEnterObs, obs.InputObs)):
            taus.add(event.tau)
    return sorted(taus)


def run_continuous_from(
    compiled: CompiledProgram,
    env_factory: EnvFactory,
    start_tau: int,
    costs: CostModel = DEFAULT_COSTS,
) -> obs.Trace:
    """Execute the program continuously with the clock preset to ``start_tau``."""
    machine = Machine(
        compiled.module,
        env_factory(),
        ContinuousPower(),
        costs=costs,
        plan=compiled.detector_plan(),
        start_tau=start_tau,
    )
    result = machine.run()
    if not result.stats.completed:
        raise RuntimeError("continuous reference run did not complete")
    return result.trace


def _suffix_match(
    target: list[CommittedOutput], candidate: list[CommittedOutput]
) -> bool:
    """Does ``candidate`` end with the same outputs as ``target``?

    Matching the *suffix* handles partial re-execution: outputs committed
    before the last failure already matched an earlier continuous window;
    the final window's outputs are the ones that must find a witness.
    """
    if not target:
        return True
    if len(candidate) < len(target):
        return False
    return candidate[-len(target):] == target


def check_refinement(
    compiled: CompiledProgram,
    intermittent_trace: obs.Trace,
    env_factory: EnvFactory,
    costs: CostModel = DEFAULT_COSTS,
    match_suffix_len: Optional[int] = None,
) -> RefinementResult:
    """Search for a continuous witness of an intermittent run's outputs.

    ``match_suffix_len`` restricts matching to the last N committed
    outputs (default: all of them); use 1 to ask only about the final
    visible effect.
    """
    target = committed_outputs(intermittent_trace)
    if match_suffix_len is not None:
        target = target[-match_suffix_len:]
    result = RefinementResult(refined=False, target=target)

    for tau in candidate_start_times(intermittent_trace):
        result.candidates_tried.append(tau)
        reference = run_continuous_from(compiled, env_factory, tau, costs)
        if _suffix_match(target, committed_outputs(reference)):
            result.refined = True
            result.witness_tau = tau
            return result
    return result
