"""Runtime values with input-dependence taint (Appendix B).

The taint-augmented semantics stores, with every memory cell, the set of
input operations the value depends on: ``N^t, x -> (v, I)``.  We carry the
same information at run time as a frozenset of :class:`InputEvent`, which
the trace predicates of Definitions 2/3 consume.

Cells are immutable; assignment replaces the cell.  A by-reference
parameter binds to a :class:`RefValue` naming the owning stack depth and
variable, which stays valid across checkpoint copies because checkpoints
copy whole stacks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.instructions import InstrId


@dataclass(frozen=True)
class InputEvent:
    """One dynamic input operation: which instruction, when, which channel."""

    uid: InstrId
    channel: str
    tau: int

    def __str__(self) -> str:
        return f"{self.channel}@{self.tau}{self.uid}"


Taint = frozenset[InputEvent]
NO_TAINT: Taint = frozenset()


@dataclass(frozen=True)
class TVal:
    """A tainted value: the integer/boolean payload plus its input set."""

    value: int
    taint: Taint = NO_TAINT

    @staticmethod
    def of(value: int | bool) -> "TVal":
        return TVal(value=int(value))

    def with_taint(self, taint: Taint) -> "TVal":
        return TVal(value=self.value, taint=taint)

    @property
    def as_bool(self) -> bool:
        return bool(self.value)


ZERO = TVal(0)


@dataclass(frozen=True)
class RefValue:
    """A reference into the volatile stack: ``(frame depth, variable)``."""

    depth: int
    name: str

    def __str__(self) -> str:
        return f"&[{self.depth}]{self.name}"


Cell = TVal | RefValue


def merge_taint(*taints: Taint) -> Taint:
    result: Taint = NO_TAINT
    for taint in taints:
        if taint:
            result = result | taint
    return result
