"""Bit-vector violation detector (Section 7.3).

The paper's empirical correctness check: "we add [a] bit vector in
nonvolatile memory.  Each sensor operation has a unique position in the
bit vector.  On an input operation, the sensor's position in the bit
vector is set to 1.  On power failure, the bit vector is cleared.  On the
use of a fresh variable, the bits of any dependent sensors are checked.
On an input operation in a consistent set, the bits of any preceding
operations in the set are checked.  If the sensor has not been
re-executed, the checked bit will be zero, generating an error."

"Sensor operation" must mean a *dynamic sampling site*: Photo's five
readings are five positions even though they reach the same driver
function.  We therefore key bits by provenance **chain** (the
context-qualified input operation), which is exactly the identity the
analysis already assigns -- equivalent to inlining driver functions before
instrumenting, which is what the paper's LLVM-level pass achieves with its
provenance bookkeeping.  Chain keying is also what keeps a shared driver
honest: Tire's accelerometer is read both by the motion-scan loop and by
the snapshot, and only context separation avoids cross-talk between the
two (false alarms one way, masked violations the other).

Check placement:

* **fresh**: at every use of the annotated variable, require the bits of
  every input chain the value depends on;
* **consistent**: at each input operation of the set (taking members in
  program order), require the bits of all *preceding* inputs of the set --
  the paper's placement verbatim, which also matches Definition 3 exactly:
  a failure after the whole set is collected is not a violation.

The plan is compiled from the policies, so the same plan drives detection
for every build configuration (JIT-only / Atomics-only / Ocelot) of the
same annotated source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.policies import PolicyDecls
from repro.analysis.provenance import Chain
from repro.ir.instructions import InstrId


@dataclass(frozen=True)
class Check:
    """At the dynamic site ``site``: the bits of ``required`` must be set."""

    site: Chain
    pid: str
    kind: str  # 'fresh' or 'consistent'
    required: tuple[Chain, ...]


# -- runtime check programs ----------------------------------------------------
#
# Both engines execute checks through one uniform per-site "actions"
# record (`MachineCore._run_site_actions`), so the optimized plans the
# check optimizer produces (:mod:`repro.ir.opt`) need no engine-specific
# support.  A check op runs in one of three modes:
#
# * FULL    -- query the bit vector directly (the baseline behavior);
#              when `hid >= 0` the missing-set is also cached so
#              dominated CONSUME ops can reuse it;
# * MARKER  -- the check is statically proven non-firing; only the
#              unconditional `use` observation of a fresh check remains
#              (consistent checks proven non-firing are dropped outright,
#              no op at all);
# * CONSUME -- reuse the cached missing-set of a dominating query
#              (`hid`); the cache is cleared on every reboot, and a miss
#              falls back to a direct query, which keeps the emitted
#              observations bit-identical to the baseline in every
#              power-failure interleaving.

OP_FULL = 0
OP_MARKER = 1
OP_CONSUME = 2


@dataclass(frozen=True)
class CheckOp:
    """One check's runtime form (original check + execution mode)."""

    check: Check
    mode: int = OP_FULL
    #: query id this op caches (FULL anchors) or consumes (CONSUME)
    hid: int = -1


@dataclass(frozen=True)
class HoistedQuery:
    """A detector query hoisted to a dominating anchor site."""

    hid: int
    required: tuple[Chain, ...]


@dataclass(frozen=True)
class SiteActions:
    """Everything the detector does when one trigger site executes.

    ``ops`` preserves the baseline per-site check order, so the emitted
    observation stream is position-for-position identical to the
    unoptimized plan.  ``fused`` (check coalescing) is the ordered union
    of the FULL ops' required chains: one bit-vector scan serves every
    FULL op at the site.
    """

    site: Chain
    ops: tuple[CheckOp, ...] = ()
    hoists: tuple[HoistedQuery, ...] = ()
    fused: Optional[tuple[Chain, ...]] = None

    @property
    def static_queries(self) -> int:
        """Detector queries one execution of this site performs."""
        full = sum(1 for op in self.ops if op.mode == OP_FULL)
        return len(self.hoists) + (1 if self.fused is not None else full)


@dataclass
class DetectorPlan:
    """All checks, indexed by the (context-qualified) trigger site."""

    #: every input chain that owns a bit position
    bit_chains: frozenset[Chain] = frozenset()
    #: trigger chain -> checks evaluated right before it executes
    checks: dict[Chain, list[Check]] = field(default_factory=dict)
    #: instruction uids that terminate at least one trigger chain -- the
    #: executor's fast path: only these uids warrant building the chain
    trigger_uids: frozenset[InstrId] = frozenset()
    #: lazily built runtime form (see :meth:`runtime_actions`)
    _actions: Optional[dict] = field(default=None, repr=False, compare=False)

    def runtime_actions(self) -> dict[Chain, SiteActions]:
        """The per-site runtime form both engines execute.

        The baseline plan runs every check as a FULL query in plan
        order; optimized plans (:class:`repro.ir.opt.OptimizedPlan`)
        override this with their rewritten actions.
        """
        if self._actions is None:
            self._actions = {
                site: SiteActions(
                    site=site,
                    ops=tuple(CheckOp(check=check) for check in checks),
                )
                for site, checks in self.checks.items()
            }
        return self._actions

    def checks_at(self, chain: Chain) -> tuple[Check, ...]:
        """Checks evaluated just before ``chain`` executes.

        Returns a tuple (not the plan's internal list), so callers can
        neither corrupt the plan nor observe later mutations.
        """
        return tuple(self.checks.get(chain, ()))

    @property
    def total_checks(self) -> int:
        return sum(len(v) for v in self.checks.values())


def build_detector_plan(policies: PolicyDecls) -> DetectorPlan:
    """Compile policies into the chain-keyed bit-vector checking plan."""
    bit_chains: set[Chain] = set()
    checks: dict[Chain, list[Check]] = {}

    def add_check(check: Check) -> None:
        checks.setdefault(check.site, []).append(check)

    for policy in policies.all_policies():
        bit_chains.update(policy.inputs)

    for policy in policies.fresh_policies():
        required = tuple(sorted(policy.inputs))
        if not required:
            continue
        for use in sorted(policy.uses):
            add_check(
                Check(site=use, pid=policy.pid, kind="fresh", required=required)
            )

    for policy in policies.consistent_policies():
        # Faithful placement: "on an input operation in a consistent set,
        # the bits of any preceding operations in the set are checked."
        # The check runs just before the input executes, so a power
        # failure anywhere between two of the set's inputs is caught --
        # and a failure after the whole set is collected is correctly NOT
        # flagged (Definition 3 constrains only the collection span).
        # Chain keying makes this sound for shared driver functions: the
        # check at one member's input chain cannot fire when unrelated
        # code happens to execute the same static input instruction.
        members: list[tuple[Chain, InstrId]] = []
        for decl_uid in policy.decls:
            for chain in policy.decl_chains:
                if chain.op == decl_uid:
                    members.append((chain, decl_uid))
        members.sort(key=lambda item: item[0])
        preceding: list[Chain] = []
        for _decl_chain, decl_uid in members:
            member_inputs = sorted(policy.decl_inputs.get(decl_uid, set()))
            for chain in member_inputs:
                if chain in preceding:
                    continue  # already required via an earlier member
                if preceding:
                    add_check(
                        Check(
                            site=chain,
                            pid=policy.pid,
                            kind="consistent",
                            required=tuple(preceding),
                        )
                    )
                preceding.append(chain)

    trigger_uids = frozenset(chain.op for chain in checks)
    return DetectorPlan(
        bit_chains=frozenset(bit_chains),
        checks=checks,
        trigger_uids=trigger_uids,
    )


@dataclass
class BitVector:
    """The nonvolatile detector bit vector, keyed by input chain.

    Lives in nonvolatile memory (survives reboots); ``clear`` models the
    power-failure reset.
    """

    bits: set[Chain] = field(default_factory=set)

    def set(self, chain: Chain) -> None:
        self.bits.add(chain)

    def clear(self) -> None:
        self.bits.clear()

    def missing(self, required: tuple[Chain, ...]) -> tuple[Chain, ...]:
        return tuple(chain for chain in required if chain not in self.bits)
