"""Pre-decoded execution engine: the fast core behind the harnesses.

:class:`repro.runtime.executor.Machine` stays the executable *reference*
semantics -- a direct transcription of the Appendix H rules that
dispatches on instruction classes with ``isinstance`` chains, re-fetches
blocks through dict lookups every step, and rebuilds the provenance
chain tuple whenever the detector (or a scheduled-failure supply) needs
one.  Campaigns and fleets run billions of such steps, so this module
compiles each IR function **once** into per-instruction dispatch records
("ops"), following the formal-semantics discipline of Surbatovich et
al.: the optimized engine must be observation-stream equivalent to the
reference machine, which the parity suite enforces bit-for-bit (traces,
:class:`~repro.runtime.observations.RunStats`, final NV state).

What is precomputed per instruction at decode time:

* the execution closure (no ``isinstance`` dispatch at run time);
* the static cycle cost via the build's :class:`CostModel` (only
  ``work`` amounts and outer region entries stay dynamic);
* detector-trigger and bit-position membership (no per-step frozenset
  hashing of :class:`InstrId`);
* pure expression trees, compiled to nested closures (``work`` amounts,
  operands, branch conditions);
* jump targets, resolved to the decoded op list of the target block.

Call-site provenance is memoized per frame: each frame carries the
tuple of call uids from ``main`` (its ``sites``), extended once at call
time, and every op caches the :class:`Chain` (plus its detector checks)
per distinct ``sites`` tuple -- the reference machine instead rebuilds
the tuple from the frame stack at every detector trigger.

Decoded code is cached on the :class:`CompiledProgram` itself (see
:func:`code_for`).  Compiled programs are interned by the compile cache
keyed on (source, pass-pipeline fingerprint), so the decode cache is
effectively fingerprint-keyed: two builds share decoded code exactly
when they share a build, completed by the (detector plan, cost model)
pair the decode bakes in.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.analysis.provenance import Chain
from repro.analysis.taint import consistent_pid, fresh_pid
from repro.energy.costs import DEFAULT_COSTS, CostModel
from repro.ir import instructions as ir
from repro.ir.module import IRError, Module
from repro.lang import ast as lang_ast
from repro.runtime import observations as obs
from repro.runtime.detector import DetectorPlan
from repro.runtime.executor import (
    AtomContext,
    ExecError,
    JitContext,
    Machine,
    MachineConfig,
    MachineCore,
    NVState,
    _trunc_div,
    copy_stack,
    stack_words,
)
from repro.runtime.supply import (
    ContinuousPower,
    EnergyDrivenSupply,
    PowerSupply,
    ScheduledFailures,
)
from repro.runtime.values import InputEvent, RefValue, TVal, ZERO, merge_taint
from repro.sensors.environment import Environment
from repro.telemetry.trace import tracer as _tracer

#: Engine names: the escape hatch every harness exposes.
ENGINE_FAST = "fast"
ENGINE_REFERENCE = "reference"
ENGINES = (ENGINE_FAST, ENGINE_REFERENCE)

# Supply interaction modes, classified once per machine so the hot loop
# skips calls that are constant for the supply's exact type (the
# reference machine calls fail_before/would_trip/consume on every step).
_FAIL_NEVER = 0
_FAIL_WATCHED = 1
_FAIL_GENERIC = 2
_ENERGY_NONE = 0
_ENERGY_CAPACITOR = 1
_ENERGY_GENERIC = 2


class EngineError(ValueError):
    """An unknown engine name or a mismatched pre-decoded program."""


#: Decoded variants kept per build (distinct plan/cost-model pairs are
#: rare in practice; the bound only guards pathological callers).
_CODE_CACHE_LIMIT = 16


class FastFrame:
    """A volatile frame specialized for decoded code.

    ``ops`` is the decoded op list of the current block (jump targets
    are resolved lists, so there is no per-step block lookup) and
    ``sites`` is the memoized call-site prefix: the tuple of call uids
    from ``main`` down to this frame, extended once per call instead of
    being rebuilt from the stack at every detector trigger.
    """

    __slots__ = ("func", "ops", "idx", "locals", "ret_dest", "sites")

    def __init__(self, func, ops, idx, locals_, ret_dest, sites):
        self.func = func
        self.ops = ops
        self.idx = idx
        self.locals = locals_
        self.ret_dest = ret_dest
        self.sites = sites

    def copy(self) -> "FastFrame":
        return FastFrame(
            self.func, self.ops, self.idx, dict(self.locals),
            self.ret_dest, self.sites,
        )


class Op:
    """One decoded instruction: closures plus precomputed dispatch facts."""

    __slots__ = ("uid", "run", "cycles", "estimate", "trigger", "chain_at")

    def __init__(self, uid, run, cycles, estimate, trigger, chain_at):
        self.uid = uid
        #: execute the instruction; returns its cycle cost
        self.run: Callable = run
        #: static cycle estimate, or None when dynamic (work, region entry)
        self.cycles: Optional[int] = cycles
        #: dynamic estimate closure (None when ``cycles`` is static)
        self.estimate: Optional[Callable] = estimate
        #: does the detector plan trigger at this uid?
        self.trigger: bool = trigger
        #: sites tuple -> (Chain, checks tuple), memoized per call context
        self.chain_at: Callable = chain_at


class FastFunction:
    __slots__ = ("name", "entry", "blocks")

    def __init__(self, name: str, entry: str):
        self.name = name
        self.entry = entry
        #: block name -> decoded op list (lists are filled in place so
        #: forward references -- calls, jumps -- resolve before decoding)
        self.blocks: dict[str, list[Op]] = {}


class CompiledCode:
    """A fully decoded module for one (detector plan, cost model) pair."""

    __slots__ = ("module", "plan", "costs", "functions", "entry")

    def __init__(self, module, plan, costs, functions, entry):
        self.module = module
        self.plan = plan
        self.costs = costs
        self.functions = functions
        self.entry = entry


# ---------------------------------------------------------------------------
# Expression compilation

_BINOP_FNS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _trunc_div,
    "%": lambda a, b: 0 if b == 0 else a - b * _trunc_div(a, b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
}


def _raising(message: str) -> Callable:
    """A closure deferring an ExecError to execution time, like the
    reference machine (a dead unevaluable expression must not fail the
    decode of an otherwise runnable program)."""

    def raise_(m, frame):
        raise ExecError(message)

    return raise_


def compile_expr(expr: lang_ast.Expr) -> Callable:
    """Compile a pure expression tree into a ``fn(machine, frame) -> TVal``."""
    if isinstance(expr, lang_ast.IntLit):
        const = TVal.of(expr.value)
        return lambda m, frame: const
    if isinstance(expr, lang_ast.BoolLit):
        const = TVal.of(expr.value)
        return lambda m, frame: const
    if isinstance(expr, lang_ast.Var):
        name = expr.name

        def read_var(m, frame):
            cell = frame.locals.get(name)
            if cell is None:
                value = m.nv.globals.get(name)
                if value is None:
                    raise ExecError(
                        f"read of unbound variable '{name}' in {frame.func}"
                    )
                return value
            if type(cell) is RefValue:
                return m._deref(cell)
            return cell

        return read_var
    if isinstance(expr, lang_ast.Index):
        index_fn = compile_expr(expr.index)
        array_name = expr.array

        def read_index(m, frame):
            index = index_fn(m, frame)
            array = m.nv.arrays.get(array_name)
            if array is None:
                raise ExecError(f"unknown array '{array_name}'")
            iv = index.value
            if not 0 <= iv < len(array):
                raise ExecError(
                    f"index {iv} out of bounds for {array_name}[{len(array)}]"
                )
            element = array[iv]
            return TVal(element.value, merge_taint(element.taint, index.taint))

        return read_index
    if isinstance(expr, lang_ast.Unary):
        operand_fn = compile_expr(expr.operand)
        if expr.op == "-":

            def neg(m, frame):
                operand = operand_fn(m, frame)
                return TVal(-operand.value, operand.taint)

            return neg
        if expr.op == "!":

            def invert(m, frame):
                operand = operand_fn(m, frame)
                return TVal(int(not operand.value), operand.taint)

            return invert
        return _raising(f"unknown unary operator {expr.op}")
    if isinstance(expr, lang_ast.Binary):
        lhs_fn = compile_expr(expr.lhs)
        rhs_fn = compile_expr(expr.rhs)
        value_fn = _BINOP_FNS.get(expr.op)
        if value_fn is None:
            return _raising(f"unknown operator '{expr.op}'")

        def binary(m, frame):
            lhs = lhs_fn(m, frame)
            rhs = rhs_fn(m, frame)
            return TVal(
                value_fn(lhs.value, rhs.value), merge_taint(lhs.taint, rhs.taint)
            )

        return binary
    if isinstance(expr, lang_ast.Call):
        arg_fns = tuple(compile_expr(a) for a in expr.args)
        func = expr.func
        if func == "abs":

            def call_abs(m, frame):
                args = [fn(m, frame) for fn in arg_fns]
                taint = merge_taint(*(a.taint for a in args))
                return TVal(abs(args[0].value), taint)

            return call_abs
        if func == "min":

            def call_min(m, frame):
                args = [fn(m, frame) for fn in arg_fns]
                taint = merge_taint(*(a.taint for a in args))
                return TVal(min(args[0].value, args[1].value), taint)

            return call_min
        if func == "max":

            def call_max(m, frame):
                args = [fn(m, frame) for fn in arg_fns]
                taint = merge_taint(*(a.taint for a in args))
                return TVal(max(args[0].value, args[1].value), taint)

            return call_max
        return _raising(f"cannot evaluate call to '{func}' in expression")
    return _raising(f"cannot evaluate {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Instruction decode


def _decode_instr(
    instr: ir.Instr,
    module: Module,
    plan: DetectorPlan,
    costs: CostModel,
    bit_uids: frozenset[ir.InstrId],
    actions_map: dict,
    blocks: dict[str, list[Op]],
    functions: dict[str, FastFunction],
) -> Op:
    uid = instr.uid
    trigger = uid in plan.trigger_uids
    chain_cache: dict[tuple, tuple] = {}

    def chain_at(sites, _cache=chain_cache):
        entry = _cache.get(sites)
        if entry is None:
            chain = Chain(ids=sites + (uid,))
            entry = (chain, actions_map.get(chain))
            _cache[sites] = entry
        return entry

    def op(run, cycles, estimate=None):
        return Op(uid, run, cycles, estimate, trigger, chain_at)

    if isinstance(instr, ir.Terminator):
        cyc = costs.instr_cycles(instr)
        if isinstance(instr, ir.Jump):
            target_ops = blocks[instr.target]

            def run_jump(m, frame):
                frame.ops = target_ops
                frame.idx = 0
                return cyc

            return op(run_jump, cyc)
        if isinstance(instr, ir.Branch):
            cond_fn = compile_expr(instr.cond)
            true_ops = blocks[instr.true_target]
            false_ops = blocks[instr.false_target]

            def run_branch(m, frame):
                frame.ops = true_ops if cond_fn(m, frame).value else false_ops
                frame.idx = 0
                return cyc

            return op(run_branch, cyc)
        if isinstance(instr, ir.RetInstr):
            expr_fn = compile_expr(instr.expr) if instr.expr is not None else None

            def run_ret(m, frame):
                value = expr_fn(m, frame) if expr_fn is not None else None
                frames = m._frames
                frames.pop()
                if not frames:
                    m._done = True
                    m._ret_value = value
                elif frame.ret_dest is not None:
                    frames[-1].locals[frame.ret_dest] = (
                        value if value is not None else ZERO
                    )
                return cyc

            return op(run_ret, cyc)
        name = type(instr).__name__
        return op(_raising(f"unknown terminator {name}"), cyc)

    cyc = costs.instr_cycles(instr)

    if isinstance(instr, ir.Assign):
        expr_fn = compile_expr(instr.expr)
        dest = instr.dest
        if instr.scope == ir.SCOPE_GLOBAL:

            def run_assign_global(m, frame):
                frame.idx += 1
                m._write_global(dest, expr_fn(m, frame))
                return cyc

            return op(run_assign_global, cyc)

        def run_assign_local(m, frame):
            frame.idx += 1
            value = expr_fn(m, frame)
            cell = frame.locals.get(dest)
            if type(cell) is RefValue:
                raise ExecError(f"assignment to reference parameter '{dest}'")
            frame.locals[dest] = value
            return cyc

        return op(run_assign_local, cyc)

    if isinstance(instr, ir.InputInstr):
        channel = instr.channel
        dest = instr.dest
        is_bit = uid in bit_uids

        def run_input(m, frame):
            frame.idx += 1
            tau = m.tau
            raw = m._env.read(channel, tau)
            frame.locals[dest] = TVal(
                raw, frozenset((InputEvent(uid=uid, channel=channel, tau=tau),))
            )
            if is_bit:
                m.nv.bits.bits.add(chain_at(frame.sites)[0])
            if m._config.emit_observations:
                m.trace.events.append(
                    obs.InputObs(tau=tau, uid=uid, channel=channel, value=raw)
                )
            return cyc

        return op(run_input, cyc)

    if isinstance(instr, ir.CallInstr):
        callee = module.functions.get(instr.func)
        if callee is None:
            missing = instr.func

            def run_missing(m, frame):
                raise IRError(f"no function '{missing}' in module")

            return op(run_missing, cyc)
        entry_ops = functions[instr.func].blocks[callee.entry]
        callee_name = callee.name
        ret_dest = instr.dest
        arg_plan = tuple(
            (param.name, None, arg.name)
            if isinstance(arg, ir.RefArg)
            else (param.name, compile_expr(arg), None)
            for param, arg in zip(callee.params, instr.args, strict=True)
        )

        def run_call(m, frame):
            frame.idx += 1
            frames = m._frames
            depth = len(frames) - 1
            locals_: dict = {}
            for pname, expr_fn, ref_name in arg_plan:
                if expr_fn is not None:
                    locals_[pname] = expr_fn(m, frame)
                else:
                    cell = frame.locals.get(ref_name)
                    locals_[pname] = (
                        cell
                        if type(cell) is RefValue
                        else RefValue(depth=depth, name=ref_name)
                    )
            frames.append(
                FastFrame(
                    callee_name,
                    entry_ops,
                    0,
                    locals_,
                    ret_dest,
                    frame.sites + (uid,),
                )
            )
            return cyc

        return op(run_call, cyc)

    if isinstance(instr, ir.StoreRefInstr):
        expr_fn = compile_expr(instr.expr)
        param = instr.param

        def run_store_ref(m, frame):
            frame.idx += 1
            value = expr_fn(m, frame)
            cell = frame.locals.get(param)
            if type(cell) is not RefValue:
                raise ExecError(f"*{param} is not a reference")
            m._frames[cell.depth].locals[cell.name] = value
            return cyc

        return op(run_store_ref, cyc)

    if isinstance(instr, ir.StoreArr):
        index_fn = compile_expr(instr.index)
        expr_fn = compile_expr(instr.expr)
        array_name = instr.array

        def run_store_arr(m, frame):
            frame.idx += 1
            index = index_fn(m, frame)
            value = expr_fn(m, frame)
            array = m.nv.arrays.get(array_name)
            if array is None:
                raise ExecError(f"unknown array '{array_name}'")
            iv = index.value
            if not 0 <= iv < len(array):
                raise ExecError(
                    f"index {iv} out of bounds for {array_name}[{len(array)}]"
                )
            m._assert_logged(array_name)
            array[iv] = TVal(value.value, merge_taint(value.taint, index.taint))
            return cyc

        return op(run_store_arr, cyc)

    if isinstance(instr, ir.AnnotInstr):
        var_fn = compile_expr(lang_ast.Var(name=instr.var))
        if instr.kind == lang_ast.AnnotKind.FRESH:
            pid = fresh_pid(uid)

            def run_fresh(m, frame):
                frame.idx += 1
                value = var_fn(m, frame)
                m._emit(
                    obs.FreshDeclObs(tau=m.tau, uid=uid, pid=pid, inputs=value.taint)
                )
                return cyc

            return op(run_fresh, cyc)
        assert instr.set_id is not None
        set_id = instr.set_id
        pid = consistent_pid(set_id)

        def run_consistent(m, frame):
            frame.idx += 1
            value = var_fn(m, frame)
            m._emit(
                obs.ConsistentDeclObs(
                    tau=m.tau, uid=uid, pid=pid, set_id=set_id, inputs=value.taint
                )
            )
            return cyc

        return op(run_consistent, cyc)

    if isinstance(instr, ir.AtomicStart):
        region = instr.region
        omega = tuple(instr.omega)
        omega_set = instr.omega
        inner = costs.region_inner

        def estimate_start(m):
            if m._atom_ctx is not None:
                return cyc
            omega_words = 0
            arrays = m.nv.arrays
            for name in omega:
                omega_words += len(arrays[name]) if name in arrays else 1
            return cyc + costs.region_entry_cycles(
                stack_words(m._frames), omega_words
            )

        def run_start(m, frame):
            frame.idx += 1
            ctx = m._atom_ctx
            if ctx is not None:
                # Atom-Start-Inner: nested start is bookkeeping only.
                ctx.natom += 1
                return cyc + inner
            globals_ = m.nv.globals
            arrays = m.nv.arrays
            undo_globals = {n: globals_[n] for n in omega if n in globals_}
            undo_arrays = {n: list(arrays[n]) for n in omega if n in arrays}
            m._atom_ctx = AtomContext(
                region=region,
                frames=copy_stack(m._frames),
                undo_globals=undo_globals,
                undo_arrays=undo_arrays,
                omega=omega_set,
            )
            words = stack_words(m._frames)
            omega_words = len(undo_globals) + sum(
                len(v) for v in undo_arrays.values()
            )
            m.stats.region_entries += 1
            m._emit(obs.RegionEnterObs(tau=m.tau, uid=uid, region=region))
            return cyc + costs.region_entry_cycles(words, omega_words)

        return op(run_start, None, estimate_start)

    if isinstance(instr, ir.AtomicEnd):
        inner = costs.region_inner
        commit = costs.region_commit

        def run_end(m, frame):
            frame.idx += 1
            ctx = m._atom_ctx
            if ctx is None:
                return cyc  # stray end outside any region (flattening)
            if ctx.natom > 0:
                ctx.natom -= 1
                return cyc + inner
            m._atom_ctx = None
            m.stats.region_commits += 1
            m._emit(obs.RegionExitObs(tau=m.tau, uid=uid, region=ctx.region))
            return cyc + commit

        return op(run_end, cyc)

    if isinstance(instr, ir.OutputInstr):
        arg_fns = tuple(compile_expr(a) for a in instr.args)
        op_name = instr.op

        def run_output(m, frame):
            frame.idx += 1
            values = tuple(fn(m, frame).value for fn in arg_fns)
            m._emit(obs.OutputObs(tau=m.tau, uid=uid, op=op_name, values=values))
            return cyc

        return op(run_output, cyc)

    if isinstance(instr, ir.WorkInstr):
        expr_fn = compile_expr(instr.cycles)

        def estimate_work(m):
            # Pure expression: evaluate once here, reuse in run_work.
            amount = expr_fn(m, m._frames[-1]).value
            cycles = costs.instr_cycles(instr, work_value=amount)
            m._pending_cycles = cycles
            return cycles

        def run_work(m, frame):
            frame.idx += 1
            return m._pending_cycles

        return op(run_work, None, estimate_work)

    if isinstance(instr, ir.SkipInstr):

        def run_skip(m, frame):
            frame.idx += 1
            return cyc

        return op(run_skip, cyc)

    name = type(instr).__name__
    return op(_raising(f"cannot execute {name}"), cyc)


def compile_code(
    module: Module, plan: DetectorPlan, costs: CostModel
) -> CompiledCode:
    """Decode every function of ``module`` for one (plan, costs) pair.

    Two-phase: op lists are allocated first so calls and jumps resolve
    to the (later filled) target lists, then every block is decoded in
    place.  A block missing its terminator decodes to a raising op, the
    decode-time analogue of the reference machine's fetch assertion.
    """
    bit_uids = frozenset(chain.op for chain in plan.bit_chains)
    actions_map = plan.runtime_actions()
    functions: dict[str, FastFunction] = {}
    for name, fn in module.functions.items():
        fast = FastFunction(name, fn.entry)
        fast.blocks = {block_name: [] for block_name in fn.blocks}
        functions[name] = fast
    for name, fn in module.functions.items():
        fast = functions[name]
        for block_name, block in fn.blocks.items():
            ops = fast.blocks[block_name]
            for instr in block.instrs:
                ops.append(
                    _decode_instr(
                        instr, module, plan, costs, bit_uids,
                        actions_map, fast.blocks, functions,
                    )
                )
            if block.terminator is not None:
                ops.append(
                    _decode_instr(
                        block.terminator,
                        module,
                        plan,
                        costs,
                        bit_uids,
                        actions_map,
                        fast.blocks,
                        functions,
                    )
                )
            else:
                uid = ir.InstrId(name, ir.UNASSIGNED)
                ops.append(
                    Op(
                        uid,
                        _raising(f"block '{block_name}' has no terminator"),
                        0,
                        None,
                        False,
                        lambda sites, uid=uid: (
                            Chain(ids=sites + (uid,)),
                            None,
                        ),
                    )
                )
    return CompiledCode(
        module=module,
        plan=plan,
        costs=costs,
        functions=functions,
        entry=module.entry,
    )


def code_for(compiled, costs: CostModel = DEFAULT_COSTS, plan=None) -> CompiledCode:
    """The decoded form of a build, cached on the ``CompiledProgram``.

    The compile cache interns one ``CompiledProgram`` per (source,
    pass-pipeline fingerprint), so this per-program cache is effectively
    keyed by the pipeline fingerprint; the (plan, cost model) pair the
    decode bakes in completes the key.  The plan is compared by identity
    (the default plan is itself cached on the program), the cost model
    by value (app cost models are built per call).
    """
    if plan is None:
        plan = compiled.detector_plan()
    cache = compiled._engine_code
    for index, (cached_plan, cached_costs, code) in enumerate(cache):
        # Identity first (the cached default plan, the common case),
        # equality second so callers building fresh-but-equal plans per
        # run share the decode instead of leaking one copy per call.
        if (cached_plan is plan or cached_plan == plan) and cached_costs == costs:
            if index:
                cache.insert(0, cache.pop(index))
            return code
    code = compile_code(compiled.module, plan, costs)
    cache.insert(0, (plan, costs, code))
    del cache[_CODE_CACHE_LIMIT:]
    return code


# ---------------------------------------------------------------------------
# The fast machine


class FastMachine(MachineCore):
    """One intermittent (or continuous) execution over decoded code.

    Drop-in for :class:`~repro.runtime.executor.Machine`: same
    constructor surface plus an optional pre-decoded ``code``, same
    ``run()`` result, and -- by the parity suite's contract --
    bit-identical observation streams, stats, and nonvolatile state.
    The power-failure/reboot rules and nonvolatile-write guards are the
    shared :class:`MachineCore` bodies, so only the fetch/execute loop
    differs from the reference.
    """

    def __init__(
        self,
        module: Module,
        env: Environment,
        supply: Optional[PowerSupply] = None,
        costs: CostModel = DEFAULT_COSTS,
        plan: Optional[DetectorPlan] = None,
        nv: Optional[NVState] = None,
        config: Optional[MachineConfig] = None,
        start_tau: int = 0,
        code: Optional[CompiledCode] = None,
    ):
        self._module = module
        self._env = env
        self._supply = supply or ContinuousPower()
        self._costs = costs
        self._plan = plan or DetectorPlan()
        if code is None:
            code = compile_code(module, self._plan, costs)
        elif (
            code.module is not module
            # Identity or equality, mirroring code_for's cache match: a
            # cached decode legitimately carries an equal (not identical)
            # plan object when callers build fresh plans per run.
            or (code.plan is not self._plan and code.plan != self._plan)
            or code.costs != costs
        ):
            raise EngineError(
                "pre-decoded code belongs to a different module, detector "
                "plan, or cost model"
            )
        self._code = code
        watched = getattr(self._supply, "watched_uids", None)
        self._watched_uids: frozenset = watched() if watched else frozenset()
        self.nv = nv or NVState.initial(module)
        self._config = config or MachineConfig()

        self.tau = start_tau
        self.trace = obs.Trace()
        self.stats = obs.RunStats()
        #: bit-vector scans performed; see the reference machine's note
        self.detector_queries = 0
        self._hoist_cache: dict[int, frozenset] = {}
        self._frames: list[FastFrame] = []
        self._jit_ctx: Optional[JitContext] = None
        self._atom_ctx: Optional[AtomContext] = None
        self._ret_value: Optional[TVal] = None
        self._done = False
        self._pending_cycles = 0
        self._classify_supply()
        self._restart_main()

    def _classify_supply(self) -> None:
        """Pick the cheapest supply interaction the exact type allows.

        Only the shipped supply types are specialized (their constant
        methods are skipped or inlined); any other object -- subclasses
        included -- takes the generic path, which performs exactly the
        reference machine's call sequence.  The capacitor inline also
        requires the stock energy model (``cycles * energy_per_cycle``).
        """
        supply_type = type(self._supply)
        stock_energy = type(self._costs).energy is CostModel.energy
        if supply_type is ContinuousPower:
            self._fail_mode = _FAIL_NEVER
            self._energy_mode = _ENERGY_NONE
        elif supply_type is ScheduledFailures:
            self._fail_mode = _FAIL_WATCHED
            self._energy_mode = _ENERGY_NONE
        elif supply_type is EnergyDrivenSupply:
            self._fail_mode = _FAIL_NEVER
            self._energy_mode = (
                _ENERGY_CAPACITOR if stock_energy else _ENERGY_GENERIC
            )
        else:
            self._fail_mode = _FAIL_GENERIC
            self._energy_mode = _ENERGY_GENERIC

    # -- construction ----------------------------------------------------------

    def _restart_main(self) -> None:
        entry = self._code.functions.get(self._code.entry)
        if entry is None:
            raise IRError(f"no function '{self._code.entry}' in module")
        self._frames = [
            FastFrame(entry.name, entry.blocks[entry.entry], 0, {}, None, ())
        ]

    # -- the hot loop ----------------------------------------------------------

    def run(self) -> obs.RunResult:
        """Execute one activation of ``main`` to completion (or give up)."""
        wall = _tracer()
        if wall is not None:
            with wall.span("activation", "engine", engine="fast"):
                return self._run_to_completion()
        return self._run_to_completion()

    def _run_to_completion(self) -> obs.RunResult:
        stats = self.stats
        config = self._config
        max_cycles = config.max_cycles
        start_cycles = stats.cycles_on + stats.cycles_off
        supply = self._supply
        costs = self._costs
        epc = costs.energy_per_cycle
        watched = self._watched_uids
        fail_mode = self._fail_mode
        if fail_mode == _FAIL_WATCHED and not watched:
            fail_mode = _FAIL_NEVER
        energy_mode = self._energy_mode
        if energy_mode == _ENERGY_CAPACITOR:
            cap = supply.capacitor
            low = cap.low_threshold
        else:
            cap = None
            low = 0

        while not self._done:
            if stats.cycles_on + stats.cycles_off - start_cycles > max_cycles:
                break
            frame = self._frames[-1]
            op = frame.ops[frame.idx]

            if fail_mode:
                if fail_mode == _FAIL_WATCHED:
                    if op.uid in watched and supply.fail_before(
                        op.uid, op.chain_at(frame.sites)[0]
                    ):
                        self._power_failure()
                        continue
                else:
                    chain = (
                        op.chain_at(frame.sites)[0] if op.uid in watched else None
                    )
                    if supply.fail_before(op.uid, chain):
                        self._power_failure()
                        continue

            estimate = op.cycles
            if estimate is None:
                estimate = op.estimate(self)
            if cap is not None:
                if cap.level - estimate * epc <= low:
                    self._power_failure()
                    continue
            elif energy_mode == _ENERGY_GENERIC and supply.would_trip(
                costs.energy(estimate)
            ):
                self._power_failure()
                continue

            if op.trigger:
                actions = op.chain_at(frame.sites)[1]
                if actions is not None:
                    self._run_site_actions(op.uid, actions)

            cycles = op.run(self, frame)
            self.tau += cycles
            stats.cycles_on += cycles
            stats.instructions += 1

            if self._done:
                break
            if cap is not None:
                cap.level -= cycles * epc
                if cap.level <= low:
                    self._power_failure()
            elif energy_mode == _ENERGY_GENERIC and supply.consume(
                costs.energy(cycles)
            ):
                self._power_failure()

        stats.completed = self._done
        stats.violations = len(self.trace.violations)
        ret = self._ret_value.value if self._ret_value is not None else None
        return obs.RunResult(
            trace=self.trace,
            stats=stats,
            ret=ret,
            detector_queries=self.detector_queries,
        )

    def step(self) -> None:
        """One machine step over decoded code (generic supply path).

        Mirrors a single iteration of :meth:`run` on the generic
        fail/energy path -- exactly the reference machine's supply call
        sequence -- so external drivers (the bounded model checker in
        :mod:`repro.verify`) can single-step a fast machine under any
        supply type.  :meth:`run` remains the hot loop; this method
        trades its per-supply specialization for steppability, which by
        the classification contract (unknown supplies take the generic
        path) cannot change observable behavior.
        """
        if self._done:
            return
        supply = self._supply
        frame = self._frames[-1]
        op = frame.ops[frame.idx]

        chain = (
            op.chain_at(frame.sites)[0]
            if op.uid in self._watched_uids
            else None
        )
        if supply.fail_before(op.uid, chain):
            self._power_failure()
            return

        estimate = op.cycles
        if estimate is None:
            estimate = op.estimate(self)
        if supply.would_trip(self._costs.energy(estimate)):
            self._power_failure()
            return

        if op.trigger:
            actions = op.chain_at(frame.sites)[1]
            if actions is not None:
                self._run_site_actions(op.uid, actions)

        cycles = op.run(self, frame)
        self.tau += cycles
        self.stats.cycles_on += cycles
        self.stats.instructions += 1

        if self._done:
            return
        if supply.consume(self._costs.energy(cycles)):
            self._power_failure()

    # Detector check execution (_run_site_actions), power failure,
    # reboot, _deref, _write_global, _assert_logged, and _emit are the
    # shared MachineCore bodies.


# ---------------------------------------------------------------------------
# Engine selection


def create_machine(
    engine: str,
    compiled,
    env: Environment,
    supply: Optional[PowerSupply] = None,
    costs: CostModel = DEFAULT_COSTS,
    plan: Optional[DetectorPlan] = None,
    nv: Optional[NVState] = None,
    config: Optional[MachineConfig] = None,
    start_tau: int = 0,
) -> Machine | FastMachine:
    """Build a machine for one activation of ``compiled`` under ``engine``.

    ``reference`` is the Appendix H transcription in
    :mod:`repro.runtime.executor`; ``fast`` is the pre-decoded engine of
    this module (decoded code cached on the build).  Both produce
    bit-identical results; ``reference`` exists as the semantics oracle
    and the escape hatch.
    """
    if plan is None:
        plan = compiled.detector_plan()
    if engine == ENGINE_FAST:
        code = code_for(compiled, costs=costs, plan=plan)
        return FastMachine(
            compiled.module,
            env,
            supply,
            costs=costs,
            plan=plan,
            nv=nv,
            config=config,
            start_tau=start_tau,
            code=code,
        )
    if engine == ENGINE_REFERENCE:
        return Machine(
            compiled.module,
            env,
            supply,
            costs=costs,
            plan=plan,
            nv=nv,
            config=config,
            start_tau=start_tau,
        )
    raise EngineError(
        f"unknown engine '{engine}' (expected one of: {', '.join(ENGINES)})"
    )
