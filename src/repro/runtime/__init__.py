"""Runtime: the JIT + atomics intermittent machine and its instruments.

* :mod:`repro.runtime.executor` -- the Appendix H abstract machine (the
  executable reference semantics),
* :mod:`repro.runtime.engine` -- the pre-decoded fast engine, proven
  observation-stream equivalent to the reference machine,
* :mod:`repro.runtime.supply` -- power models (continuous / scheduled /
  energy-driven),
* :mod:`repro.runtime.detector` -- the Section 7.3 bit-vector detector,
* :mod:`repro.runtime.properties` -- Definitions 2/3 as trace predicates,
* :mod:`repro.runtime.harness` -- one-shot and repeated-run drivers.
"""

from repro.runtime.detector import BitVector, Check, DetectorPlan, build_detector_plan
from repro.runtime.engine import (
    ENGINE_FAST,
    ENGINE_REFERENCE,
    ENGINES,
    CompiledCode,
    EngineError,
    FastMachine,
    code_for,
    compile_code,
    create_machine,
)
from repro.runtime.executor import (
    ExecError,
    Frame,
    Machine,
    MachineConfig,
    NVState,
)
from repro.runtime.harness import (
    ActivationRecord,
    ActivationsResult,
    ActivationsSummary,
    ActivationStepper,
    run_activations,
    run_continuous,
    run_once,
)
from repro.runtime.observations import (
    CheckpointObs,
    ConsistentDeclObs,
    FreshDeclObs,
    InputObs,
    Obs,
    OutputObs,
    PowerFailObs,
    RebootObs,
    RegionEnterObs,
    RegionExitObs,
    RunResult,
    RunStats,
    Trace,
    UseObs,
    ViolationObs,
)
from repro.runtime.properties import (
    PropertyViolation,
    check_all_properties,
    check_consistency,
    check_freshness,
    check_region_bracketing,
)
from repro.runtime.refinement import (
    CommittedOutput,
    RefinementResult,
    check_refinement,
    committed_outputs,
)
from repro.runtime.supply import (
    ContinuousPower,
    EnergyDrivenSupply,
    FailurePoint,
    PowerSupply,
    ScheduledFailures,
)
from repro.runtime.values import InputEvent, RefValue, TVal

__all__ = [
    "BitVector",
    "Check",
    "DetectorPlan",
    "build_detector_plan",
    "ENGINE_FAST",
    "ENGINE_REFERENCE",
    "ENGINES",
    "CompiledCode",
    "EngineError",
    "FastMachine",
    "code_for",
    "compile_code",
    "create_machine",
    "ExecError",
    "Frame",
    "Machine",
    "MachineConfig",
    "NVState",
    "ActivationRecord",
    "ActivationsResult",
    "ActivationsSummary",
    "ActivationStepper",
    "run_activations",
    "run_continuous",
    "run_once",
    "CheckpointObs",
    "ConsistentDeclObs",
    "FreshDeclObs",
    "InputObs",
    "Obs",
    "OutputObs",
    "PowerFailObs",
    "RebootObs",
    "RegionEnterObs",
    "RegionExitObs",
    "RunResult",
    "RunStats",
    "Trace",
    "UseObs",
    "ViolationObs",
    "PropertyViolation",
    "CommittedOutput",
    "RefinementResult",
    "check_refinement",
    "committed_outputs",
    "check_all_properties",
    "check_consistency",
    "check_freshness",
    "check_region_bracketing",
    "ContinuousPower",
    "EnergyDrivenSupply",
    "FailurePoint",
    "PowerSupply",
    "ScheduledFailures",
    "InputEvent",
    "RefValue",
    "TVal",
]
