"""The intermittent abstract machine: JIT checkpoints + atomic regions.

Implements the small-step semantics of Appendix H over our IR.  A machine
state is ``(tau, kappa, N, S, pos)``:

* ``tau`` -- logical time, advanced by instruction cycle costs while on and
  by the harvester-determined off-time across power failures;
* ``kappa`` -- the saved execution context, either a JIT context (volatile
  snapshot taken at the low-power interrupt) or an atomic context (volatile
  snapshot + undo log of the region's omega set + nesting counter);
* ``N`` -- nonvolatile memory: globals, arrays, the detector bit vector;
* ``S`` -- the volatile frame stack; ``pos`` lives in the top frame.

Rule correspondence:

=====================  =======================================================
Appendix H rule        here
=====================  =======================================================
JIT-LowPower           ``_power_failure`` in jit mode: snapshot, power off
Atom-LowPower          ``_power_failure`` in atomic mode: power off directly
JIT-Reboot             ``_reboot``: restore frames from the JIT context
Atom-Reboot            ``_reboot``: apply undo log, restore region entry
Atom-Start-Outer       ``_exec_atomic_start`` from jit mode
Atom-Start-Inner       ``_exec_atomic_start`` when already atomic (counter++)
Atom-End-Outer         ``_exec_atomic_end`` at depth 0 (commit)
Atom-End-Inner         ``_exec_atomic_end`` at depth > 0 (counter--)
=====================  =======================================================

Execution is taint-augmented (Appendix B): every value carries the set of
dynamic input events it depends on, and the machine emits the observation
stream the formal freshness/consistency definitions quantify over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.energy.costs import DEFAULT_COSTS, CostModel
from repro.ir import instructions as ir
from repro.ir.module import Module
from repro.lang import ast as lang_ast
from repro.runtime import observations as obs
from repro.runtime.detector import OP_CONSUME, OP_MARKER, BitVector, DetectorPlan
from repro.analysis.provenance import Chain
from repro.analysis.taint import consistent_pid, fresh_pid
from repro.runtime.supply import ContinuousPower, PowerSupply
from repro.runtime.values import Cell, InputEvent, RefValue, TVal, merge_taint
from repro.sensors.environment import Environment
from repro.telemetry.trace import tracer as _tracer


class ExecError(Exception):
    """Raised on dynamic errors: bad index, missing value, stuck region."""


@dataclass
class Frame:
    func: str
    block: str
    idx: int
    locals: dict[str, Cell]
    ret_dest: Optional[str] = None
    #: uid of the call instruction that created this frame (None for main);
    #: the detector uses the stack of call uids as the provenance context
    call_uid: Optional[ir.InstrId] = None

    def copy(self) -> "Frame":
        return Frame(
            func=self.func,
            block=self.block,
            idx=self.idx,
            locals=dict(self.locals),
            ret_dest=self.ret_dest,
            call_uid=self.call_uid,
        )


def copy_stack(frames: list[Frame]) -> list[Frame]:
    return [f.copy() for f in frames]


def stack_words(frames: list[Frame]) -> int:
    """Volatile footprint in words: locals plus per-frame bookkeeping."""
    return sum(len(f.locals) + 2 for f in frames)


@dataclass
class JitContext:
    """``jit(S, c)``: volatile snapshot taken at the low-power interrupt."""

    frames: list[Frame]


@dataclass
class AtomContext:
    """``atom(L, S, c, n_atom)``: region-entry snapshot plus undo log."""

    region: str
    frames: list[Frame]
    undo_globals: dict[str, TVal]
    undo_arrays: dict[str, list[TVal]]
    natom: int = 0
    omega: frozenset[str] = frozenset()


@dataclass
class NVState:
    """Nonvolatile memory; persists across reboots and across activations."""

    globals: dict[str, TVal]
    arrays: dict[str, list[TVal]]
    bits: BitVector = field(default_factory=BitVector)

    @staticmethod
    def initial(module: Module) -> "NVState":
        return NVState(
            globals={name: TVal.of(v) for name, v in module.globals.items()},
            arrays={
                name: [TVal.of(v) for v in values]
                for name, values in module.arrays.items()
            },
        )

    def snapshot_values(self) -> dict:
        """Plain-value view of globals/arrays (for assertions in tests)."""
        return {
            "globals": {k: v.value for k, v in self.globals.items()},
            "arrays": {k: [c.value for c in v] for k, v in self.arrays.items()},
        }


@dataclass
class MachineConfig:
    max_cycles: int = 50_000_000
    max_region_restarts: int = 1_000
    emit_observations: bool = True


class MachineCore:
    """Engine-independent machine behavior: checkpoints, reboots, and
    nonvolatile-write guards.

    The reference :class:`Machine` and the pre-decoded
    :class:`~repro.runtime.engine.FastMachine` differ only in how they
    fetch and execute instructions; everything the Appendix H power
    rules touch -- JIT-LowPower/Atom-LowPower, JIT-Reboot/Atom-Reboot,
    the undo-log guard, observation emission -- lives here once, so a
    semantics fix cannot silently reach one engine and not the other.
    Frame classes differ per engine but share ``copy()`` and ``locals``,
    which is all these bodies touch.
    """

    # -- mode -----------------------------------------------------------------

    @property
    def mode(self) -> str:
        return "atomic" if self._atom_ctx is not None else "jit"

    def _restart_main(self) -> None:
        raise NotImplementedError

    # -- power failure and reboot ----------------------------------------------

    def force_power_failure(self) -> None:
        """Externally injected low-power interrupt (the verifier's fork).

        Identical to a supply's ``fail_before`` answering True right
        before the next instruction: checkpoint in jit mode, power off,
        reboot.  The bounded model checker uses this to branch execution
        at a chosen step without threading a schedule through a supply.
        """
        self._power_failure()

    def _power_failure(self) -> None:
        mode = self.mode
        if mode == "jit":
            # JIT-LowPower: the ISR checkpoints volatile state from reserve.
            words = stack_words(self._frames)
            ckpt_cycles = self._costs.checkpoint_cycles(words)
            self._supply.checkpoint_energy(self._costs.energy(ckpt_cycles))
            self.tau += ckpt_cycles
            self.stats.cycles_on += ckpt_cycles
            self._jit_ctx = JitContext(frames=copy_stack(self._frames))
            self.stats.jit_checkpoints += 1
            self._emit(obs.CheckpointObs(tau=self.tau, saved_words=words))
        self._emit(obs.PowerFailObs(tau=self.tau, mode=mode))
        self._reboot()

    def _reboot(self) -> None:
        off = self._supply.off_and_recharge()
        self.tau += off
        self.stats.cycles_off += off
        self.stats.reboots += 1
        self.nv.bits.clear()  # the detector's power-failure reset
        # Hoisted/anchored query results are volatile: stale missing-sets
        # must never survive a reboot (consumers fall back to a direct
        # scan, which keeps optimized traces bit-exact).
        self._hoist_cache.clear()

        restore_cycles = self._costs.restore
        self.tau += restore_cycles
        self.stats.cycles_on += restore_cycles

        if self._atom_ctx is not None:
            # Atom-Reboot: N <| L, restore region-entry volatile state.
            ctx = self._atom_ctx
            for name, value in ctx.undo_globals.items():
                self.nv.globals[name] = value
            for name, values in ctx.undo_arrays.items():
                self.nv.arrays[name] = list(values)
            self._frames = copy_stack(ctx.frames)
            ctx.natom = 0
            self.stats.region_restarts += 1
            if self.stats.region_restarts > self._config.max_region_restarts:
                raise ExecError(
                    f"atomic region '{ctx.region}' cannot complete within the "
                    "energy budget (region too large, Section 5.3)"
                )
        elif self._jit_ctx is not None:
            # JIT-Reboot: resume from the checkpoint.
            self._frames = copy_stack(self._jit_ctx.frames)
        else:
            # Statically initialized context: restart the program.
            self._restart_main()
        self._emit(obs.RebootObs(tau=self.tau, off_cycles=off, mode=self.mode))

    # -- memory helpers ---------------------------------------------------------

    def _deref(self, cell: Cell) -> TVal:
        seen = 0
        while isinstance(cell, RefValue):
            seen += 1
            if seen > len(self._frames) + 1:
                raise ExecError("reference cycle")
            cell = self._frames[cell.depth].locals[cell.name]
        return cell

    def _write_global(self, name: str, value: TVal) -> None:
        if name not in self.nv.globals:
            raise ExecError(f"write to undeclared global '{name}'")
        self._assert_logged(name)
        self.nv.globals[name] = value

    def _assert_logged(self, name: str) -> None:
        """In a region, every NV write target must be in the undo log.

        This is the runtime guard for the WAR/EMW analysis: if the static
        omega set missed a written location, idempotent re-execution would
        silently break, so fail loudly instead.
        """
        ctx = self._atom_ctx
        if ctx is None:
            return
        if name not in ctx.undo_globals and name not in ctx.undo_arrays:
            raise ExecError(
                f"nonvolatile '{name}' written inside region '{ctx.region}' "
                "but absent from its omega set (WAR/EMW analysis bug)"
            )

    def _emit(self, event: obs.Obs) -> None:
        if self._config.emit_observations:
            self.trace.emit(event)

    # -- detector check execution -------------------------------------------------

    def _run_site_actions(self, uid: ir.InstrId, actions) -> None:
        """Execute one trigger site's detector actions (both engines).

        Runs the (possibly optimized) per-site check program: hoisted
        queries populate the volatile cache, then the check ops emit
        their observations in baseline order -- FULL ops scan the bit
        vector (once per op, or once per site when fused), MARKER ops
        emit only the unconditional ``use`` observation, and CONSUME ops
        derive their missing-set from a cached dominating query, falling
        back to a direct scan when the cache was cleared by a reboot.
        ``detector_queries`` counts bit-vector scans -- the
        ``checks_executed`` metric the benchmarks gate on.
        """
        bits = self.nv.bits.bits
        tau = self.tau
        cache = self._hoist_cache
        for hoist in actions.hoists:
            cache[hoist.hid] = frozenset(
                c for c in hoist.required if c not in bits
            )
            self.detector_queries += 1
        fused = actions.fused
        fused_missing: Optional[frozenset] = None
        if fused is not None:
            fused_missing = frozenset(c for c in fused if c not in bits)
            self.detector_queries += 1
        for op in actions.ops:
            check = op.check
            if check.kind == "fresh":
                self._emit(obs.UseObs(tau=tau, uid=uid, pid=check.pid))
            mode = op.mode
            if mode == OP_MARKER:
                continue
            if mode == OP_CONSUME:
                cached = cache.get(op.hid)
                if cached is None:
                    missing = tuple(
                        c for c in check.required if c not in bits
                    )
                    self.detector_queries += 1
                else:
                    missing = tuple(
                        c for c in check.required if c in cached
                    )
            elif fused_missing is not None:
                missing = tuple(
                    c for c in check.required if c in fused_missing
                )
                if op.hid >= 0:
                    cache[op.hid] = frozenset(missing)
            else:
                missing = tuple(c for c in check.required if c not in bits)
                self.detector_queries += 1
                if op.hid >= 0:
                    cache[op.hid] = frozenset(missing)
            if missing:
                self._emit(
                    obs.ViolationObs(
                        tau=tau,
                        uid=uid,
                        pid=check.pid,
                        kind=check.kind,
                        missing=missing,
                    )
                )


class Machine(MachineCore):
    """One intermittent (or continuous) execution of ``main``.

    The machine is restartable: :meth:`run` executes one activation of
    ``main`` to completion; nonvolatile state passed in survives for the
    next activation (the Table 2b repeated-run experiments share one
    :class:`NVState` and one supply across activations).
    """

    def __init__(
        self,
        module: Module,
        env: Environment,
        supply: Optional[PowerSupply] = None,
        costs: CostModel = DEFAULT_COSTS,
        plan: Optional[DetectorPlan] = None,
        nv: Optional[NVState] = None,
        config: Optional[MachineConfig] = None,
        start_tau: int = 0,
    ):
        self._module = module
        self._env = env
        self._supply = supply or ContinuousPower()
        self._costs = costs
        self._plan = plan or DetectorPlan()
        self._bit_uids = frozenset(chain.op for chain in self._plan.bit_chains)
        self._actions = self._plan.runtime_actions()
        watched = getattr(supply, "watched_uids", None)
        self._watched_uids: frozenset = watched() if watched else frozenset()
        self.nv = nv or NVState.initial(module)
        self._config = config or MachineConfig()

        self.tau = start_tau
        self.trace = obs.Trace()
        self.stats = obs.RunStats()
        #: bit-vector scans performed (the `checks_executed` metric);
        #: deliberately outside RunStats so optimized builds stay
        #: stat-identical to their baselines while executing fewer checks
        self.detector_queries = 0
        self._hoist_cache: dict[int, frozenset] = {}
        self._frames: list[Frame] = []
        self._jit_ctx: Optional[JitContext] = None
        self._atom_ctx: Optional[AtomContext] = None
        self._ret_value: Optional[TVal] = None
        self._done = False
        self._restart_main()

    def _restart_main(self) -> None:
        entry = self._module.function(self._module.entry)
        self._frames = [
            Frame(func=entry.name, block=entry.entry, idx=0, locals={})
        ]

    # -- top-level drivers -------------------------------------------------------

    def run(self) -> obs.RunResult:
        """Execute one activation of ``main`` to completion (or give up)."""
        wall = _tracer()
        if wall is not None:
            with wall.span("activation", "engine", engine="reference"):
                return self._run_to_completion()
        return self._run_to_completion()

    def _run_to_completion(self) -> obs.RunResult:
        start_cycles = self.stats.total_cycles
        while not self._done:
            if self.stats.total_cycles - start_cycles > self._config.max_cycles:
                break
            self.step()
        self.stats.completed = self._done
        self.stats.violations = len(self.trace.violations)
        ret = self._ret_value.value if self._ret_value is not None else None
        return obs.RunResult(
            trace=self.trace,
            stats=self.stats,
            ret=ret,
            detector_queries=self.detector_queries,
        )

    # -- fetch/execute loop ---------------------------------------------------------

    def _current_frame(self) -> Frame:
        return self._frames[-1]

    def _fetch(self) -> ir.Instr:
        frame = self._current_frame()
        block = self._module.function(frame.func).block(frame.block)
        if frame.idx < len(block.instrs):
            return block.instrs[frame.idx]
        assert block.terminator is not None
        return block.terminator

    def step(self) -> None:
        """One machine step: possibly fail, else execute one instruction."""
        if self._done:
            return
        instr = self._fetch()

        chain = (
            self._current_chain(instr.uid)
            if instr.uid in self._watched_uids
            else None
        )
        if self._supply.fail_before(instr.uid, chain):
            self._power_failure()
            return

        # The comparator is asynchronous: if this instruction's energy
        # would cross the trip point mid-flight, take the interrupt first
        # so the checkpoint reserve is never consumed by execution.
        # ``work`` amounts are pure expressions, so one evaluation serves
        # both the estimate and the execution below.
        work_value: Optional[int] = None
        if isinstance(instr, ir.WorkInstr):
            work_value = self.eval(instr.cycles).value
        estimate = self._estimate_cycles(instr, work_value)
        if self._supply.would_trip(self._costs.energy(estimate)):
            self._power_failure()
            return

        self._run_detector_checks(instr.uid)

        cycles = self._execute(instr, work_value)
        self.tau += cycles
        self.stats.cycles_on += cycles
        self.stats.instructions += 1

        if self._done:
            return
        if self._supply.consume(self._costs.energy(cycles)):
            self._power_failure()

    def _estimate_cycles(
        self, instr: ir.Instr, work_value: Optional[int] = None
    ) -> int:
        """Upper-ish estimate of the cycles ``instr`` is about to cost.

        ``work`` amounts are pure expressions, so :meth:`step` evaluates
        them once ahead of execution and passes the value in; region
        entries estimate their volatile save plus undo log from the
        current stack and the static omega set.
        """
        if isinstance(instr, ir.WorkInstr):
            return self._costs.instr_cycles(instr, work_value=work_value or 0)
        if isinstance(instr, ir.AtomicStart) and self._atom_ctx is None:
            omega_words = 0
            for name in instr.omega:
                if name in self.nv.arrays:
                    omega_words += len(self.nv.arrays[name])
                else:
                    omega_words += 1
            return self._costs.region_entry_cycles(
                stack_words(self._frames), omega_words
            )
        return self._costs.instr_cycles(instr)

    # -- detector ---------------------------------------------------------------------

    def _current_chain(self, uid: ir.InstrId) -> Chain:
        """The provenance chain of the instruction about to execute."""
        sites = tuple(
            frame.call_uid
            for frame in self._frames[1:]
            if frame.call_uid is not None
        )
        return Chain(ids=sites + (uid,))

    def _run_detector_checks(self, uid: ir.InstrId) -> None:
        if uid not in self._plan.trigger_uids:
            return
        actions = self._actions.get(self._current_chain(uid))
        if actions is not None:
            self._run_site_actions(uid, actions)

    # -- expression evaluation -----------------------------------------------------------

    def _read_var(self, frame: Frame, name: str) -> TVal:
        if name in frame.locals:
            return self._deref(frame.locals[name])
        if name in self.nv.globals:
            return self.nv.globals[name]
        raise ExecError(f"read of unbound variable '{name}' in {frame.func}")

    def eval(self, expr: lang_ast.Expr) -> TVal:
        frame = self._current_frame()
        return self._eval_in(frame, expr)

    def _eval_in(self, frame: Frame, expr: lang_ast.Expr) -> TVal:
        if isinstance(expr, lang_ast.IntLit):
            return TVal.of(expr.value)
        if isinstance(expr, lang_ast.BoolLit):
            return TVal.of(expr.value)
        if isinstance(expr, lang_ast.Var):
            return self._read_var(frame, expr.name)
        if isinstance(expr, lang_ast.Index):
            index = self._eval_in(frame, expr.index)
            try:
                array = self.nv.arrays[expr.array]
            except KeyError:
                raise ExecError(f"unknown array '{expr.array}'") from None
            if not 0 <= index.value < len(array):
                raise ExecError(
                    f"index {index.value} out of bounds for "
                    f"{expr.array}[{len(array)}]"
                )
            element = array[index.value]
            return TVal(element.value, merge_taint(element.taint, index.taint))
        if isinstance(expr, lang_ast.Unary):
            operand = self._eval_in(frame, expr.operand)
            if expr.op == "-":
                return TVal(-operand.value, operand.taint)
            if expr.op == "!":
                return TVal(int(not operand.value), operand.taint)
            raise ExecError(f"unknown unary operator {expr.op}")
        if isinstance(expr, lang_ast.Binary):
            lhs = self._eval_in(frame, expr.lhs)
            rhs = self._eval_in(frame, expr.rhs)
            value = _binop(expr.op, lhs.value, rhs.value)
            return TVal(value, merge_taint(lhs.taint, rhs.taint))
        if isinstance(expr, lang_ast.Call):
            args = [self._eval_in(frame, a) for a in expr.args]
            taint = merge_taint(*(a.taint for a in args))
            if expr.func == "abs":
                return TVal(abs(args[0].value), taint)
            if expr.func == "min":
                return TVal(min(args[0].value, args[1].value), taint)
            if expr.func == "max":
                return TVal(max(args[0].value, args[1].value), taint)
            raise ExecError(f"cannot evaluate call to '{expr.func}' in expression")
        raise ExecError(f"cannot evaluate {type(expr).__name__}")

    # -- instruction execution ------------------------------------------------------------

    def _execute(self, instr: ir.Instr, work_value: Optional[int] = None) -> int:
        """Execute ``instr``; return its cycle cost.

        ``work_value`` is the pre-evaluated ``work`` amount from
        :meth:`step` (the cycle expression is pure, so evaluating it once
        for the energy estimate suffices).
        """
        frame = self._current_frame()
        cycles = self._costs.instr_cycles(instr)

        if isinstance(instr, ir.Terminator):
            return self._execute_terminator(frame, instr, cycles)

        frame.idx += 1  # advance first so snapshots point past this instr

        if isinstance(instr, ir.Assign):
            value = self.eval(instr.expr)
            if instr.scope == ir.SCOPE_GLOBAL:
                self._write_global(instr.dest, value)
            else:
                self._write_local(frame, instr.dest, value)
        elif isinstance(instr, ir.InputInstr):
            raw = self._env.read(instr.channel, self.tau)
            event = InputEvent(uid=instr.uid, channel=instr.channel, tau=self.tau)
            frame.locals[instr.dest] = TVal(raw, frozenset({event}))
            if instr.uid in self._bit_uids:
                self.nv.bits.set(self._current_chain(instr.uid))
            self._emit(
                obs.InputObs(
                    tau=self.tau, uid=instr.uid, channel=instr.channel, value=raw
                )
            )
        elif isinstance(instr, ir.CallInstr):
            self._exec_call(frame, instr)
        elif isinstance(instr, ir.StoreRefInstr):
            value = self.eval(instr.expr)
            cell = frame.locals.get(instr.param)
            if not isinstance(cell, RefValue):
                raise ExecError(f"*{instr.param} is not a reference")
            self._frames[cell.depth].locals[cell.name] = value
        elif isinstance(instr, ir.StoreArr):
            index = self.eval(instr.index)
            value = self.eval(instr.expr)
            array = self.nv.arrays.get(instr.array)
            if array is None:
                raise ExecError(f"unknown array '{instr.array}'")
            if not 0 <= index.value < len(array):
                raise ExecError(
                    f"index {index.value} out of bounds for "
                    f"{instr.array}[{len(array)}]"
                )
            self._assert_logged(instr.array)
            array[index.value] = TVal(
                value.value, merge_taint(value.taint, index.taint)
            )
        elif isinstance(instr, ir.AnnotInstr):
            self._exec_annot(frame, instr)
        elif isinstance(instr, ir.AtomicStart):
            cycles += self._exec_atomic_start(instr)
        elif isinstance(instr, ir.AtomicEnd):
            cycles += self._exec_atomic_end(instr)
        elif isinstance(instr, ir.OutputInstr):
            values = tuple(self.eval(a).value for a in instr.args)
            self._emit(
                obs.OutputObs(tau=self.tau, uid=instr.uid, op=instr.op, values=values)
            )
        elif isinstance(instr, ir.WorkInstr):
            amount = (
                work_value
                if work_value is not None
                else self.eval(instr.cycles).value
            )
            cycles = self._costs.instr_cycles(instr, work_value=amount)
        elif isinstance(instr, ir.SkipInstr):
            pass
        else:
            raise ExecError(f"cannot execute {type(instr).__name__}")
        return cycles

    def _execute_terminator(
        self, frame: Frame, instr: ir.Terminator, cycles: int
    ) -> int:
        if isinstance(instr, ir.Jump):
            frame.block = instr.target
            frame.idx = 0
        elif isinstance(instr, ir.Branch):
            cond = self.eval(instr.cond)
            frame.block = instr.true_target if cond.as_bool else instr.false_target
            frame.idx = 0
        elif isinstance(instr, ir.RetInstr):
            value = self.eval(instr.expr) if instr.expr is not None else None
            self._frames.pop()
            if not self._frames:
                self._done = True
                self._ret_value = value
            elif frame.ret_dest is not None:
                if value is None:
                    value = TVal.of(0)
                self._frames[-1].locals[frame.ret_dest] = value
        else:
            raise ExecError(f"unknown terminator {type(instr).__name__}")
        return cycles

    def _exec_call(self, frame: Frame, instr: ir.CallInstr) -> None:
        callee = self._module.function(instr.func)
        locals_: dict[str, Cell] = {}
        depth = len(self._frames) - 1  # caller's index in the stack
        for param, arg in zip(callee.params, instr.args, strict=True):
            if isinstance(arg, ir.RefArg):
                cell = frame.locals.get(arg.name)
                locals_[param.name] = (
                    cell  # forward the reference
                    if isinstance(cell, RefValue)
                    else RefValue(depth=depth, name=arg.name)
                )
            else:
                locals_[param.name] = self.eval(arg)
        self._frames.append(
            Frame(
                func=callee.name,
                block=callee.entry,
                idx=0,
                locals=locals_,
                ret_dest=instr.dest,
                call_uid=instr.uid,
            )
        )

    def _exec_annot(self, frame: Frame, instr: ir.AnnotInstr) -> None:
        value = self._read_var(frame, instr.var)
        if instr.kind == lang_ast.AnnotKind.FRESH:
            self._emit(
                obs.FreshDeclObs(
                    tau=self.tau,
                    uid=instr.uid,
                    pid=fresh_pid(instr.uid),
                    inputs=value.taint,
                )
            )
        else:
            assert instr.set_id is not None
            self._emit(
                obs.ConsistentDeclObs(
                    tau=self.tau,
                    uid=instr.uid,
                    pid=consistent_pid(instr.set_id),
                    set_id=instr.set_id,
                    inputs=value.taint,
                )
            )

    # -- atomic regions ----------------------------------------------------------------------

    def _exec_atomic_start(self, instr: ir.AtomicStart) -> int:
        if self._atom_ctx is not None:
            # Atom-Start-Inner: nested/overlapping start is bookkeeping only.
            self._atom_ctx.natom += 1
            return self._costs.region_inner
        undo_globals = {
            name: self.nv.globals[name]
            for name in instr.omega
            if name in self.nv.globals
        }
        undo_arrays = {
            name: list(self.nv.arrays[name])
            for name in instr.omega
            if name in self.nv.arrays
        }
        self._atom_ctx = AtomContext(
            region=instr.region,
            frames=copy_stack(self._frames),
            undo_globals=undo_globals,
            undo_arrays=undo_arrays,
            omega=instr.omega,
        )
        words = stack_words(self._frames)
        omega_words = len(undo_globals) + sum(
            len(v) for v in undo_arrays.values()
        )
        self.stats.region_entries += 1
        self._emit(obs.RegionEnterObs(tau=self.tau, uid=instr.uid, region=instr.region))
        return self._costs.region_entry_cycles(words, omega_words)

    def _exec_atomic_end(self, instr: ir.AtomicEnd) -> int:
        ctx = self._atom_ctx
        if ctx is None:
            return 0  # stray end outside any region: no-op (flattening)
        if ctx.natom > 0:
            # Atom-End-Inner.
            ctx.natom -= 1
            return self._costs.region_inner
        # Atom-End-Outer: commit; effects become visible.
        self._atom_ctx = None
        self.stats.region_commits += 1
        self._emit(obs.RegionExitObs(tau=self.tau, uid=instr.uid, region=ctx.region))
        return self._costs.region_commit

    # -- nonvolatile writes ----------------------------------------------------------------------

    def _write_local(self, frame: Frame, name: str, value: TVal) -> None:
        cell = frame.locals.get(name)
        if isinstance(cell, RefValue):
            raise ExecError(f"assignment to reference parameter '{name}'")
        frame.locals[name] = value


def _trunc_div(lhs: int, rhs: int) -> int:
    """C-style truncating division; division by zero yields 0 (MCU guard)."""
    if rhs == 0:
        return 0
    quotient = abs(lhs) // abs(rhs)
    return quotient if (lhs < 0) == (rhs < 0) else -quotient


def _binop(op: str, lhs: int, rhs: int) -> int:
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        return _trunc_div(lhs, rhs)
    if op == "%":
        return 0 if rhs == 0 else lhs - rhs * _trunc_div(lhs, rhs)
    if op == "<":
        return int(lhs < rhs)
    if op == "<=":
        return int(lhs <= rhs)
    if op == ">":
        return int(lhs > rhs)
    if op == ">=":
        return int(lhs >= rhs)
    if op == "==":
        return int(lhs == rhs)
    if op == "!=":
        return int(lhs != rhs)
    if op == "&&":
        return int(bool(lhs) and bool(rhs))
    if op == "||":
        return int(bool(lhs) or bool(rhs))
    raise ExecError(f"unknown operator '{op}'")
