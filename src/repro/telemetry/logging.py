"""Logging setup for the CLI and library users.

Status output (tables, "report written to ..." lines, histograms) used
to go through bare ``print(..., file=sys.stderr)``; it now flows
through a stdlib :mod:`logging` logger under the ``repro`` namespace so
library users can silence or capture it, and the CLI grows
``--verbose/--quiet`` flags.

:func:`configure` rebinds the handler to the *current* ``sys.stderr``
on every call, so stream-capturing test harnesses (pytest's capsys)
see the output without any special-casing.
"""

from __future__ import annotations

import logging
import sys

#: Root of the package logger namespace.
ROOT_LOGGER = "repro"

#: Marker attribute so reconfiguration replaces only our handler.
_HANDLER_TAG = "_repro_telemetry_handler"


def get_logger(name: str | None = None) -> logging.Logger:
    """Logger under the ``repro`` namespace (``repro`` itself if bare)."""
    if name is None or name == ROOT_LOGGER:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(f"{ROOT_LOGGER}."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure(verbosity: int = 0, stream=None) -> logging.Logger:
    """Install a plain-message stderr handler on the ``repro`` logger.

    ``verbosity`` < 0 -> WARNING (``--quiet``), 0 -> INFO (default,
    preserves the CLI's historical stderr output), > 0 -> DEBUG
    (``--verbose``).  Idempotent: calling again replaces the handler
    and rebinds it to the current ``sys.stderr``.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    if verbosity < 0:
        logger.setLevel(logging.WARNING)
    elif verbosity == 0:
        logger.setLevel(logging.INFO)
    else:
        logger.setLevel(logging.DEBUG)
    logger.propagate = False
    return logger
