"""Violation forensics: *why* did a freshness/consistency check fire?

The paper's contribution is identifying stale and inconsistent input
chains; the detector already knows exactly which input operations had
clear bits when a check fired (``ViolationObs.missing``), the policy
declarations carry the context-qualified provenance chains
(:class:`~repro.analysis.provenance.Chain`) of every input the policy
window covers, and the declaration observations carry the concrete
taint -- ``InputEvent(uid, channel, tau)`` -- of the values involved.
This module joins the three into a causal report:

* which sensor reads (channel + tau) fed the violated declaration,
* which of them went *missing* (their detector bits were cleared by a
  reboot before the check), how stale they were, and how many reboots
  intervened,
* through which derivation call sites (the provenance chain) each
  missing input reached the policy,
* which policy window (declaration site, kind, consistent-set) was
  violated.

Rendered by ``python -m repro explain TARGET`` and attached to
verifier counterexamples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.runtime import observations as obs


@dataclass(frozen=True)
class MissingInput:
    """One input operation whose detector bit was clear at check time."""

    uid: str  # the input instruction (f, l)
    channel: str | None  # sampled channel, if witnessed in the trace
    read_tau: int | None  # when it was last read before the violation
    staleness: int | None  # violation tau - read tau
    reboots_between: int | None  # power cycles between read and check
    chains: tuple[str, ...]  # derivation call paths reaching the policy

    def to_dict(self) -> dict:
        return {
            "uid": self.uid,
            "channel": self.channel,
            "read_tau": self.read_tau,
            "staleness": self.staleness,
            "reboots_between": self.reboots_between,
            "chains": list(self.chains),
        }


@dataclass(frozen=True)
class WitnessInput:
    """A concrete sensor read that fed the violated declaration."""

    uid: str
    channel: str
    tau: int

    def to_dict(self) -> dict:
        return {"uid": self.uid, "channel": self.channel, "tau": self.tau}


@dataclass
class ViolationReport:
    """Causal record for one detector firing."""

    tau: int
    site: str  # check site (f, l)
    pid: str
    kind: str  # 'fresh' or 'consistent'
    decl_site: str | None = None  # policy declaration site (f, l)
    decl_tau: int | None = None  # when the declaration executed
    set_id: int | None = None  # consistent-set id, if kind=consistent
    window_channels: tuple[str, ...] = ()
    witnesses: list[WitnessInput] = field(default_factory=list)
    missing: list[MissingInput] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "tau": self.tau,
            "site": self.site,
            "pid": self.pid,
            "kind": self.kind,
            "decl_site": self.decl_site,
            "decl_tau": self.decl_tau,
            "set_id": self.set_id,
            "window_channels": list(self.window_channels),
            "witnesses": [w.to_dict() for w in self.witnesses],
            "missing": [m.to_dict() for m in self.missing],
        }

    def render_text(self) -> str:
        lines = [f"violation [tau={self.tau}] {self.kind} {self.pid} at {self.site}"]
        window = (
            f"declared at {self.decl_site}"
            if self.decl_site is not None
            else "declaration not witnessed in trace"
        )
        if self.decl_tau is not None:
            window += f" (decl tau {self.decl_tau})"
        if self.set_id is not None:
            window += f", consistent set {self.set_id}"
        lines.append(f"  policy window : {window}")
        if self.window_channels:
            lines.append(
                "  channels      : " + ", ".join(self.window_channels)
            )
        for miss in self.missing:
            what = f"input {miss.uid}"
            if miss.channel is not None:
                what = f"{miss.channel} {miss.uid}"
            if miss.read_tau is not None:
                what += f" read at tau {miss.read_tau}"
                if miss.staleness is not None:
                    what += f", stale by {miss.staleness} cycles"
                if miss.reboots_between:
                    plural = "s" if miss.reboots_between != 1 else ""
                    what += f" across {miss.reboots_between} reboot{plural}"
            else:
                what += " (read not witnessed in trace)"
            lines.append(f"  caused by     : {what}")
            for chain in miss.chains:
                lines.append(f"    via chain   : {chain}")
        survivors = [
            w for w in self.witnesses
            if all(w.uid != m.uid for m in self.missing)
        ]
        for witness in survivors:
            lines.append(
                f"  still fresh   : {witness.channel} {witness.uid} "
                f"read at tau {witness.tau}"
            )
        return "\n".join(lines)


def _policy_info(policies, pid: str):
    """(policy, decl sites, chains-by-op) for ``pid``; Nones if unknown."""
    if policies is None:
        return None, (), {}
    try:
        policy = policies.get(pid)
    except KeyError:
        return None, (), {}
    decl_sites = (
        (policy.decl,)
        if policy.kind == "fresh"
        else tuple(sorted(policy.decls, key=lambda u: (u.func, u.label)))
    )
    chains_by_op: dict = {}
    for chain in policy.inputs:
        chains_by_op.setdefault(chain.op, []).append(chain)
    return policy, decl_sites, chains_by_op


def explain_events(
    events: Sequence[obs.Obs], policies=None
) -> list[ViolationReport]:
    """Build a :class:`ViolationReport` for every violation in ``events``.

    ``events`` is a flat, emission-ordered observation sequence (one
    trace, or several activations' traces concatenated).  ``policies``
    is the compiled program's ``PolicyDecls`` (optional -- without it
    the report still names sites and taus, just not provenance chains).
    """
    reports: list[ViolationReport] = []
    for index, event in enumerate(events):
        if not isinstance(event, obs.ViolationObs):
            continue
        policy, decl_sites, chains_by_op = _policy_info(policies, event.pid)

        # Latest matching declaration before the check: its taint is the
        # concrete set of sensor reads in the violated window.
        decl = None
        for prior in reversed(events[:index]):
            if (
                isinstance(prior, (obs.FreshDeclObs, obs.ConsistentDeclObs))
                and prior.pid == event.pid
            ):
                decl = prior
                break

        witnesses = []
        reads_by_uid: dict = {}
        if decl is not None:
            for read in sorted(
                decl.inputs, key=lambda e: (e.tau, e.channel, str(e.uid))
            ):
                witnesses.append(
                    WitnessInput(
                        uid=str(read.uid), channel=read.channel, tau=read.tau
                    )
                )
                prev = reads_by_uid.get(read.uid)
                if prev is None or read.tau > prev.tau:
                    reads_by_uid[read.uid] = read

        missing = []
        for item in event.missing:
            # The detector's missing set holds context-qualified Chains;
            # the chain's terminal op is the input instruction the
            # declaration taint records.  (Plain InstrIds also work, with
            # the derivation path recovered from the policy.)
            uid = getattr(item, "op", item)
            if hasattr(item, "ids"):
                chains = (" -> ".join(str(i) for i in item.ids),)
            else:
                derived = chains_by_op.get(item, ())
                chains = tuple(
                    sorted(
                        " -> ".join(str(i) for i in chain.ids)
                        for chain in derived
                    )
                )
            read = reads_by_uid.get(uid)
            reboots = None
            if read is not None:
                reboots = sum(
                    1
                    for prior in events[:index]
                    if isinstance(prior, obs.RebootObs)
                    and read.tau < prior.tau <= event.tau
                )
            missing.append(
                MissingInput(
                    uid=str(uid),
                    channel=read.channel if read is not None else None,
                    read_tau=read.tau if read is not None else None,
                    staleness=(
                        event.tau - read.tau if read is not None else None
                    ),
                    reboots_between=reboots,
                    chains=chains,
                )
            )

        window_channels: tuple[str, ...] = ()
        if witnesses:
            window_channels = tuple(sorted({w.channel for w in witnesses}))

        reports.append(
            ViolationReport(
                tau=event.tau,
                site=str(event.uid),
                pid=event.pid,
                kind=event.kind,
                decl_site=str(decl_sites[0]) if decl_sites else (
                    str(decl.uid) if decl is not None else None
                ),
                decl_tau=decl.tau if decl is not None else None,
                set_id=getattr(policy, "set_id", None),
                window_channels=window_channels,
                witnesses=witnesses,
                missing=missing,
            )
        )
    return reports


def explain_traces(
    traces: Iterable[obs.Trace], policies=None
) -> list[ViolationReport]:
    """Concatenate per-activation traces and explain every violation."""
    events: list[obs.Obs] = []
    for trace in traces:
        events.extend(trace.events)
    return explain_events(events, policies)


def render_reports(reports: Sequence[ViolationReport]) -> str:
    if not reports:
        return "no violations: nothing to explain"
    return "\n\n".join(report.render_text() for report in reports)
