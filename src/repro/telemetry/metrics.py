"""Process-wide metrics registry: counters, gauges, histograms.

One registry (:data:`METRICS`) absorbs the counters that previously
lived in per-module report dicts -- pass timings from ``core/passes``,
``detector_queries`` from the machines, memo hit/miss/entries from
``fleet.vector``, frontier/prune/dedup stats from ``verify.explorer``,
campaign compile-cache hits -- and serializes them behind one JSON
schema (``repro-metrics-1``) shared by the ``--metrics-out`` flag on
the run/fleet/campaign/verify CLIs and by the ``benchmarks/bench_*.py``
scripts.

Design constraints:

* **Zero hot-path cost.**  Nothing in the engines or executors calls
  into the registry per instruction; producers keep their own plain
  ``int`` counters and the CLI/bench layer *absorbs* them after the
  fact via the ``absorb_*`` helpers below.
* **Deterministic serialization.**  ``to_dict`` sorts every name so
  the JSON is byte-stable for identical measurements.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

#: Version tag embedded in every metrics JSON document.
METRICS_SCHEMA = "repro-metrics-1"


@dataclass
class Counter:
    """A monotonically increasing integer."""

    value: int = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Streaming summary of observed samples (no buckets kept)."""

    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        if self.count == 0:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named counters/gauges/histograms with create-on-first-use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- access -----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            metric = self._counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            metric = self._gauges[name] = Gauge()
            return metric

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            metric = self._histograms[name] = Histogram()
            return metric

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a block into ``histogram(name)`` (seconds)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name).observe(time.perf_counter() - started)

    def seconds(self, name: str) -> float:
        """Total seconds recorded under histogram ``name`` (0.0 if unset)."""
        hist = self._histograms.get(name)
        return hist.total if hist is not None else 0.0

    # -- lifecycle --------------------------------------------------------

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- serialization ----------------------------------------------------

    def to_dict(self, *, command: str | None = None) -> dict:
        doc: dict = {
            "schema": METRICS_SCHEMA,
            "counters": {
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: metric.to_dict()
                for name, metric in sorted(self._histograms.items())
            },
        }
        if command is not None:
            doc["command"] = command
        return doc

    def to_json(self, *, command: str | None = None) -> str:
        return json.dumps(self.to_dict(command=command), indent=2, sort_keys=True)

    def write(self, path: str | Path, *, command: str | None = None) -> None:
        Path(path).write_text(self.to_json(command=command) + "\n")


#: The process-wide registry used by the CLI and the bench scripts.
METRICS = MetricsRegistry()


# -- absorbers: fold subsystem report dicts into a registry ---------------


def absorb_pass_timings(registry: MetricsRegistry, compiled) -> None:
    """Record per-stage compile timings from a ``CompiledProgram``."""
    for timing in getattr(compiled, "timings", ()) or ():
        registry.counter("compile.passes").inc()
        registry.histogram("compile.pass_seconds").observe(timing.seconds)
        registry.gauge(f"compile.pass.{timing.stage}.seconds").set(timing.seconds)


def absorb_run(registry: MetricsRegistry, result) -> None:
    """Record one ``RunResult`` (single activation) into the registry."""
    stats = result.stats
    registry.counter("run.activations").inc()
    registry.counter("run.instructions").inc(stats.instructions)
    registry.counter("run.cycles_on").inc(stats.cycles_on)
    registry.counter("run.cycles_off").inc(stats.cycles_off)
    registry.counter("run.jit_checkpoints").inc(stats.jit_checkpoints)
    registry.counter("run.region_entries").inc(stats.region_entries)
    registry.counter("run.region_commits").inc(stats.region_commits)
    registry.counter("run.region_restarts").inc(stats.region_restarts)
    registry.counter("run.reboots").inc(stats.reboots)
    registry.counter("run.violations").inc(stats.violations)
    registry.counter("run.detector_queries").inc(result.detector_queries)
    if stats.completed:
        registry.counter("run.completed").inc()


def absorb_replay(registry: MetricsRegistry, result) -> None:
    """Record a schedule ``ReplayResult`` into the registry."""
    registry.counter("run.activations").inc(result.activations)
    registry.counter("run.violations").inc(len(result.violations))
    if result.completed:
        registry.counter("run.completed").inc()


def absorb_fleet(registry: MetricsRegistry, result) -> None:
    """Record a ``FleetResult`` (aggregate + memo + wall time)."""
    classes = result.aggregate.to_dict().get("classes", {})
    for payload in classes.values():
        for key in (
            "devices",
            "stuck_devices",
            "activations",
            "completed_runs",
            "violating_runs",
            "violations",
            "fresh_violations",
            "consistent_violations",
            "detector_queries",
            "cycles_on",
            "cycles_off",
            "reboots",
        ):
            if key in payload:
                registry.counter(f"fleet.{key}").inc(int(payload[key]))
    memo = getattr(result, "memo", None)
    if memo:
        for key in ("hits", "misses", "evictions", "disk_loads", "entries"):
            if key in memo:
                registry.counter(f"fleet.memo.{key}").inc(int(memo[key]))
        if "hit_rate" in memo:
            registry.gauge("fleet.memo.hit_rate").set(memo["hit_rate"])
    registry.histogram("fleet.wall_seconds").observe(result.wall_time)


def absorb_campaign(registry: MetricsRegistry, result) -> None:
    """Record a ``CampaignResult`` (jobs, compile cache, violations)."""
    registry.counter("campaign.jobs").inc(len(result.jobs))
    registry.counter("campaign.compiles").inc(result.compiles)
    registry.counter("campaign.cache_hits").inc(result.cache_hits)
    registry.histogram("campaign.wall_seconds").observe(result.wall_time)
    for job in result.jobs:
        registry.counter("campaign.activations").inc(job.activations)
        registry.counter("campaign.violations").inc(job.violations)
        registry.counter("campaign.detector_queries").inc(job.detector_queries)
        registry.histogram("campaign.job_seconds").observe(job.wall_time)


def absorb_verify(registry: MetricsRegistry, verdict) -> None:
    """Record an explorer ``Verdict``'s search statistics."""
    for key, value in verdict.stats.to_dict().items():
        registry.counter(f"verify.{key}").inc(int(value))
    registry.gauge("verify.exit_code").set(verdict.exit_code)
