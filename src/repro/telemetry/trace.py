"""Span/event tracing on two clocks: sim-time (tau) and wall-clock.

Two timelines, one export format (Chrome trace event JSON, loadable in
``chrome://tracing`` and Perfetto):

* **Sim-time** events are derived *post hoc* from the observation
  :class:`~repro.runtime.observations.Trace` a run already produces --
  the exporter never touches execution, so the timeline is fully
  deterministic and byte-stable across runs (``ts`` is tau; 1 tau
  renders as 1 microsecond).
* **Wall-clock** spans come from the opt-in :class:`WallTracer`.  When
  tracing is disabled (the default) the module-level handle is ``None``
  and every instrumentation site is a single attribute load + ``is
  None`` test per *activation/batch/job* -- never per instruction --
  so the disabled overhead is unmeasurable by design and gated below
  2% by ``benchmarks/bench_telemetry.py``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Iterable, Iterator, Optional

from repro.runtime import observations as obs

#: Version tag embedded in the exported trace document.
TRACE_SCHEMA = "repro-trace-1"

#: Synthetic pid for the deterministic sim-time timeline.
SIM_PID = 0
#: Synthetic pid for the wall-clock timeline (kept separate so the two
#: clocks never interleave on one track).
WALL_PID = 1


def _taint_summary(taint) -> list[str]:
    """Stable rendering of a Taint (frozenset of InputEvents)."""
    return sorted(str(event) for event in taint)


def _sim_event(
    name: str, cat: str, tau: int, ph: str = "i", **args
) -> dict:
    event = {
        "name": name,
        "cat": cat,
        "ph": ph,
        "ts": tau,
        "pid": SIM_PID,
        "tid": 0,
    }
    if ph == "i":
        event["s"] = "t"  # instant scope: thread
    if args:
        event["args"] = args
    return event


def simtime_events(
    events: Iterable[obs.Obs], *, activation: int | None = None
) -> list[dict]:
    """Map observation events onto Chrome trace events (ts = tau).

    Regions become ``B``/``E`` duration pairs; everything else is an
    instant.  The mapping is pure: input order fixes output order.
    """
    out: list[dict] = []
    extra = {} if activation is None else {"activation": activation}
    for event in events:
        if isinstance(event, obs.InputObs):
            out.append(
                _sim_event(
                    f"in {event.channel}",
                    "input",
                    event.tau,
                    uid=str(event.uid),
                    channel=event.channel,
                    value=event.value,
                    **extra,
                )
            )
        elif isinstance(event, obs.FreshDeclObs):
            out.append(
                _sim_event(
                    f"fresh {event.pid}",
                    "policy",
                    event.tau,
                    uid=str(event.uid),
                    pid=event.pid,
                    inputs=_taint_summary(event.inputs),
                    **extra,
                )
            )
        elif isinstance(event, obs.ConsistentDeclObs):
            out.append(
                _sim_event(
                    f"consistent {event.pid}",
                    "policy",
                    event.tau,
                    uid=str(event.uid),
                    pid=event.pid,
                    set_id=event.set_id,
                    inputs=_taint_summary(event.inputs),
                    **extra,
                )
            )
        elif isinstance(event, obs.UseObs):
            out.append(
                _sim_event(
                    f"use {event.pid}",
                    "use",
                    event.tau,
                    uid=str(event.uid),
                    pid=event.pid,
                    **extra,
                )
            )
        elif isinstance(event, obs.OutputObs):
            out.append(
                _sim_event(
                    event.op,
                    "output",
                    event.tau,
                    uid=str(event.uid),
                    values=list(event.values),
                    **extra,
                )
            )
        elif isinstance(event, obs.RegionEnterObs):
            out.append(
                _sim_event(
                    f"region {event.region}",
                    "region",
                    event.tau,
                    ph="B",
                    uid=str(event.uid),
                    **extra,
                )
            )
        elif isinstance(event, obs.RegionExitObs):
            out.append(
                _sim_event(f"region {event.region}", "region", event.tau, ph="E")
            )
        elif isinstance(event, obs.PowerFailObs):
            out.append(
                _sim_event(
                    "power-fail", "power", event.tau, mode=event.mode, **extra
                )
            )
        elif isinstance(event, obs.RebootObs):
            out.append(
                _sim_event(
                    "reboot",
                    "power",
                    event.tau,
                    off_cycles=event.off_cycles,
                    mode=event.mode,
                    **extra,
                )
            )
        elif isinstance(event, obs.CheckpointObs):
            out.append(
                _sim_event(
                    "checkpoint",
                    "checkpoint",
                    event.tau,
                    saved_words=event.saved_words,
                    **extra,
                )
            )
        elif isinstance(event, obs.ViolationObs):
            out.append(
                _sim_event(
                    f"VIOLATION {event.kind} {event.pid}",
                    "violation",
                    event.tau,
                    uid=str(event.uid),
                    pid=event.pid,
                    kind=event.kind,
                    missing=[str(uid) for uid in event.missing],
                    **extra,
                )
            )
        else:  # future observation kinds degrade to a generic instant
            out.append(
                _sim_event(type(event).__name__, "other", event.tau, **extra)
            )
    return out


def chrome_trace(
    traces: Iterable[obs.Trace] | obs.Trace,
    *,
    source: str = "run",
    wall: Optional["WallTracer"] = None,
) -> dict:
    """Build a Chrome-trace document from one or more observation traces.

    Multiple traces (one per activation) land on the same sim-time track
    tagged with their activation index.  Pass ``wall`` to append the
    wall-clock timeline under its own pid.
    """
    if isinstance(traces, obs.Trace):
        traces = [traces]
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": SIM_PID,
            "tid": 0,
            "args": {"name": "sim-time (tau)"},
        }
    ]
    trace_list = list(traces)
    for index, trace in enumerate(trace_list):
        activation = index if len(trace_list) > 1 else None
        events.extend(simtime_events(trace.events, activation=activation))
    if wall is not None:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": WALL_PID,
                "tid": 0,
                "args": {"name": "wall-clock"},
            }
        )
        events.extend(wall.events)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA, "clock": "tau", "source": source},
    }


def chrome_trace_json(
    traces: Iterable[obs.Trace] | obs.Trace,
    *,
    source: str = "run",
    wall: Optional["WallTracer"] = None,
) -> str:
    """Serialize :func:`chrome_trace` deterministically (sorted keys).

    Without ``wall`` the output is a pure function of the observation
    trace: same seed + spec -> byte-identical JSON.
    """
    return json.dumps(
        chrome_trace(traces, source=source, wall=wall),
        indent=2,
        sort_keys=True,
    )


class WallTracer:
    """Wall-clock span recorder (Chrome trace ``X`` events, us floats)."""

    def __init__(self) -> None:
        self.events: list[dict] = []
        self._t0 = time.perf_counter_ns()

    def _now_us(self) -> float:
        return (time.perf_counter_ns() - self._t0) / 1_000.0

    @contextmanager
    def span(self, name: str, cat: str = "host", **args) -> Iterator[None]:
        started = self._now_us()
        try:
            yield
        finally:
            event = {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": started,
                "dur": self._now_us() - started,
                "pid": WALL_PID,
                "tid": 0,
            }
            if args:
                event["args"] = args
            self.events.append(event)

    def instant(self, name: str, cat: str = "host", **args) -> None:
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": self._now_us(),
            "pid": WALL_PID,
            "tid": 0,
        }
        if args:
            event["args"] = args
        self.events.append(event)


#: The active wall tracer, or None (the default: tracing disabled).
_ACTIVE: Optional[WallTracer] = None


def tracer() -> Optional[WallTracer]:
    """The hot-path check: instrumented sites call this once per unit of
    work and skip all bookkeeping when it returns ``None``."""
    return _ACTIVE


def enable() -> WallTracer:
    global _ACTIVE
    _ACTIVE = WallTracer()
    return _ACTIVE


def disable() -> None:
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def span(name: str, cat: str = "host", **args) -> Iterator[None]:
    """Span on the active tracer; a plain no-op when tracing is off."""
    active = _ACTIVE
    if active is None:
        yield
    else:
        with active.span(name, cat, **args):
            yield
