"""Unified telemetry: tracing, metrics, forensics, logging.

Zero-overhead-when-disabled observability for every subsystem:

* :mod:`repro.telemetry.trace` -- sim-time (tau, deterministic) and
  wall-clock timelines exported as Chrome-trace/Perfetto JSON
  (``python -m repro trace TARGET``).
* :mod:`repro.telemetry.metrics` -- process-wide counters / gauges /
  histograms behind one JSON schema (``--metrics-out`` on the
  run/fleet/campaign/verify CLIs and the bench scripts).
* :mod:`repro.telemetry.forensics` -- causal reports for detector
  firings (``python -m repro explain TARGET``; attached to verifier
  counterexamples).
* :mod:`repro.telemetry.logging` -- stdlib-logging status output with
  ``--verbose/--quiet`` control.
"""

from repro.telemetry.forensics import (
    MissingInput,
    ViolationReport,
    WitnessInput,
    explain_events,
    explain_traces,
    render_reports,
)
from repro.telemetry.logging import configure as configure_logging
from repro.telemetry.logging import get_logger
from repro.telemetry.metrics import (
    METRICS,
    METRICS_SCHEMA,
    MetricsRegistry,
    absorb_campaign,
    absorb_fleet,
    absorb_pass_timings,
    absorb_replay,
    absorb_run,
    absorb_verify,
)
from repro.telemetry.trace import (
    TRACE_SCHEMA,
    WallTracer,
    chrome_trace,
    chrome_trace_json,
    disable as disable_tracing,
    enable as enable_tracing,
    simtime_events,
    span,
    tracer,
)

__all__ = [
    "METRICS",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "MissingInput",
    "TRACE_SCHEMA",
    "ViolationReport",
    "WallTracer",
    "WitnessInput",
    "absorb_campaign",
    "absorb_fleet",
    "absorb_pass_timings",
    "absorb_replay",
    "absorb_run",
    "absorb_verify",
    "chrome_trace",
    "chrome_trace_json",
    "configure_logging",
    "disable_tracing",
    "enable_tracing",
    "explain_events",
    "explain_traces",
    "get_logger",
    "render_reports",
    "simtime_events",
    "span",
    "tracer",
]
