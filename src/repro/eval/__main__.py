"""``python -m repro.eval`` entry point."""

from repro.eval.runner import main

raise SystemExit(main())
