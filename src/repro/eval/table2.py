"""Table 2: correctness of Ocelot vs JIT.

(a) **Pathological injection**: power failures are injected exactly where
they can expose a timing violation -- "immediately before the use of a
fresh variable and between input operations in a consistent set" (Section
7.3).  Every detector check site is one pathological point; a benchmark's
row reports the percentage of injection runs that produced a violation.
Expected: Ocelot 0% everywhere, JIT 100% everywhere.

(b) **Intermittent power**: benchmarks loop on the standard harvesting
profile for a fixed logical-time window; the row reports the percentage of
*complete* runs containing a violation.  Expected: Ocelot 0% everywhere;
JIT rates ordered by how much of each program the constraints span (paper:
Photo 77, Activity/SendPhoto 50, Greenhouse 24, Tire 3, CEM 0).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import BENCHMARKS
from repro.eval.campaign import (
    MODE_INJECTION,
    CampaignSpec,
    EnvironmentSpec,
    Executor,
    SupplySpec,
    cells,
    run_campaign,
)
from repro.eval.profiles import STANDARD_BUDGET_CYCLES, STANDARD_PROFILE, EnergyProfile
from repro.eval.report import Table

#: Paper's Table 2b JIT percentages, for side-by-side reporting.
PAPER_2B_JIT = {
    "activity": 50,
    "cem": 0,
    "greenhouse": 24,
    "photo": 77,
    "send_photo": 50,
    "tire": 3,
}


@dataclass
class Table2aRow:
    app: str
    #: config -> (violating runs, total injection runs)
    results: dict[str, tuple[int, int]]

    def rate(self, config: str) -> float:
        violating, total = self.results[config]
        return 100.0 * violating / total if total else 0.0


def injection_spec(
    configs: tuple[str, ...] = ("ocelot", "jit"),
    off_cycles: int = 25_000,
    seed: int = 0,
) -> CampaignSpec:
    """The Table 2a grid: a failure at every detector check site."""
    return CampaignSpec(
        name="table2a-injection",
        apps=tuple(BENCHMARKS),
        configs=configs,
        environments=(EnvironmentSpec(env_seed=seed),),
        supplies=(SupplySpec.continuous(),),
        seeds=(seed,),
        mode=MODE_INJECTION,
        off_cycles=off_cycles,
    )


def measure_table2a(
    configs: tuple[str, ...] = ("ocelot", "jit"),
    off_cycles: int = 25_000,
    seed: int = 0,
    executor: Executor | str | None = None,
) -> list[Table2aRow]:
    result = run_campaign(injection_spec(configs, off_cycles, seed), executor)
    by_cell = cells(result)
    rows: list[Table2aRow] = []
    for name in BENCHMARKS:
        results: dict[str, tuple[int, int]] = {}
        for config in configs:
            job = by_cell[(name, config)]
            results[config] = (job.injection_violating, job.injection_points)
        rows.append(Table2aRow(app=name, results=results))
    return rows


def table2a(rows: list[Table2aRow] | None = None) -> Table:
    rows = rows if rows is not None else measure_table2a()
    table = Table(
        title="Table 2a: % violating with pathological power-failure points",
        headers=["App", "Ocelot", "JIT", "injection points"],
    )
    for row in rows:
        table.add_row(
            row.app,
            f"{row.rate('ocelot'):.0f}%",
            f"{row.rate('jit'):.0f}%",
            row.results["jit"][1],
        )
    table.add_note("paper: Ocelot 0% and JIT 100% on every benchmark")
    return table


@dataclass
class Table2bRow:
    app: str
    #: config -> (violation rate 0..1, completed runs)
    results: dict[str, tuple[float, int]]


def intermittent_spec(
    configs: tuple[str, ...] = ("ocelot", "jit"),
    profile: EnergyProfile = STANDARD_PROFILE,
    budget: int = STANDARD_BUDGET_CYCLES,
    seed: int = 0,
) -> CampaignSpec:
    """The Table 2b grid: intermittent power for a fixed budget."""
    return CampaignSpec(
        name="table2b-intermittent",
        apps=tuple(BENCHMARKS),
        configs=configs,
        environments=(EnvironmentSpec(env_seed=seed),),
        supplies=(SupplySpec.from_profile(profile, seed_offset=23),),
        seeds=(seed,),
        budget_cycles=budget,
    )


def measure_table2b(
    configs: tuple[str, ...] = ("ocelot", "jit"),
    profile: EnergyProfile = STANDARD_PROFILE,
    budget: int = STANDARD_BUDGET_CYCLES,
    seed: int = 0,
    executor: Executor | str | None = None,
) -> list[Table2bRow]:
    result = run_campaign(
        intermittent_spec(configs, profile, budget, seed), executor
    )
    by_cell = cells(result)
    rows: list[Table2bRow] = []
    for name in BENCHMARKS:
        results: dict[str, tuple[float, int]] = {}
        for config in configs:
            job = by_cell[(name, config)]
            results[config] = (job.violation_rate, job.completed_runs)
        rows.append(Table2bRow(app=name, results=results))
    return rows


def table2b(rows: list[Table2bRow] | None = None) -> Table:
    rows = rows if rows is not None else measure_table2b()
    table = Table(
        title="Table 2b: % violating while running intermittently",
        headers=["App", "Ocelot", "JIT", "JIT (paper)", "completed runs"],
    )
    for row in rows:
        table.add_row(
            row.app,
            f"{row.results['ocelot'][0] * 100:.0f}%",
            f"{row.results['jit'][0] * 100:.0f}%",
            f"{PAPER_2B_JIT[row.app]}%",
            row.results["jit"][1],
        )
    table.add_note(
        "fixed logical-time window per benchmark (the paper used 100 s "
        "wall-clock); rates depend on constraint-span fractions"
    )
    return table


if __name__ == "__main__":
    print(table2a().render_text())
    print()
    print(table2b().render_text())
