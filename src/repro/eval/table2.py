"""Table 2: correctness of Ocelot vs JIT.

(a) **Pathological injection**: power failures are injected exactly where
they can expose a timing violation -- "immediately before the use of a
fresh variable and between input operations in a consistent set" (Section
7.3).  Every detector check site is one pathological point; a benchmark's
row reports the percentage of injection runs that produced a violation.
Expected: Ocelot 0% everywhere, JIT 100% everywhere.

(b) **Intermittent power**: benchmarks loop on the standard harvesting
profile for a fixed logical-time window; the row reports the percentage of
*complete* runs containing a violation.  Expected: Ocelot 0% everywhere;
JIT rates ordered by how much of each program the constraints span (paper:
Photo 77, Activity/SendPhoto 50, Greenhouse 24, Tire 3, CEM 0).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import BENCHMARKS
from repro.eval.builds import all_builds
from repro.eval.profiles import STANDARD_BUDGET_CYCLES, STANDARD_PROFILE, EnergyProfile
from repro.eval.report import Table
from repro.runtime.harness import run_activations, run_once
from repro.runtime.supply import FailurePoint, ScheduledFailures

#: Paper's Table 2b JIT percentages, for side-by-side reporting.
PAPER_2B_JIT = {
    "activity": 50,
    "cem": 0,
    "greenhouse": 24,
    "photo": 77,
    "send_photo": 50,
    "tire": 3,
}


@dataclass
class Table2aRow:
    app: str
    #: config -> (violating runs, total injection runs)
    results: dict[str, tuple[int, int]]

    def rate(self, config: str) -> float:
        violating, total = self.results[config]
        return 100.0 * violating / total if total else 0.0


def measure_table2a(
    configs: tuple[str, ...] = ("ocelot", "jit"),
    off_cycles: int = 25_000,
    seed: int = 0,
) -> list[Table2aRow]:
    rows: list[Table2aRow] = []
    for name, meta in BENCHMARKS.items():
        builds = all_builds(name)
        costs = meta.cost_model()
        results: dict[str, tuple[int, int]] = {}
        for config in configs:
            compiled = builds[config]
            plan = compiled.detector_plan()
            sites = sorted(plan.checks)
            violating = 0
            fired = 0
            for site in sites:
                env = meta.env_factory(seed)
                supply = ScheduledFailures(
                    [FailurePoint(chain=site)], off_cycles=off_cycles
                )
                result = run_once(
                    compiled, env, supply, costs=costs, plan=plan
                )
                assert result.stats.completed, f"{name}/{config} stuck at {site}"
                if not supply.all_fired:
                    # The site sits on a path this environment never takes
                    # (e.g. an alarm branch); no failure was injected, so
                    # the run says nothing about the policy.
                    continue
                fired += 1
                if result.stats.violations > 0:
                    violating += 1
            results[config] = (violating, fired)
        rows.append(Table2aRow(app=name, results=results))
    return rows


def table2a(rows: list[Table2aRow] | None = None) -> Table:
    rows = rows if rows is not None else measure_table2a()
    table = Table(
        title="Table 2a: % violating with pathological power-failure points",
        headers=["App", "Ocelot", "JIT", "injection points"],
    )
    for row in rows:
        table.add_row(
            row.app,
            f"{row.rate('ocelot'):.0f}%",
            f"{row.rate('jit'):.0f}%",
            row.results["jit"][1],
        )
    table.add_note("paper: Ocelot 0% and JIT 100% on every benchmark")
    return table


@dataclass
class Table2bRow:
    app: str
    #: config -> (violation rate 0..1, completed runs)
    results: dict[str, tuple[float, int]]


def measure_table2b(
    configs: tuple[str, ...] = ("ocelot", "jit"),
    profile: EnergyProfile = STANDARD_PROFILE,
    budget: int = STANDARD_BUDGET_CYCLES,
    seed: int = 0,
) -> list[Table2bRow]:
    rows: list[Table2bRow] = []
    for name, meta in BENCHMARKS.items():
        builds = all_builds(name)
        costs = meta.cost_model()
        results: dict[str, tuple[float, int]] = {}
        for config in configs:
            env = meta.env_factory(seed)
            supply = profile.make_supply(seed=seed + 23)
            outcome = run_activations(
                builds[config], env, supply, budget_cycles=budget, costs=costs
            )
            results[config] = (outcome.violation_rate, outcome.completed_runs)
        rows.append(Table2bRow(app=name, results=results))
    return rows


def table2b(rows: list[Table2bRow] | None = None) -> Table:
    rows = rows if rows is not None else measure_table2b()
    table = Table(
        title="Table 2b: % violating while running intermittently",
        headers=["App", "Ocelot", "JIT", "JIT (paper)", "completed runs"],
    )
    for row in rows:
        table.add_row(
            row.app,
            f"{row.results['ocelot'][0] * 100:.0f}%",
            f"{row.results['jit'][0] * 100:.0f}%",
            f"{PAPER_2B_JIT[row.app]}%",
            row.results["jit"][1],
        )
    table.add_note(
        "fixed logical-time window per benchmark (the paper used 100 s "
        "wall-clock); rates depend on constraint-span fractions"
    )
    return table


if __name__ == "__main__":
    print(table2a().render_text())
    print()
    print(table2b().render_text())
