"""Evaluation harness: one module per paper table/figure.

Run everything with ``python -m repro.eval``.
"""

from repro.eval.campaign import (
    AggregateRow,
    CampaignError,
    CampaignResult,
    CampaignSpec,
    EnvironmentSpec,
    JobResult,
    JobSpec,
    MultiprocessExecutor,
    SerialExecutor,
    SupplySpec,
    execute_job,
    make_executor,
    run_campaign,
)
from repro.eval.figure7 import figure7, measure_figure7
from repro.eval.figure8 import figure8, measure_figure8
from repro.eval.profiles import (
    CONTINUOUS_ACTIVATIONS,
    STANDARD_BUDGET_CYCLES,
    STANDARD_PROFILE,
    EnergyProfile,
)
from repro.eval.report import Table, geometric_mean
from repro.eval.runner import run_all
from repro.eval.table1 import table1
from repro.eval.table2 import measure_table2a, measure_table2b, table2a, table2b
from repro.eval.table3 import table3
from repro.eval.table4 import measure_table4, table4
from repro.eval.regions_report import measure_regions_report, regions_report
from repro.eval.sensitivity import (
    sensitivity_tables,
    sweep_capacity,
    sweep_harvest_rate,
)
from repro.eval.timeline import Timeline, build_timeline, render_timeline

__all__ = [
    "AggregateRow",
    "CampaignError",
    "CampaignResult",
    "CampaignSpec",
    "EnvironmentSpec",
    "JobResult",
    "JobSpec",
    "MultiprocessExecutor",
    "SerialExecutor",
    "SupplySpec",
    "execute_job",
    "make_executor",
    "run_campaign",
    "figure7",
    "measure_figure7",
    "figure8",
    "measure_figure8",
    "CONTINUOUS_ACTIVATIONS",
    "STANDARD_BUDGET_CYCLES",
    "STANDARD_PROFILE",
    "EnergyProfile",
    "Table",
    "geometric_mean",
    "run_all",
    "table1",
    "measure_table2a",
    "measure_table2b",
    "table2a",
    "table2b",
    "table3",
    "measure_table4",
    "table4",
    "Timeline",
    "build_timeline",
    "render_timeline",
    "measure_regions_report",
    "regions_report",
    "sensitivity_tables",
    "sweep_capacity",
    "sweep_harvest_rate",
]
