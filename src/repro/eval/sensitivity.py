"""Sensitivity study: how the headline results vary with the environment.

The paper runs one physical setup ("the off, charging times are dictated
by the physical environment", Section 7.2); a simulator can do better and
show the claims are not artifacts of one operating point.  Two sweeps:

* **Harvest rate** (Figure 8's axis): off-time shrinks with rate, but the
  *on-time* proportions between configurations -- the actual claims --
  stay put, and charging dominates everywhere below wall power.
* **Capacitor size** (Table 2b's axis): bigger buffers mean rarer
  failures and lower JIT violation rates, while Ocelot stays at zero at
  every size that keeps its regions feasible (Section 5.3's boundary).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import BENCHMARKS
from repro.eval.profiles import EnergyProfile
from repro.eval.report import Table
from repro.runtime.harness import run_activations


@dataclass
class HarvestPoint:
    rate: int
    #: config -> (mean on-cycles, mean off-cycles)
    cycles: dict[str, tuple[float, float]]

    def off_share(self, config: str) -> float:
        on, off = self.cycles[config]
        return off / (on + off) if on + off else 0.0


def sweep_harvest_rate(
    app: str = "greenhouse",
    rates: tuple[int, ...] = (100, 300, 900),
    budget: int = 120_000,
    seed: int = 0,
) -> list[HarvestPoint]:
    from repro.eval.builds import all_builds

    meta = BENCHMARKS[app]
    builds = all_builds(app)
    costs = meta.cost_model()
    points: list[HarvestPoint] = []
    for rate in rates:
        profile = EnergyProfile(harvest_rate=rate)
        cycles: dict[str, tuple[float, float]] = {}
        for config in ("jit", "ocelot"):
            outcome = run_activations(
                builds[config],
                meta.env_factory(seed),
                profile.make_supply(seed=seed + 7),
                budget_cycles=budget,
                costs=costs,
            )
            completed = [r for r in outcome.records if r.completed]
            count = max(1, len(completed))
            cycles[config] = (
                sum(r.cycles_on for r in completed) / count,
                sum(r.cycles_off for r in completed) / count,
            )
        points.append(HarvestPoint(rate=rate, cycles=cycles))
    return points


@dataclass
class CapacityPoint:
    capacity: int
    jit_violation_rate: float
    ocelot_violation_rate: float
    jit_runs: int


def sweep_capacity(
    app: str = "send_photo",
    capacities: tuple[int, ...] = (2400, 3000, 4500),
    budget: int = 150_000,
    seed: int = 0,
) -> list[CapacityPoint]:
    from repro.eval.builds import all_builds

    meta = BENCHMARKS[app]
    builds = all_builds(app)
    costs = meta.cost_model()
    points: list[CapacityPoint] = []
    for capacity in capacities:
        profile = EnergyProfile(capacity=capacity)
        rates: dict[str, tuple[float, int]] = {}
        for config in ("jit", "ocelot"):
            outcome = run_activations(
                builds[config],
                meta.env_factory(seed),
                profile.make_supply(seed=seed + 13),
                budget_cycles=budget,
                costs=costs,
            )
            rates[config] = (outcome.violation_rate, outcome.completed_runs)
        points.append(
            CapacityPoint(
                capacity=capacity,
                jit_violation_rate=rates["jit"][0],
                ocelot_violation_rate=rates["ocelot"][0],
                jit_runs=rates["jit"][1],
            )
        )
    return points


def sensitivity_tables(seed: int = 0) -> list[Table]:
    harvest = Table(
        title="Sensitivity: harvest rate vs charging share (greenhouse)",
        headers=["rate (units/kcycle)", "JIT off-share", "Ocelot off-share"],
    )
    for point in sweep_harvest_rate(seed=seed):
        harvest.add_row(
            point.rate,
            point.off_share("jit"),
            point.off_share("ocelot"),
        )
    harvest.add_note("off-share falls with harvest rate; ordering is stable")

    capacity = Table(
        title="Sensitivity: capacitor size vs JIT violation rate (send_photo)",
        headers=["capacity", "JIT violating", "Ocelot violating", "JIT runs"],
    )
    for point in sweep_capacity(seed=seed):
        capacity.add_row(
            point.capacity,
            f"{point.jit_violation_rate * 100:.0f}%",
            f"{point.ocelot_violation_rate * 100:.0f}%",
            point.jit_runs,
        )
    capacity.add_note(
        "bigger buffers fail less often, so JIT violates less -- Ocelot is "
        "0% at every feasible size"
    )
    return [harvest, capacity]


if __name__ == "__main__":
    for table in sensitivity_tables():
        print(table.render_text())
        print()
