"""Run the whole evaluation and render every table and figure.

``python -m repro.eval`` prints the full set; ``--markdown`` emits the
Markdown used to refresh EXPERIMENTS.md.  Every measured table runs on
the campaign engine, so ``--parallel`` fans the underlying job matrices
out across worker processes while builds come from the shared compile
cache.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval.campaign import Executor, make_executor
from repro.eval.figure7 import figure7, measure_figure7
from repro.eval.figure8 import figure8, measure_figure8
from repro.eval.report import Table
from repro.eval.table1 import table1
from repro.eval.table2 import measure_table2a, measure_table2b, table2a, table2b
from repro.eval.table3 import table3
from repro.eval.table4 import table4


def run_all(seed: int = 0, executor: Executor | str | None = None) -> list[Table]:
    """Every table/figure of the evaluation, measured fresh."""
    continuous = measure_figure7(seed=seed, executor=executor)
    tables = [
        table1(),
        figure7(continuous),
        figure8(
            measure_figure8(seed=seed, continuous=continuous, executor=executor)
        ),
        table2a(measure_table2a(seed=seed, executor=executor)),
        table2b(measure_table2b(seed=seed, executor=executor)),
        table3(),
        table4(),
    ]
    return tables


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--markdown", action="store_true", help="emit Markdown instead of text"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="run the job matrices through the multiprocessing executor",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --parallel (default: one per core)",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs <= 0:
        parser.error(f"--jobs {args.jobs}: need a positive count")

    executor = (
        make_executor("multiprocess", processes=args.jobs)
        if args.parallel
        else None
    )
    started = time.time()
    tables = run_all(seed=args.seed, executor=executor)
    for table in tables:
        if args.markdown:
            print(table.render_markdown())
        else:
            print(table.render_text())
        print()
    elapsed = time.time() - started
    print(f"(evaluation completed in {elapsed:.1f}s)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
