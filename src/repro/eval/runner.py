"""Run the whole evaluation and render every table and figure.

``python -m repro.eval`` prints the full set; ``--markdown`` emits the
Markdown used to refresh EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval.figure7 import figure7, measure_figure7
from repro.eval.figure8 import figure8, measure_figure8
from repro.eval.report import Table
from repro.eval.table1 import table1
from repro.eval.table2 import measure_table2a, measure_table2b, table2a, table2b
from repro.eval.table3 import table3
from repro.eval.table4 import table4


def run_all(seed: int = 0) -> list[Table]:
    """Every table/figure of the evaluation, measured fresh."""
    continuous = measure_figure7(seed=seed)
    tables = [
        table1(),
        figure7(continuous),
        figure8(measure_figure8(seed=seed, continuous=continuous)),
        table2a(measure_table2a(seed=seed)),
        table2b(measure_table2b(seed=seed)),
        table3(),
        table4(),
    ]
    return tables


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--markdown", action="store_true", help="emit Markdown instead of text"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    started = time.time()
    tables = run_all(seed=args.seed)
    for table in tables:
        if args.markdown:
            print(table.render_markdown())
        else:
            print(table.render_text())
        print()
    elapsed = time.time() - started
    print(f"(evaluation completed in {elapsed:.1f}s)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
