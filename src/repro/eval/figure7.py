"""Figure 7: continuous-power runtimes of JIT / Atomics-only / Ocelot.

Each benchmark runs on continuous power under all three build
configurations; runtimes are averaged over many activations (the sensed
environment evolves with logical time, so single activations are noisy)
and normalized to the JIT build.  Paper shape targets: Ocelot's geometric
mean within ~10% of JIT; Atomics-only similar except CEM (~2.5x, its undo
log must back the whole compressed-log structure) and Tire (slightly
*faster* than Ocelot, because the flattened outer region amortizes the
frequently-executing inferred region inside it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import BENCHMARKS
from repro.core.pipeline import CONFIGS
from repro.eval.builds import all_builds
from repro.eval.profiles import CONTINUOUS_ACTIVATIONS
from repro.eval.report import Table, geometric_mean
from repro.runtime.harness import run_activations
from repro.runtime.supply import ContinuousPower


@dataclass
class Figure7Row:
    app: str
    cycles: dict[str, float]  # config -> mean on-cycles per activation

    def normalized(self, config: str) -> float:
        return self.cycles[config] / self.cycles["jit"]


def measure_figure7(
    activations: int = CONTINUOUS_ACTIVATIONS, seed: int = 0
) -> list[Figure7Row]:
    rows: list[Figure7Row] = []
    for name, meta in BENCHMARKS.items():
        builds = all_builds(name)
        costs = meta.cost_model()
        cycles: dict[str, float] = {}
        for config in CONFIGS:
            env = meta.env_factory(seed)
            result = run_activations(
                builds[config],
                env,
                ContinuousPower(),
                budget_cycles=10**12,
                costs=costs,
                max_activations=activations,
            )
            assert result.records, f"{name}/{config} produced no activations"
            cycles[config] = result.total_cycles_on / len(result.records)
        rows.append(Figure7Row(app=name, cycles=cycles))
    return rows


def figure7(rows: list[Figure7Row] | None = None) -> Table:
    rows = rows if rows is not None else measure_figure7()
    table = Table(
        title="Figure 7: Continuous runtimes, normalized to JIT",
        headers=["App", "JIT cycles", "Ocelot", "Atomics-only"],
    )
    for row in rows:
        table.add_row(
            row.app,
            int(row.cycles["jit"]),
            row.normalized("ocelot"),
            row.normalized("atomics"),
        )
    table.add_row(
        "gmean",
        "-",
        geometric_mean([r.normalized("ocelot") for r in rows]),
        geometric_mean([r.normalized("atomics") for r in rows]),
    )
    table.add_note(
        "paper: Ocelot gmean ~1.07; Atomics-only ~2.5x on CEM and slightly "
        "faster than Ocelot on Tire"
    )
    return table


if __name__ == "__main__":
    print(figure7().render_text())
