"""Figure 7: continuous-power runtimes of JIT / Atomics-only / Ocelot.

Each benchmark runs on continuous power under all three build
configurations; runtimes are averaged over many activations (the sensed
environment evolves with logical time, so single activations are noisy)
and normalized to the JIT build.  Paper shape targets: Ocelot's geometric
mean within ~10% of JIT; Atomics-only similar except CEM (~2.5x, its undo
log must back the whole compressed-log structure) and Tire (slightly
*faster* than Ocelot, because the flattened outer region amortizes the
frequently-executing inferred region inside it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import BENCHMARKS
from repro.core.pipeline import CONFIGS, ConfigLike
from repro.eval.campaign import (
    CampaignSpec,
    EnvironmentSpec,
    Executor,
    SupplySpec,
    cells,
    run_campaign,
)
from repro.eval.profiles import CONTINUOUS_ACTIVATIONS
from repro.eval.report import Table, geometric_mean


@dataclass
class Figure7Row:
    app: str
    cycles: dict[str, float]  # config -> mean on-cycles per activation

    def normalized(self, config: str) -> float:
        return self.cycles[config] / self.cycles["jit"]


def continuous_spec(
    activations: int = CONTINUOUS_ACTIVATIONS,
    seed: int = 0,
    configs: tuple[ConfigLike, ...] = CONFIGS,
) -> CampaignSpec:
    """The Figure 7 grid: every app x config on wall power."""
    return CampaignSpec(
        name="figure7-continuous",
        apps=tuple(BENCHMARKS),
        configs=configs,
        environments=(EnvironmentSpec(env_seed=seed),),
        supplies=(SupplySpec.continuous(),),
        seeds=(seed,),
        budget_cycles=10**12,
        max_activations=activations,
    )


def measure_figure7(
    activations: int = CONTINUOUS_ACTIVATIONS,
    seed: int = 0,
    executor: Executor | str | None = None,
    configs: tuple[ConfigLike, ...] = CONFIGS,
) -> list[Figure7Row]:
    spec = continuous_spec(activations, seed, configs)
    if "jit" not in spec.configs:
        raise ValueError("figure 7 normalizes to the 'jit' build; include it")
    result = run_campaign(spec, executor)
    by_cell = cells(result)
    rows: list[Figure7Row] = []
    for name in BENCHMARKS:
        cycles: dict[str, float] = {}
        for config in spec.configs:
            job = by_cell[(name, config)]
            assert job.activations, f"{name}/{config} produced no activations"
            cycles[config] = job.cycles_on / job.activations
        rows.append(Figure7Row(app=name, cycles=cycles))
    return rows


def figure7(rows: list[Figure7Row] | None = None) -> Table:
    rows = rows if rows is not None else measure_figure7()
    table = Table(
        title="Figure 7: Continuous runtimes, normalized to JIT",
        headers=["App", "JIT cycles", "Ocelot", "Atomics-only"],
    )
    for row in rows:
        table.add_row(
            row.app,
            int(row.cycles["jit"]),
            row.normalized("ocelot"),
            row.normalized("atomics"),
        )
    table.add_row(
        "gmean",
        "-",
        geometric_mean([r.normalized("ocelot") for r in rows]),
        geometric_mean([r.normalized("atomics") for r in rows]),
    )
    table.add_note(
        "paper: Ocelot gmean ~1.07; Atomics-only ~2.5x on CEM and slightly "
        "faster than Ocelot on Tire"
    )
    return table


if __name__ == "__main__":
    print(figure7().render_text())
