"""Table 3: characterizing the strategy of each system.

An analytic table (the paper's Table 3): what constructs each system gives
the programmer, how they are used, the LoC-change model, and whether the
result correctly upholds freshness and temporal consistency.
"""

from __future__ import annotations

from repro.baselines.effort import STRATEGY_TABLE
from repro.eval.report import Table


def table3() -> Table:
    table = Table(
        title="Table 3: Strategy characterization",
        headers=["System", "Constructs", "Strategy", "LoC model", "Upholds?"],
    )
    for row in STRATEGY_TABLE:
        table.add_row(
            row.system, row.constructs, row.strategy, row.loc_model, row.upholds
        )
    return table


if __name__ == "__main__":
    print(table3().render_text())
