"""Table 1: benchmark characteristics.

Origin, lines of code (ours and the paper's Rust version), sensors used
(``*`` marks sensors the paper simulated), and the timing constraints each
application declares.
"""

from __future__ import annotations

from repro.apps import BENCHMARKS
from repro.eval.report import Table


def table1() -> Table:
    table = Table(
        title="Table 1: Benchmark characteristics",
        headers=[
            "App",
            "Origin",
            "LoC (ours)",
            "LoC (paper)",
            "Sensors",
            "Constraints",
        ],
    )
    for meta in BENCHMARKS.values():
        table.add_row(
            meta.name,
            meta.origin,
            meta.loc,
            meta.paper_loc,
            ", ".join(meta.sensors),
            meta.constraints,
        )
    table.add_note(
        "our LoC counts modeling-language source; the paper counts Rust"
    )
    return table


if __name__ == "__main__":
    print(table1().render_text())
