"""Figure 8: intermittent runtimes, split into on-time and charging time.

Benchmarks run on the standard harvesting profile; per-activation on-time
and off (charging) time are normalized to the benchmark's *continuous JIT*
runtime, reproducing the stacked bars of Figure 8.  Shape targets: total
runtime dominated by charging (the grey stack); on-time proportions
between configurations mirroring Figure 7's continuous proportions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import BENCHMARKS
from repro.core.pipeline import CONFIGS, ConfigLike
from repro.eval.campaign import (
    CampaignSpec,
    EnvironmentSpec,
    Executor,
    SupplySpec,
    cells,
    run_campaign,
)
from repro.eval.figure7 import Figure7Row, measure_figure7
from repro.eval.profiles import STANDARD_BUDGET_CYCLES, STANDARD_PROFILE, EnergyProfile
from repro.eval.report import Table, geometric_mean


@dataclass
class Figure8Row:
    app: str
    #: config -> (mean on-cycles, mean off-cycles) per activation
    cycles: dict[str, tuple[float, float]]
    continuous_jit: float

    def normalized_on(self, config: str) -> float:
        return self.cycles[config][0] / self.continuous_jit

    def normalized_total(self, config: str) -> float:
        on, off = self.cycles[config]
        return (on + off) / self.continuous_jit


def intermittent_spec(
    profile: EnergyProfile = STANDARD_PROFILE,
    budget: int = STANDARD_BUDGET_CYCLES,
    seed: int = 0,
    configs: tuple[ConfigLike, ...] = CONFIGS,
) -> CampaignSpec:
    """The Figure 8 grid: every app x config on the harvesting testbed."""
    return CampaignSpec(
        name="figure8-intermittent",
        apps=tuple(BENCHMARKS),
        configs=configs,
        environments=(EnvironmentSpec(env_seed=seed),),
        supplies=(SupplySpec.from_profile(profile, seed_offset=17),),
        seeds=(seed,),
        budget_cycles=budget,
    )


def measure_figure8(
    profile: EnergyProfile = STANDARD_PROFILE,
    budget: int = STANDARD_BUDGET_CYCLES,
    seed: int = 0,
    continuous: list[Figure7Row] | None = None,
    executor: Executor | str | None = None,
    configs: tuple[ConfigLike, ...] = CONFIGS,
) -> list[Figure8Row]:
    continuous = (
        continuous
        if continuous is not None
        else measure_figure7(seed=seed, executor=executor, configs=configs)
    )
    jit_baseline = {row.app: row.cycles["jit"] for row in continuous}
    spec = intermittent_spec(profile, budget, seed, configs)
    result = run_campaign(spec, executor)
    by_cell = cells(result)
    rows: list[Figure8Row] = []
    for name in BENCHMARKS:
        cycles: dict[str, tuple[float, float]] = {}
        for config in spec.configs:
            job = by_cell[(name, config)]
            assert job.completed_runs, f"{name}/{config} completed no activations"
            cycles[config] = (
                job.completed_cycles_on / job.completed_runs,
                job.completed_cycles_off / job.completed_runs,
            )
        rows.append(
            Figure8Row(app=name, cycles=cycles, continuous_jit=jit_baseline[name])
        )
    return rows


def figure8(rows: list[Figure8Row] | None = None) -> Table:
    rows = rows if rows is not None else measure_figure8()
    table = Table(
        title="Figure 8: Intermittent runtimes, normalized to continuous JIT",
        headers=[
            "App",
            "JIT on",
            "JIT total",
            "Ocelot on",
            "Ocelot total",
            "Atomics on",
            "Atomics total",
        ],
    )
    for row in rows:
        table.add_row(
            row.app,
            row.normalized_on("jit"),
            row.normalized_total("jit"),
            row.normalized_on("ocelot"),
            row.normalized_total("ocelot"),
            row.normalized_on("atomics"),
            row.normalized_total("atomics"),
        )
    table.add_row(
        "gmean",
        geometric_mean([r.normalized_on("jit") for r in rows]),
        geometric_mean([r.normalized_total("jit") for r in rows]),
        geometric_mean([r.normalized_on("ocelot") for r in rows]),
        geometric_mean([r.normalized_total("ocelot") for r in rows]),
        geometric_mean([r.normalized_on("atomics") for r in rows]),
        geometric_mean([r.normalized_total("atomics") for r in rows]),
    )
    table.add_note(
        "'on' is execution time; 'total' adds off/charging time, which "
        "dominates (the paper's grey stacked bars)"
    )
    return table


if __name__ == "__main__":
    print(figure8().render_text())
