"""Plain-text and Markdown table rendering for the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

Cell = str | int | float


def _fmt(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


@dataclass
class Table:
    """A titled table with aligned text and Markdown renderings."""

    title: str
    headers: list[str]
    rows: list[list[Cell]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def _widths(self) -> list[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for idx, cell in enumerate(row):
                widths[idx] = max(widths[idx], len(_fmt(cell)))
        return widths

    def render_text(self) -> str:
        widths = self._widths()
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(h.ljust(w) for h, w in zip(self.headers, widths, strict=True))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(c).ljust(w) for c, w in zip(row, widths, strict=False))
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(c) for c in row) + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    import math

    if not values:
        raise ValueError("geometric mean of no values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
