"""Parallel evaluation campaigns: declarative sweeps over the job matrix.

The paper's evaluation (Tables 1-4, Figures 7-8) is a grid: applications
x build configurations x environments x power supplies x seeds.  The
config axis takes any registered build configuration -- the paper's
three, the shipped ablations, or user-registered
:class:`~repro.core.passes.BuildConfig` pipelines.  A
:class:`CampaignSpec` describes that grid declaratively; :func:`run_campaign`
expands it into picklable :class:`JobSpec` entries, executes them through a
pluggable executor (:class:`SerialExecutor` or :class:`MultiprocessExecutor`),
and aggregates the per-job outcomes into a :class:`CampaignResult` with a
stable JSON encoding.

Every piece that crosses a process boundary -- job specs, job results --
is built from primitives only (no closures, no IR objects), so the
multiprocessing backend can fan jobs out with plain pickling.  Programs
compile once per campaign through :data:`repro.core.cache.GLOBAL_CACHE`:
the parent precompiles every (app, config) pair before forking, so worker
processes inherit warm builds and report ``compile_cached=True``.

Two job modes cover the paper's experimental regimes:

* ``activations`` -- repeated activations for a logical-time budget
  (Figures 7-8, Table 2b); continuous power is just a supply kind.
* ``injection`` -- pathological power failures at every detector check
  site (Table 2a).
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import time
from dataclasses import asdict, dataclass
from typing import Optional, Protocol, Sequence

from repro.apps import BENCHMARKS
from repro.core.cache import GLOBAL_CACHE
from repro.core.passes import (
    BuildConfig,
    UnknownConfigError,
    ensure_registered,
    get_config,
    register_config,
)
from repro.core.pipeline import CONFIGS, ConfigLike
from repro.ir.instructions import InstrId
from repro.eval.profiles import (
    STANDARD_BUDGET_CYCLES,
    STANDARD_PROFILE,
    EnergyProfile,
)
from repro.eval.report import Table
from repro.runtime.engine import ENGINE_FAST, ENGINES
from repro.runtime.harness import run_activations, run_once
from repro.runtime.supply import (
    ContinuousPower,
    FailurePoint,
    PowerSupply,
    ScheduledFailures,
)
from repro.sensors.environment import Environment, bind_signal_specs
from repro.telemetry.trace import span as _span

MODE_ACTIVATIONS = "activations"
MODE_INJECTION = "injection"
MODES = (MODE_ACTIVATIONS, MODE_INJECTION)

SUPPLY_CONTINUOUS = "continuous"
SUPPLY_HARVEST = "harvest"
SUPPLY_SCHEDULE = "schedule"


class CampaignError(ValueError):
    """A malformed campaign spec (unknown app, config, mode, ...)."""


# ---------------------------------------------------------------------------
# Declarative axes


@dataclass(frozen=True)
class EnvironmentSpec:
    """One sensed-world configuration, described by data only.

    ``env_seed`` feeds the application's own environment factory;
    ``overrides`` rebind individual channels with textual signal specs
    (same grammar as the CLI's ``--set``: ``"42"`` or ``"1,5:200"``),
    keeping the spec picklable and JSON-serializable.
    """

    name: str = "default"
    env_seed: int = 0
    overrides: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        # Validate override grammar up front: a bad spec string should
        # fail the campaign at construction, not a worker mid-sweep.
        try:
            bind_signal_specs(Environment(), self.overrides)
        except ValueError as exc:
            raise CampaignError(
                f"environment '{self.name}' override {exc}"
            ) from None

    def build(self, app: str) -> Environment:
        meta = BENCHMARKS[app]
        return bind_signal_specs(meta.env_factory(self.env_seed), self.overrides)

    def to_dict(self) -> dict:
        data = {"name": self.name, "env_seed": self.env_seed}
        if self.overrides:
            data["overrides"] = dict(self.overrides)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "EnvironmentSpec":
        overrides = tuple(sorted(dict(data.get("overrides", {})).items()))
        return cls(
            name=data.get("name", "default"),
            env_seed=int(data.get("env_seed", 0)),
            overrides=overrides,
        )


@dataclass(frozen=True)
class SupplySpec:
    """One power-supply configuration (continuous wall power or a
    capacitor + harvester setup mirroring :class:`EnergyProfile`).

    ``seed_offset`` decorrelates the supply's randomness from the
    environment seed, matching how the table/figure modules historically
    offset their supply seeds.

    Kind ``schedule`` is a deterministic failure schedule -- typically a
    verifier counterexample (:meth:`repro.verify.Schedule.to_supply_spec`)
    dropped into a campaign: ``points`` holds ``(func, label,
    occurrence)`` triples and ``off_cycles`` the constant recharge time;
    the harvest knobs and seed are ignored (the supply is seed-invariant
    by construction).
    """

    name: str = SUPPLY_HARVEST
    kind: str = SUPPLY_HARVEST
    capacity: int = 3000
    low_threshold: int = 600
    boot_fraction: tuple[float, float] = (0.65, 1.0)
    harvest_rate: int = 300
    harvest_spread: float = 3.0
    seed_offset: int = 0
    points: tuple[tuple[str, int, int], ...] = ()
    off_cycles: int = 10_000

    def __post_init__(self) -> None:
        if self.kind not in (SUPPLY_CONTINUOUS, SUPPLY_HARVEST, SUPPLY_SCHEDULE):
            raise CampaignError(f"unknown supply kind '{self.kind}'")
        for entry in self.points:
            func, label, occurrence = entry
            if not isinstance(func, str) or int(occurrence) < 1:
                raise CampaignError(f"bad schedule point {entry!r}")

    @classmethod
    def continuous(cls, name: str = SUPPLY_CONTINUOUS) -> "SupplySpec":
        return cls(name=name, kind=SUPPLY_CONTINUOUS)

    @classmethod
    def from_profile(
        cls,
        profile: EnergyProfile = STANDARD_PROFILE,
        name: str = SUPPLY_HARVEST,
        seed_offset: int = 0,
    ) -> "SupplySpec":
        return cls(
            name=name,
            kind=SUPPLY_HARVEST,
            capacity=profile.capacity,
            low_threshold=profile.low_threshold,
            boot_fraction=profile.boot_fraction,
            harvest_rate=profile.harvest_rate,
            harvest_spread=profile.harvest_spread,
            seed_offset=seed_offset,
        )

    def profile(self) -> EnergyProfile:
        return EnergyProfile(
            capacity=self.capacity,
            low_threshold=self.low_threshold,
            boot_fraction=self.boot_fraction,
            harvest_rate=self.harvest_rate,
            harvest_spread=self.harvest_spread,
        )

    def build(self, seed: int) -> PowerSupply:
        if self.kind == SUPPLY_CONTINUOUS:
            return ContinuousPower()
        if self.kind == SUPPLY_SCHEDULE:
            return ScheduledFailures(
                [
                    FailurePoint(
                        uid=InstrId(func, int(label)), occurrence=int(occ)
                    )
                    for func, label, occ in self.points
                ],
                off_cycles=self.off_cycles,
            )
        return self.profile().make_supply(seed=seed + self.seed_offset)

    def to_dict(self) -> dict:
        data = asdict(self)
        data["boot_fraction"] = list(self.boot_fraction)
        data["points"] = [list(p) for p in self.points]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SupplySpec":
        data = dict(data)
        if "boot_fraction" in data:
            data["boot_fraction"] = tuple(data["boot_fraction"])
        if "points" in data:
            data["points"] = tuple(tuple(p) for p in data["points"])
        return cls(**data)


def _config_name(config: ConfigLike) -> str:
    """Normalize one config axis entry to a registered name.

    Accepts a registered name or a :class:`BuildConfig` instance; custom
    instances are registered on the fly so forked workers can resolve
    them by name.
    """
    if isinstance(config, BuildConfig):
        try:
            return ensure_registered(config)
        except ValueError as exc:
            raise CampaignError(str(exc)) from None
    try:
        ensure_registered(config)
    except UnknownConfigError as exc:
        raise CampaignError(str(exc)) from None
    return config


@dataclass(frozen=True)
class CampaignSpec:
    """The declarative grid a campaign sweeps.

    ``expand`` produces one :class:`JobSpec` per point of
    apps x configs x environments x supplies x seeds.  The ``configs``
    axis accepts registered configuration names or
    :class:`~repro.core.passes.BuildConfig` instances (normalized to
    their registered names, so specs stay picklable and
    JSON-serializable).
    """

    apps: tuple[str, ...]
    configs: tuple[ConfigLike, ...] = CONFIGS
    environments: tuple[EnvironmentSpec, ...] = (EnvironmentSpec(),)
    supplies: tuple[SupplySpec, ...] = (SupplySpec(),)
    seeds: tuple[int, ...] = (0,)
    mode: str = MODE_ACTIVATIONS
    budget_cycles: int = STANDARD_BUDGET_CYCLES
    max_activations: int = 100_000
    #: off-time per injected failure (``injection`` mode only)
    off_cycles: int = 25_000
    #: execution engine; results are engine-independent (the parity
    #: suite proves bit-identity), so this is an escape hatch only
    engine: str = ENGINE_FAST
    name: str = "campaign"

    def __post_init__(self) -> None:
        if not self.apps:
            raise CampaignError("campaign needs at least one app")
        if self.engine not in ENGINES:
            raise CampaignError(
                f"unknown engine '{self.engine}'; known: {', '.join(ENGINES)}"
            )
        for app in self.apps:
            if app not in BENCHMARKS:
                known = ", ".join(BENCHMARKS)
                raise CampaignError(f"unknown app '{app}'; known: {known}")
        object.__setattr__(
            self, "configs", tuple(_config_name(c) for c in self.configs)
        )
        if self.mode not in MODES:
            raise CampaignError(
                f"unknown mode '{self.mode}'; known: {', '.join(MODES)}"
            )
        if self.mode == MODE_INJECTION and (
            len(self.supplies) != 1 or len(self.seeds) != 1
        ):
            # Injection replaces the supply with scheduled failures and
            # draws no randomness from the seed; extra axis points would
            # run identical jobs and double-count every aggregate.
            raise CampaignError(
                "injection mode ignores the supply and seed axes; "
                "specify exactly one supply and one seed"
            )
        names = [e.name for e in self.environments]
        if len(set(names)) != len(names):
            raise CampaignError(f"duplicate environment names: {names}")
        names = [s.name for s in self.supplies]
        if len(set(names)) != len(names):
            raise CampaignError(f"duplicate supply names: {names}")

    @property
    def size(self) -> int:
        return (
            len(self.apps)
            * len(self.configs)
            * len(self.environments)
            * len(self.supplies)
            * len(self.seeds)
        )

    def expand(self) -> list["JobSpec"]:
        """The full job matrix, in deterministic grid order."""
        return [
            JobSpec(
                app=app,
                config=config,
                environment=env,
                supply=supply,
                seed=seed,
                mode=self.mode,
                budget_cycles=self.budget_cycles,
                max_activations=self.max_activations,
                off_cycles=self.off_cycles,
                engine=self.engine,
            )
            for app, config, env, supply, seed in itertools.product(
                self.apps, self.configs, self.environments, self.supplies, self.seeds
            )
        ]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "apps": list(self.apps),
            "configs": list(self.configs),
            "environments": [e.to_dict() for e in self.environments],
            "supplies": [s.to_dict() for s in self.supplies],
            "seeds": list(self.seeds),
            "mode": self.mode,
            "budget_cycles": self.budget_cycles,
            "max_activations": self.max_activations,
            "off_cycles": self.off_cycles,
            "engine": self.engine,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        apps = data.get("apps", "all")
        if apps == "all":
            apps = list(BENCHMARKS)
        configs = data.get("configs", list(CONFIGS))
        if configs == "all":
            configs = list(CONFIGS)
        environments = tuple(
            EnvironmentSpec.from_dict(e)
            for e in data.get("environments", [{"name": "default"}])
        )
        supplies = tuple(
            SupplySpec.from_dict(s)
            for s in data.get("supplies", [{"name": SUPPLY_HARVEST}])
        )
        return cls(
            apps=tuple(apps),
            configs=tuple(configs),
            environments=environments,
            supplies=supplies,
            seeds=tuple(data.get("seeds", [0])),
            mode=data.get("mode", MODE_ACTIVATIONS),
            budget_cycles=int(data.get("budget_cycles", STANDARD_BUDGET_CYCLES)),
            max_activations=int(data.get("max_activations", 100_000)),
            off_cycles=int(data.get("off_cycles", 25_000)),
            engine=data.get("engine", ENGINE_FAST),
            name=data.get("name", "campaign"),
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignError(f"campaign spec is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise CampaignError("campaign spec must be a JSON object")
        try:
            return cls.from_dict(data)
        except CampaignError:
            raise
        except (TypeError, ValueError) as exc:
            # Unknown keys, wrong types, non-integer numbers: surface them
            # as spec errors, not tracebacks.
            raise CampaignError(f"malformed campaign spec: {exc}") from None


# ---------------------------------------------------------------------------
# Jobs


@dataclass(frozen=True)
class JobSpec:
    """One cell of the campaign grid; pickles with primitives only."""

    app: str
    config: str
    environment: EnvironmentSpec
    supply: SupplySpec
    seed: int
    mode: str = MODE_ACTIVATIONS
    budget_cycles: int = STANDARD_BUDGET_CYCLES
    max_activations: int = 100_000
    off_cycles: int = 25_000
    engine: str = ENGINE_FAST

    @property
    def job_id(self) -> str:
        return (
            f"{self.app}/{self.config}/{self.environment.name}"
            f"/{self.supply.name}/s{self.seed}"
        )


@dataclass(frozen=True)
class JobResult:
    """Everything a finished job reports, as JSON-ready primitives."""

    job_id: str
    app: str
    config: str
    environment: str
    supply: str
    seed: int
    mode: str
    #: compile-side facts
    region_count: int
    compile_cached: bool
    #: activations mode
    activations: int = 0
    completed_runs: int = 0
    violating_runs: int = 0
    violations: int = 0
    fresh_violations: int = 0
    consistent_violations: int = 0
    cycles_on: int = 0
    cycles_off: int = 0
    completed_cycles_on: int = 0
    completed_cycles_off: int = 0
    reboots: int = 0
    #: injection mode
    injection_points: int = 0
    injection_violating: int = 0
    #: bit-vector detector scans (both modes; deterministic, so part of
    #: the fingerprint -- optimizer wins show up in campaign reports)
    detector_queries: int = 0
    #: not part of the deterministic fingerprint
    wall_time: float = 0.0

    @property
    def violation_rate(self) -> float:
        """Fraction of *complete* runs containing a violation."""
        if self.completed_runs == 0:
            return 0.0
        return self.violating_runs / self.completed_runs

    @property
    def injection_rate(self) -> float:
        """Fraction of fired injection points that produced a violation."""
        if self.injection_points == 0:
            return 0.0
        return self.injection_violating / self.injection_points

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobResult":
        return cls(**data)

    def fingerprint(self) -> dict:
        """Deterministic payload: drops wall time and cache incidentals."""
        data = self.to_dict()
        data.pop("wall_time")
        data.pop("compile_cached")
        return data


def execute_job(job: JobSpec) -> JobResult:
    """Run one job in the current process (the executor entry point).

    Builds come from the process-wide compile cache; environments and
    supplies are materialized from the job's declarative specs, so a job
    is a pure function of its spec -- serial and multiprocess executors
    produce identical results.
    """
    with _span("campaign.job", "campaign", job=job.job_id):
        return _execute_job(job)


def _execute_job(job: JobSpec) -> JobResult:
    started = time.perf_counter()
    meta = BENCHMARKS[job.app]
    compiled, cached = GLOBAL_CACHE.get_or_compile_with_info(
        meta.source, job.config
    )
    costs = meta.cost_model()
    common = dict(
        job_id=job.job_id,
        app=job.app,
        config=job.config,
        environment=job.environment.name,
        supply=job.supply.name,
        seed=job.seed,
        mode=job.mode,
        region_count=len(compiled.regions),
        compile_cached=cached,
    )

    if job.mode == MODE_INJECTION:
        plan = compiled.detector_plan()
        fired = violating = fresh = consistent = reboots = 0
        queries = 0
        for site in sorted(plan.checks):
            env = job.environment.build(job.app)
            supply = ScheduledFailures(
                [FailurePoint(chain=site)], off_cycles=job.off_cycles
            )
            result = run_once(
                compiled, env, supply, costs=costs, plan=plan, engine=job.engine
            )
            if not result.stats.completed:
                raise RuntimeError(f"{job.job_id} stuck at site {site}")
            queries += result.detector_queries
            if not supply.all_fired:
                # The site sits on a path this environment never takes;
                # no failure was injected, so the run says nothing.
                continue
            fired += 1
            reboots += result.stats.reboots
            kinds = [v.kind for v in result.trace.violations]
            fresh += kinds.count("fresh")
            consistent += kinds.count("consistent")
            if result.stats.violations > 0:
                violating += 1
        return JobResult(
            **common,
            violations=fresh + consistent,
            fresh_violations=fresh,
            consistent_violations=consistent,
            reboots=reboots,
            injection_points=fired,
            injection_violating=violating,
            detector_queries=queries,
            wall_time=time.perf_counter() - started,
        )

    env = job.environment.build(job.app)
    supply = job.supply.build(job.seed)
    outcome = run_activations(
        compiled,
        env,
        supply,
        budget_cycles=job.budget_cycles,
        costs=costs,
        max_activations=job.max_activations,
        engine=job.engine,
    )
    summary = outcome.summary()
    return JobResult(
        **common,
        activations=summary.activations,
        completed_runs=summary.completed_runs,
        violating_runs=summary.violating_runs,
        violations=summary.violations,
        fresh_violations=summary.fresh_violations,
        consistent_violations=summary.consistent_violations,
        cycles_on=summary.cycles_on,
        cycles_off=summary.cycles_off,
        completed_cycles_on=summary.completed_cycles_on,
        completed_cycles_off=summary.completed_cycles_off,
        reboots=summary.reboots,
        detector_queries=summary.detector_queries,
        wall_time=time.perf_counter() - started,
    )


# ---------------------------------------------------------------------------
# Executors


class Executor(Protocol):
    """Anything that can run a batch of jobs and keep their order."""

    name: str

    def run(self, jobs: Sequence[JobSpec]) -> list[JobResult]: ...


class SerialExecutor:
    """In-process execution, one job at a time (deterministic baseline)."""

    name = "serial"

    def run(self, jobs: Sequence[JobSpec]) -> list[JobResult]:
        return [execute_job(job) for job in jobs]


class MultiprocessExecutor:
    """Fan jobs out across worker processes with ``multiprocessing``.

    Prefers the ``fork`` start method so workers inherit the parent's
    warm compile cache; on platforms without ``fork`` each worker
    compiles its own builds (correct, just slower).  A pool initializer
    re-registers the jobs' build configurations so custom
    :class:`BuildConfig` axes resolve by name even in spawned workers,
    which start with only the import-time registry.
    """

    name = "multiprocess"

    def __init__(
        self, processes: Optional[int] = None, chunksize: int = 1
    ) -> None:
        if processes is not None and processes <= 0:
            raise ValueError("processes must be positive (or None for auto)")
        self.processes = processes
        self.chunksize = chunksize

    def _context(self):
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context()

    def run(self, jobs: Sequence[JobSpec]) -> list[JobResult]:
        if len(jobs) <= 1:
            return SerialExecutor().run(jobs)
        ctx = self._context()
        processes = self.processes or min(len(jobs), ctx.cpu_count() or 1)
        configs = tuple(
            get_config(name) for name in sorted({job.config for job in jobs})
        )
        with ctx.Pool(
            processes=processes,
            initializer=_register_worker_configs,
            initargs=(configs,),
        ) as pool:
            return pool.map(execute_job, jobs, chunksize=self.chunksize)


def _register_worker_configs(configs: tuple[BuildConfig, ...]) -> None:
    """Pool initializer: make the campaign's configs resolvable by name."""
    for config in configs:
        register_config(config, replace=True)


def make_executor(
    name: str, processes: Optional[int] = None
) -> SerialExecutor | MultiprocessExecutor:
    if name == "serial":
        return SerialExecutor()
    if name in ("multiprocess", "parallel"):
        return MultiprocessExecutor(processes=processes)
    raise CampaignError(f"unknown executor '{name}' (serial | multiprocess)")


# ---------------------------------------------------------------------------
# Results


@dataclass(frozen=True)
class AggregateRow:
    """Sums over every job of one (app, config) cell."""

    app: str
    config: str
    jobs: int
    activations: int
    completed_runs: int
    violating_runs: int
    violations: int
    fresh_violations: int
    consistent_violations: int
    cycles_on: int
    cycles_off: int
    reboots: int
    region_count: int
    injection_points: int
    injection_violating: int
    detector_queries: int = 0

    @property
    def violation_rate(self) -> float:
        if self.completed_runs == 0:
            return 0.0
        return self.violating_runs / self.completed_runs


@dataclass
class CampaignResult:
    """Every job result plus campaign-level bookkeeping."""

    spec: CampaignSpec
    jobs: list[JobResult]
    executor: str = "serial"
    wall_time: float = 0.0
    compiles: int = 0
    cache_hits: int = 0

    def job(self, job_id: str) -> JobResult:
        for result in self.jobs:
            if result.job_id == job_id:
                return result
        raise KeyError(f"no job '{job_id}' in campaign '{self.spec.name}'")

    def by_cell(self) -> dict[tuple[str, str], list[JobResult]]:
        cells: dict[tuple[str, str], list[JobResult]] = {}
        for result in self.jobs:
            cells.setdefault((result.app, result.config), []).append(result)
        return cells

    def aggregate(self) -> list[AggregateRow]:
        """Per-(app, config) sums, in the spec's grid order."""
        cells = self.by_cell()
        rows = []
        for app in self.spec.apps:
            for config in self.spec.configs:
                members = cells.get((app, config), [])
                if not members:
                    continue
                rows.append(
                    AggregateRow(
                        app=app,
                        config=config,
                        jobs=len(members),
                        activations=sum(r.activations for r in members),
                        completed_runs=sum(r.completed_runs for r in members),
                        violating_runs=sum(r.violating_runs for r in members),
                        violations=sum(r.violations for r in members),
                        fresh_violations=sum(
                            r.fresh_violations for r in members
                        ),
                        consistent_violations=sum(
                            r.consistent_violations for r in members
                        ),
                        cycles_on=sum(r.cycles_on for r in members),
                        cycles_off=sum(r.cycles_off for r in members),
                        reboots=sum(r.reboots for r in members),
                        region_count=members[0].region_count,
                        injection_points=sum(
                            r.injection_points for r in members
                        ),
                        injection_violating=sum(
                            r.injection_violating for r in members
                        ),
                        detector_queries=sum(
                            r.detector_queries for r in members
                        ),
                    )
                )
        return rows

    def fingerprint(self) -> list[dict]:
        """Deterministic view for executor-parity comparisons."""
        return [job.fingerprint() for job in self.jobs]

    def table(self) -> Table:
        table = Table(
            title=f"Campaign '{self.spec.name}' ({self.spec.mode} mode)",
            headers=[
                "App",
                "Config",
                "Jobs",
                "Runs",
                "Violating",
                "Reboots",
                "Regions",
            ],
        )
        for row in self.aggregate():
            runs = (
                row.injection_points
                if self.spec.mode == MODE_INJECTION
                else row.completed_runs
            )
            violating = (
                row.injection_violating
                if self.spec.mode == MODE_INJECTION
                else row.violating_runs
            )
            table.add_row(
                row.app,
                row.config,
                row.jobs,
                runs,
                violating,
                row.reboots,
                row.region_count,
            )
        table.add_note(
            f"{len(self.jobs)} jobs via {self.executor} executor in "
            f"{self.wall_time:.2f}s; {self.compiles} compiles, "
            f"{self.cache_hits} cache hits"
        )
        return table

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "executor": self.executor,
            "wall_time": self.wall_time,
            "compiles": self.compiles,
            "cache_hits": self.cache_hits,
            "jobs": [job.to_dict() for job in self.jobs],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        return cls(
            spec=CampaignSpec.from_dict(data["spec"]),
            jobs=[JobResult.from_dict(j) for j in data["jobs"]],
            executor=data.get("executor", "serial"),
            wall_time=float(data.get("wall_time", 0.0)),
            compiles=int(data.get("compiles", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignResult":
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# Driver


def precompile(spec: CampaignSpec) -> int:
    """Warm the global cache with every (app, config) build of ``spec``.

    Returns the number of builds that actually compiled.  Running before
    the executor guarantees each program compiles once per campaign: the
    serial executor then hits on every job, and forked workers inherit
    the warm cache.
    """
    compiled_now = 0
    for app, config in itertools.product(spec.apps, spec.configs):
        meta = BENCHMARKS[app]
        _, cached = GLOBAL_CACHE.get_or_compile_with_info(meta.source, config)
        if not cached:
            compiled_now += 1
    return compiled_now


def run_campaign(
    spec: CampaignSpec,
    executor: Executor | str | None = None,
    processes: Optional[int] = None,
) -> CampaignResult:
    """Expand ``spec``, execute every job, and aggregate the results."""
    if executor is None:
        executor = SerialExecutor()
    elif isinstance(executor, str):
        executor = make_executor(executor, processes=processes)
    started = time.perf_counter()
    with _span("campaign", "campaign", spec=spec.name, executor=executor.name):
        compiles = precompile(spec)
        jobs = spec.expand()
        results = executor.run(jobs)
    cache_hits = sum(1 for r in results if r.compile_cached)
    return CampaignResult(
        spec=spec,
        jobs=results,
        executor=executor.name,
        wall_time=time.perf_counter() - started,
        compiles=compiles,
        cache_hits=cache_hits,
    )


def cells(
    result: CampaignResult,
    environment: Optional[str] = None,
    supply: Optional[str] = None,
    seed: Optional[int] = None,
) -> dict[tuple[str, str], JobResult]:
    """Index one (environment, supply, seed) slice by (app, config).

    The table/figure modules sweep a single environment and supply, so
    this is their bridge from a campaign back to per-cell rows.  Raises
    if the filter leaves more than one job per cell.
    """
    picked: dict[tuple[str, str], JobResult] = {}
    for job in result.jobs:
        if environment is not None and job.environment != environment:
            continue
        if supply is not None and job.supply != supply:
            continue
        if seed is not None and job.seed != seed:
            continue
        key = (job.app, job.config)
        if key in picked:
            raise CampaignError(
                f"ambiguous cell {key}: narrow the environment/supply/seed "
                "filter"
            )
        picked[key] = job
    return picked


def lint_campaign(spec: CampaignSpec) -> dict[tuple[str, str], dict[str, int]]:
    """Static staleness verdict counts for every (app, config) cell.

    Companion to :func:`run_campaign` for ``campaign --lint``: before (or
    instead of) burning cycles on dynamic sweeps, the static analysis
    says which checks are provably SAFE, provably DOOMED, or
    environment-dependent under each build config.  Deliberately *not*
    called from the run path -- the analysis is compile-time machinery,
    so the activation/injection hot loops never pay for it.
    """
    from repro.analysis.staleness import analyze_staleness

    out: dict[tuple[str, str], dict[str, int]] = {}
    for app in spec.apps:
        source = BENCHMARKS[app].source
        for config in spec.configs:
            compiled = GLOBAL_CACHE.get_or_compile(source, config)
            out[(app, config)] = analyze_staleness(compiled).counts()
    return out


def lint_table(spec: CampaignSpec) -> Table:
    """Render :func:`lint_campaign` as the standard report table."""
    from repro.analysis.staleness import (
        VERDICT_DOOMED,
        VERDICT_ENV,
        VERDICT_SAFE,
    )

    table = Table(
        title=f"Campaign '{spec.name}' static lint",
        headers=["App", "Config", "Safe", "Doomed", "Env-dependent"],
    )
    for (app, config), counts in lint_campaign(spec).items():
        table.add_row(
            app,
            config,
            counts[VERDICT_SAFE],
            counts[VERDICT_DOOMED],
            counts[VERDICT_ENV],
        )
    return table
