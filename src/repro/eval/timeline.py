"""ASCII execution timelines: the paper's Figure 1/2 pictures, from traces.

Renders one intermittent execution as a set of horizontal tracks over
logical time::

    power   ###########....############....#######
    region  ...[=====]......[========]............
    events  ..I..I...C..........I.I..V............

* ``power``  -- ``#`` while on, ``.`` while off/charging,
* ``region`` -- ``=`` inside an atomic extent (``[``/``]`` entry/commit),
* ``events`` -- ``I`` input, ``C`` checkpoint, ``R`` reboot, ``O`` output,
  ``V`` violation.

Useful in examples and debugging sessions; tested like any renderer
(structure, not pixels).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime import observations as obs


@dataclass
class Timeline:
    """A rendered timeline: fixed-width tracks plus the time scale."""

    width: int
    start_tau: int
    end_tau: int
    power: str
    region: str
    events: str

    @property
    def cycles_per_column(self) -> float:
        span = max(1, self.end_tau - self.start_tau)
        return span / self.width

    def render(self) -> str:
        scale = (
            f"tau {self.start_tau} .. {self.end_tau} "
            f"({self.cycles_per_column:.0f} cycles/column)"
        )
        return "\n".join(
            [
                f"power   {self.power}",
                f"region  {self.region}",
                f"events  {self.events}",
                f"        {scale}",
            ]
        )


_EVENT_GLYPHS = [
    (obs.ViolationObs, "V"),
    (obs.RebootObs, "R"),
    (obs.CheckpointObs, "C"),
    (obs.InputObs, "I"),
    (obs.OutputObs, "O"),
    (obs.RegionEnterObs, "["),
    (obs.RegionExitObs, "]"),
]

#: Priority when several events share a column (highest wins).
_PRIORITY = {glyph: rank for rank, (_, glyph) in enumerate(reversed(_EVENT_GLYPHS))}


def build_timeline(trace: obs.Trace, width: int = 72) -> Timeline:
    """Render ``trace`` into ``width`` columns."""
    if width <= 0:
        raise ValueError("width must be positive")
    events = list(trace)
    if not events:
        return Timeline(
            width=width,
            start_tau=0,
            end_tau=0,
            power="." * width,
            region="." * width,
            events="." * width,
        )
    start = min(e.tau for e in events)
    end = max(e.tau for e in events)
    span = max(1, end - start)

    def column(tau: int) -> int:
        return min(width - 1, int((tau - start) * width / span))

    # Off intervals: between a PowerFailObs and the following RebootObs.
    power = ["#"] * width
    fail_tau: int | None = None
    for event in events:
        if isinstance(event, obs.PowerFailObs):
            fail_tau = event.tau
        elif isinstance(event, obs.RebootObs) and fail_tau is not None:
            for col in range(column(fail_tau), column(event.tau) + 1):
                power[col] = "."
            fail_tau = None

    # Region extents: between enter and exit/reboot-restart.
    region = ["."] * width
    open_tau: int | None = None
    for event in events:
        if isinstance(event, obs.RegionEnterObs):
            open_tau = event.tau
        elif isinstance(event, obs.RegionExitObs) and open_tau is not None:
            lo, hi = column(open_tau), column(event.tau)
            for col in range(lo, hi + 1):
                region[col] = "="
            region[lo] = "["
            region[hi] = "]"
            open_tau = None

    marks = ["."] * width
    for event in events:
        glyph = None
        for kind, candidate in _EVENT_GLYPHS:
            if isinstance(event, kind):
                glyph = candidate
                break
        if glyph is None or glyph in "[]":
            continue
        col = column(event.tau)
        if marks[col] == "." or _PRIORITY[glyph] > _PRIORITY.get(marks[col], -1):
            marks[col] = glyph

    return Timeline(
        width=width,
        start_tau=start,
        end_tau=end,
        power="".join(power),
        region="".join(region),
        events="".join(marks),
    )


def render_timeline(trace: obs.Trace, width: int = 72) -> str:
    """One-call convenience: build and render."""
    return build_timeline(trace, width).render()
