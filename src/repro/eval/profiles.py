"""Shared experimental profiles: the simulated testbed configuration.

The paper runs everything on one physical setup (Capybara + PowerCast at
10 inches); we correspondingly fix one energy profile for all intermittent
experiments so cross-benchmark comparisons are apples-to-apples.

The numbers are chosen so that (a) the largest inferred atomic region of
any benchmark fits comfortably inside the smallest post-boot usable energy
window (Section 5.3's feasibility requirement), and (b) a typical
activation sees on the order of one power failure, matching the failure
densities the paper's Table 2b implies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.capacitor import Capacitor
from repro.energy.harvester import NoisyHarvester
from repro.runtime.supply import EnergyDrivenSupply


@dataclass(frozen=True)
class EnergyProfile:
    """One simulated harvesting setup."""

    capacity: int = 3000
    low_threshold: int = 600
    #: storage fraction (of the usable band) at which the node reboots
    boot_fraction: tuple[float, float] = (0.65, 1.0)
    #: harvested energy units per kilocycle while off
    harvest_rate: int = 300
    #: multiplicative off-time jitter (RF burstiness)
    harvest_spread: float = 3.0

    def make_supply(self, seed: int = 0) -> EnergyDrivenSupply:
        return EnergyDrivenSupply(
            capacitor=Capacitor(self.capacity, self.low_threshold),
            harvester=NoisyHarvester(
                self.harvest_rate, seed=seed, spread=self.harvest_spread
            ),
            boot_fraction=self.boot_fraction,
            seed=seed + 1,
        )


#: The default testbed used by Figures 8 and Table 2b.
STANDARD_PROFILE = EnergyProfile()

#: Default logical-time budget for repeated-activation experiments; plays
#: the role of the paper's fixed 100-second window.
STANDARD_BUDGET_CYCLES = 400_000

#: Activations used to average continuous-power runtimes (Figure 7).
CONTINUOUS_ACTIVATIONS = 40
