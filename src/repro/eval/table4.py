"""Table 4: modeled LoC changes to enable correct execution, per system.

Applies the Section 7.4 effort models (:mod:`repro.baselines.effort`) to
each benchmark's annotation shape and prints our value next to the paper's
for every cell.  The shape that matters: Ocelot needs the fewest changes
everywhere, with TICS and Samoyed multiples higher.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import BENCHMARKS
from repro.baselines.effort import ocelot_effort, samoyed_effort, tics_effort
from repro.eval.report import Table


@dataclass
class Table4Row:
    app: str
    ours: dict[str, int]
    paper: dict[str, int]


def measure_table4() -> list[Table4Row]:
    rows: list[Table4Row] = []
    for meta in BENCHMARKS.values():
        rows.append(
            Table4Row(
                app=meta.name,
                ours={
                    "ocelot": ocelot_effort(meta),
                    "tics": tics_effort(meta),
                    "samoyed": samoyed_effort(meta),
                },
                paper=dict(meta.paper_effort),
            )
        )
    return rows


def table4(rows: list[Table4Row] | None = None) -> Table:
    rows = rows if rows is not None else measure_table4()
    table = Table(
        title="Table 4: Modeled LoC changes (ours / paper)",
        headers=["App", "Ocelot", "TICS", "Samoyed"],
    )
    for row in rows:
        table.add_row(
            row.app,
            f"{row.ours['ocelot']} / {row.paper['ocelot']}",
            f"{row.ours['tics']} / {row.paper['tics']}",
            f"{row.ours['samoyed']} / {row.paper['samoyed']}",
        )
    table.add_note(
        "Ocelot needs no real-time reasoning and no dataflow reasoning; "
        "TICS needs real-time, Samoyed needs dataflow (paper Table 4)"
    )
    return table


if __name__ == "__main__":
    print(table4().render_text())
