"""Region-size report: inferred regions vs. naive manual placement.

Section 8 argues that a programmer who knows the timing invariants will
still tend to over-approximate when placing regions by hand -- "they may
simply wrap the entire function in an atomic region", paying re-execution
and undo-log costs for code with no timing constraint, and possibly
exceeding the energy buffer (Figure 10).

This report quantifies the argument on the six benchmarks: for each app it
compares Ocelot's inferred regions against the naive strategy of wrapping
every function that contains a policy operation, reporting extent sizes
(instructions), undo-log weights (words), and worst-case energy bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import BENCHMARKS
from repro.core.feasibility import bound_regions
from repro.core.pipeline import PipelineOptions, compile_source
from repro.eval.report import Table
from repro.lang import ast as lang_ast
from repro.lang.parser import parse_program


def _wrap_whole_functions(source: str, functions: set[str]) -> lang_ast.Program:
    """The naive programmer: each listed function body becomes one region."""
    program = parse_program(source)
    for name in functions:
        func = program.functions[name]
        body_regions: list[lang_ast.Stmt] = []
        tail: list[lang_ast.Stmt] = []
        for stmt in func.body:
            if isinstance(stmt, lang_ast.Return):
                tail.append(stmt)
            else:
                body_regions.append(stmt)
        func.body = [lang_ast.Atomic(body=body_regions)] + tail
    lang_ast.assign_labels(program)
    return program


@dataclass
class RegionsRow:
    app: str
    inferred_regions: int
    inferred_max_extent: int
    inferred_max_cycles: int
    naive_max_extent: int
    naive_max_cycles: int

    @property
    def extent_ratio(self) -> float:
        if self.inferred_max_extent == 0:
            return 0.0
        return self.naive_max_extent / self.inferred_max_extent


def measure_regions_report() -> list[RegionsRow]:
    from repro.core.pipeline import compile_program

    rows: list[RegionsRow] = []
    for name, meta in BENCHMARKS.items():
        costs = meta.cost_model()
        compiled = compile_source(meta.source, "ocelot")
        inferred_ids = {r.region for r in compiled.regions}
        inferred_infos = [
            i for i in compiled.region_infos if i.region in inferred_ids
        ]
        inferred_bounds = [
            b
            for b in bound_regions(compiled.module, costs)
            if b.region in inferred_ids and b.bounded
        ]

        # Naive placement: wrap every function containing a policy op.
        op_functions = {
            chain.op.func
            for policy in compiled.policies.all_policies()
            for chain in policy.ops()
        } & set(compiled.module.functions)
        # Wrapping must happen at source level; restrict to functions that
        # exist in the source program (all do).
        naive_program = _wrap_whole_functions(meta.source, op_functions)
        naive = compile_program(
            naive_program,
            "ocelot",
            options=PipelineOptions(strict=False),
        )
        naive_manual = [
            i
            for i in naive.region_infos
            if _origin_of(naive.module, i.region) == "manual"
        ]
        naive_bounds = [
            b
            for b in bound_regions(naive.module, costs)
            if any(i.region == b.region for i in naive_manual) and b.bounded
        ]

        rows.append(
            RegionsRow(
                app=name,
                inferred_regions=len(inferred_infos),
                inferred_max_extent=max(
                    (len(i.instrs) for i in inferred_infos), default=0
                ),
                inferred_max_cycles=max(
                    (b.cycles or 0 for b in inferred_bounds), default=0
                ),
                naive_max_extent=max(
                    (len(i.instrs) for i in naive_manual), default=0
                ),
                naive_max_cycles=max(
                    (b.cycles or 0 for b in naive_bounds), default=0
                ),
            )
        )
    return rows


def _origin_of(module, region: str) -> str:
    from repro.ir import instructions as ir

    for instr in module.all_instrs():
        if isinstance(instr, ir.AtomicStart) and instr.region == region:
            return instr.origin
    return "?"


def regions_report(rows: list[RegionsRow] | None = None) -> Table:
    rows = rows if rows is not None else measure_regions_report()
    table = Table(
        title="Region sizes: Ocelot-inferred vs naive whole-function regions",
        headers=[
            "App",
            "inferred #",
            "max extent (instrs)",
            "max cycles",
            "naive extent",
            "naive cycles",
            "naive/inferred",
        ],
    )
    for row in rows:
        table.add_row(
            row.app,
            row.inferred_regions,
            row.inferred_max_extent,
            row.inferred_max_cycles,
            row.naive_max_extent,
            row.naive_max_cycles,
            row.extent_ratio,
        )
    table.add_note(
        "Section 8: naive regions include unconstrained processing; if "
        "sampling plus processing exceeds the buffer, the naive program "
        "cannot complete while the Ocelot program can"
    )
    return table


if __name__ == "__main__":
    print(regions_report().render_text())
