"""Shared builds of the six benchmarks in all three configurations.

Builds come from the content-addressed :data:`repro.core.cache.GLOBAL_CACHE`,
so the CLI, the campaign engine, the table/figure modules, and the
benchmarks all reuse the same compiled programs within one process.
``config`` arguments accept a registered configuration name or a
:class:`~repro.core.passes.BuildConfig` instance.
"""

from __future__ import annotations

from repro.apps import BENCHMARKS, BenchmarkMeta
from repro.core.cache import GLOBAL_CACHE
from repro.core.pipeline import CONFIGS, CompiledProgram, ConfigLike


def build(name: str, config: ConfigLike) -> CompiledProgram:
    meta = BENCHMARKS[name]
    return GLOBAL_CACHE.get_or_compile(meta.source, config)


def all_builds(name: str) -> dict[str, CompiledProgram]:
    return {config: build(name, config) for config in CONFIGS}


def meta_of(name: str) -> BenchmarkMeta:
    return BENCHMARKS[name]
