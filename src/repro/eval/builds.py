"""Shared, cached builds of the six benchmarks in all three configurations."""

from __future__ import annotations

from functools import lru_cache

from repro.apps import BENCHMARKS, BenchmarkMeta
from repro.core.pipeline import CONFIGS, CompiledProgram, compile_source


@lru_cache(maxsize=None)
def build(name: str, config: str) -> CompiledProgram:
    meta = BENCHMARKS[name]
    return compile_source(meta.source, config=config)


def all_builds(name: str) -> dict[str, CompiledProgram]:
    return {config: build(name, config) for config in CONFIGS}


def meta_of(name: str) -> BenchmarkMeta:
    return BENCHMARKS[name]
