"""Command-line interface for the Ocelot toolchain.

Subcommands::

    python -m repro compile FILE      # compile; show regions / IR / policies
    python -m repro build TARGET      # compile; dump any stage artifact
    python -m repro check FILE        # checker mode on manual regions
    python -m repro run TARGET        # simulate an execution
    python -m repro trace TARGET      # run + export a Chrome-trace timeline
    python -m repro explain TARGET    # run + violation forensics report
    python -m repro verify TARGET     # bounded power-failure model checking
    python -m repro feasibility FILE  # Section 5.3 energy-feasibility report
    python -m repro eval              # regenerate the paper's tables/figures
    python -m repro campaign SPEC     # run a declarative evaluation campaign
    python -m repro fleet SPEC        # simulate a multi-device fleet

Every subcommand takes ``--verbose/--quiet`` (status output goes through
``repro.telemetry.logging``); ``run``/``trace``/``explain``/``verify``/
``campaign``/``fleet`` take ``--metrics-out PATH`` to dump the shared
metrics-registry JSON (schema ``repro-metrics-1``).

Programs are modeling-language source files (see ``examples/`` and
``src/repro/apps/`` for reference programs); ``build``, ``run``, and
``verify`` also accept a registered benchmark name.  ``--config`` accepts any registered build
configuration and ``--emit`` any registered stage artifact -- both lists
are derived from their registries (:mod:`repro.core.passes`), including
the check-optimizer artifacts ``dataflow`` and ``opt`` of the ``*-opt``
configurations.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.policies import build_policies
from repro.analysis.taint import analyze_module
from repro.core.cache import compile_cached
from repro.core.checker import check_atomic_regions
from repro.core.feasibility import check_feasibility, profile_usable_energy
from repro.core.passes import (
    BuildConfig,
    UnknownConfigError,
    artifact_names,
    config_names,
    emit_artifact,
    get_config,
)
from repro.core.pipeline import PipelineOptions
from repro.eval.profiles import STANDARD_PROFILE
from repro.ir.lowering import lower_program
from repro.ir.printer import print_module
from repro.lang.parser import parse_program
from repro.runtime.engine import ENGINE_FAST, ENGINES
from repro.runtime.harness import run_once
from repro.runtime.supply import ContinuousPower
from repro.sensors.environment import Environment, bind_signal_specs, constant
from repro import telemetry

_log = telemetry.get_logger("cli")


def _read_source(path: str) -> str:
    return Path(path).read_text()


def _write_metrics(args: argparse.Namespace, command: str) -> None:
    """Dump the process-wide registry if ``--metrics-out`` was given."""
    path = getattr(args, "metrics_out", None)
    if path:
        telemetry.METRICS.write(path, command=command)
        _log.info(f"metrics written to {path}")


def _resolve_config(name: str) -> BuildConfig:
    """A registered config, or a one-line SystemExit listing all names."""
    try:
        return get_config(name)
    except UnknownConfigError as exc:
        raise SystemExit(str(exc)) from None


def _compile(path: str, config: str):
    """Compile a file through the process-wide compile cache."""
    return compile_cached(
        _read_source(path),
        config=_resolve_config(config),
        options=PipelineOptions(strict=False),
    )


def _parse_env(module_channels: list[str], specs: list[str]) -> Environment:
    """Build an environment from ``--set ch=value`` / ``ch=a,b:dwell`` specs.

    Spec binding shares :func:`repro.sensors.environment.bind_signal_specs`
    with the campaign engine's environment overrides.
    """
    env = Environment()
    bound: set[str] = set()
    for spec in specs:
        if "=" not in spec:
            raise SystemExit(
                f"bad --set '{spec}': expected CHANNEL=VALUE or "
                "CHANNEL=L1,L2,...:DWELL"
            )
        channel, _, value = spec.partition("=")
        try:
            bind_signal_specs(env, [(channel, value)])
        except ValueError as exc:
            raise SystemExit(f"bad --set '{spec}': {exc}") from None
        bound.add(channel)
    for channel in module_channels:
        if channel not in bound:
            env.bind(channel, constant(0))
    return env


def _resolve_target_source(target: str) -> str:
    """Program text for ``target``: a source file path, or a registered
    benchmark name when no such file exists."""
    from repro.apps import BENCHMARKS

    if target in BENCHMARKS and not Path(target).exists():
        return BENCHMARKS[target].source
    try:
        return _read_source(target)
    except OSError as exc:
        known = ", ".join(BENCHMARKS)
        raise SystemExit(
            f"cannot read '{target}' (not a file; known benchmark "
            f"names: {known}): {exc}"
        ) from None


def _compile_target(target: str, config: str):
    """Compile a file-or-benchmark target through the compile cache."""
    return compile_cached(
        _resolve_target_source(target),
        config=_resolve_config(config),
        options=PipelineOptions(strict=False),
    )


def cmd_compile(args: argparse.Namespace) -> int:
    compiled = _compile(args.file, args.config)
    print(f"config      : {compiled.config}")
    print(f"functions   : {len(compiled.module.functions)}")
    print(f"policies    : {len(compiled.policies)}")
    print(f"checker     : {'PASS' if compiled.check.ok else 'FAIL'}")
    for failure in compiled.check.failures:
        print(f"  ! {failure}")
    if args.regions or not (args.ir or args.policies):
        for region in compiled.regions:
            print(
                f"region {region.region} [{region.pid}] in {region.func}: "
                f"{region.start_block}[{region.start_index}] .. "
                f"{region.end_block}[{region.end_index}]"
            )
        for info in compiled.region_infos:
            print(
                f"  {info.region}: omega={sorted(info.omega)} "
                f"war={sorted(info.war)} emw={sorted(info.emw)}"
            )
    if args.policies:
        for policy in compiled.policies.all_policies():
            print(f"policy {policy.pid} [{policy.kind}]")
            for chain in sorted(policy.inputs):
                print(f"  input: {chain}")
    if args.ir:
        print(print_module(compiled.module))
    enforcing = _resolve_config(args.config).enforces
    return 0 if compiled.check.ok or not enforcing else 1


def cmd_build(args: argparse.Namespace) -> int:
    """Compile and dump stage artifacts (``--emit ir|taint|timings|...``)."""
    source = _resolve_target_source(args.target)
    config = _resolve_config(args.config)
    compiled = compile_cached(
        source, config=config, options=PipelineOptions(strict=False)
    )
    kinds: list[str] = []
    for entry in args.emit or ["summary"]:
        kinds.extend(k.strip() for k in entry.split(",") if k.strip())
    for kind in kinds:
        try:
            text = emit_artifact(compiled, kind)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        if len(kinds) > 1:
            print(f"== {kind} ==")
        print(text)
    return 0 if compiled.check.ok or not config.enforces else 1


def cmd_check(args: argparse.Namespace) -> int:
    """Checker mode (Section 8): validate manual regions, insert nothing."""
    module = lower_program(parse_program(_read_source(args.file)))
    taint = analyze_module(module)
    policies = build_policies(taint)
    report = check_atomic_regions(module, policies)
    if report.ok:
        print("PASS: every policy is enforced by an existing atomic region")
        for pid, extent in sorted(report.policy_extents.items()):
            print(f"  {pid}: region opened at {extent[1]}")
        return 0
    print("FAIL:")
    for failure in report.failures:
        print(f"  {failure}")
    return 1


def _load_schedule(path: str):
    from repro.verify import Schedule, ScheduleError

    try:
        return Schedule.from_json(Path(path).read_text())
    except OSError as exc:
        raise SystemExit(f"cannot read schedule '{path}': {exc}") from None
    except ScheduleError as exc:
        raise SystemExit(f"bad schedule '{path}': {exc}") from None


def cmd_run(args: argparse.Namespace) -> int:
    compiled = _compile_target(args.file, args.config)
    telemetry.absorb_pass_timings(telemetry.METRICS, compiled)
    env = _parse_env(compiled.module.channels, args.set or [])
    if args.schedule:
        from repro.verify import replay_schedule

        schedule = _load_schedule(args.schedule)
        result = replay_schedule(
            compiled, env, schedule, engine=args.engine,
            stop_at_violation=False,
        )
        telemetry.absorb_replay(telemetry.METRICS, result)
        _write_metrics(args, "run")
        print(
            f"schedule    : {len(schedule.points)} failure point(s), "
            f"{schedule.activations} activation(s)"
        )
        print(f"activations : {result.activations}")
        print(f"completed   : {result.completed}")
        print(f"all fired   : {result.all_fired}")
        print(f"violations  : {len(result.violations)}")
        for violation in result.violations:
            missing = ", ".join(str(c) for c in violation.missing)
            print(
                f"  [tau={violation.tau}] {violation.kind} {violation.pid} "
                f"at {violation.uid.func}:{violation.uid.label} "
                f"missing {{{missing}}}"
            )
        print(f"final tau   : {result.final_tau}")
        return 0 if result.completed else 1
    supply = (
        STANDARD_PROFILE.make_supply(seed=args.seed)
        if args.intermittent
        else ContinuousPower()
    )
    result = run_once(compiled, env, supply, engine=args.engine)
    telemetry.absorb_run(telemetry.METRICS, result)
    _write_metrics(args, "run")
    print(f"completed   : {result.stats.completed}")
    print(f"cycles on   : {result.stats.cycles_on}")
    print(f"cycles off  : {result.stats.cycles_off}")
    print(f"reboots     : {result.stats.reboots}")
    print(f"violations  : {result.stats.violations}")
    for output in result.trace.outputs:
        values = ", ".join(str(v) for v in output.values)
        print(f"  [tau={output.tau}] {output.op}({values})")
    if args.trace:
        for event in result.trace:
            print(f"  {event}")
    return 0 if result.stats.completed else 1


def _traces_for(args: argparse.Namespace, compiled, env):
    """Execute with run-style flags; (per-activation traces, completed)."""
    if getattr(args, "schedule", None):
        from repro.verify import replay_schedule

        schedule = _load_schedule(args.schedule)
        result = replay_schedule(
            compiled, env, schedule, engine=args.engine,
            stop_at_violation=False,
        )
        telemetry.absorb_replay(telemetry.METRICS, result)
        return list(result.traces), result.completed
    supply = (
        STANDARD_PROFILE.make_supply(seed=args.seed)
        if args.intermittent
        else ContinuousPower()
    )
    result = run_once(compiled, env, supply, engine=args.engine)
    telemetry.absorb_run(telemetry.METRICS, result)
    return [result.trace], result.stats.completed


def cmd_trace(args: argparse.Namespace) -> int:
    """Run and export the timeline as Chrome-trace/Perfetto JSON.

    The sim-time timeline (``ts`` = tau) is derived from the observation
    trace after the run, so the default output is fully deterministic:
    same target + seed -> byte-identical JSON.  ``--wall`` adds the
    wall-clock spans recorded by the live tracer as a second process.
    """
    compiled = _compile_target(args.file, args.config)
    telemetry.absorb_pass_timings(telemetry.METRICS, compiled)
    env = _parse_env(compiled.module.channels, args.set or [])
    wall = telemetry.enable_tracing() if args.wall else None
    try:
        traces, completed = _traces_for(args, compiled, env)
    finally:
        telemetry.disable_tracing()
    document = telemetry.chrome_trace_json(
        traces, source=f"{args.file}/{args.config}", wall=wall
    )
    _write_metrics(args, "trace")
    if args.out:
        Path(args.out).write_text(document + "\n")
        events = sum(len(t.events) for t in traces)
        _log.info(
            f"trace written to {args.out} "
            f"({len(traces)} activation(s), {events} events)"
        )
    else:
        print(document)
    return 0 if completed else 1


def cmd_explain(args: argparse.Namespace) -> int:
    """Run and explain every detector firing causally.

    For each violation: the policy window it broke, the concrete sensor
    reads (channel, tau) that fed the declaration, which of them went
    missing across reboots (with staleness), and the provenance chains
    those inputs took to reach the policy.
    """
    compiled = _compile_target(args.file, args.config)
    telemetry.absorb_pass_timings(telemetry.METRICS, compiled)
    env = _parse_env(compiled.module.channels, args.set or [])
    traces, _completed = _traces_for(args, compiled, env)
    reports = telemetry.explain_traces(traces, compiled.policies)
    telemetry.METRICS.counter("run.violations_explained").inc(len(reports))
    _write_metrics(args, "explain")
    print(telemetry.render_reports(reports))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Bounded model checking: prove the bound or emit a counterexample."""
    import json

    from repro.verify import VerifyBounds, verify_program

    compiled = _compile_target(args.target, args.config)
    env = _parse_env(compiled.module.channels, args.set or [])
    bounds = VerifyBounds(
        max_activations=args.max_activations,
        max_failures=args.max_failures,
        max_cycles=args.max_cycles,
        max_states=args.max_states,
        off_cycles=args.off_cycles,
    )
    seed_uids: frozenset = frozenset()
    relevant_bits = None
    if args.guided:
        # Static verdicts steer the search: DOOMED sites jump the
        # frontier queue, bits only SAFE checks read widen the no-op
        # skip.  Off by default -- the lint analysis is not free.
        from repro.analysis.staleness import analyze_staleness

        report = analyze_staleness(compiled, [("cli", env)])
        seed_uids = report.doomed_uids()
        relevant_bits = report.relevant_bits()
    verdict = verify_program(
        compiled,
        env,
        bounds=bounds,
        engine=args.engine,
        prune=not args.no_prune,
        record_graph=args.emit_graph is not None,
        target=args.target,
        config=args.config,
        seed_uids=seed_uids,
        relevant_bits=relevant_bits,
    )
    telemetry.absorb_pass_timings(telemetry.METRICS, compiled)
    telemetry.absorb_verify(telemetry.METRICS, verdict)
    _write_metrics(args, "verify")
    print(verdict.certificate())
    if verdict.counterexample is not None and args.schedule_out:
        Path(args.schedule_out).write_text(
            verdict.counterexample.to_json() + "\n"
        )
        _log.info(f"schedule written to {args.schedule_out}")
    if args.emit_graph is not None and verdict.graph is not None:
        graph = dict(verdict.graph)
        graph["stats"] = verdict.stats.to_dict()
        if verdict.forensics:
            graph["forensics"] = [r.to_dict() for r in verdict.forensics]
        Path(args.emit_graph).write_text(json.dumps(graph, indent=2) + "\n")
        _log.info(f"graph written to {args.emit_graph}")
    return verdict.exit_code


def cmd_lint(args: argparse.Namespace) -> int:
    """Static staleness linting (no execution beyond one probe run).

    Classifies every baseline detector check as SAFE (can never fire),
    DOOMED (fires whenever its site executes; verifier-confirmable
    witness attached), or ENV-DEPENDENT (cycle windows and the supply
    threshold that flips the verdict).  Exit code gates on ``--fail-on``.
    """
    import json

    from repro.analysis.staleness import analyze_staleness

    compiled = _compile_target(args.target, args.config)
    env = _parse_env(compiled.module.channels, args.set or [])
    report = analyze_staleness(
        compiled,
        [("cli", env)],
        window=args.window,
    )
    telemetry.absorb_pass_timings(telemetry.METRICS, compiled)
    counts = report.counts()
    for verdict, count in counts.items():
        telemetry.METRICS.counter(f"lint.{verdict}").inc(count)
    _write_metrics(args, "lint")
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text())
    return report.exit_code(args.fail_on)


def cmd_feasibility(args: argparse.Namespace) -> int:
    compiled = _compile(args.file, args.config)
    usable = args.usable or profile_usable_energy(STANDARD_PROFILE)
    report = check_feasibility(compiled.module, usable)
    print(f"usable energy window: {usable}")
    for bound in report.bounds:
        if bound.bounded:
            verdict = "ok" if bound not in report.infeasible else "INFEASIBLE"
            print(
                f"  {bound.region}: worst-case {bound.cycles} cycles "
                f"(entry {bound.entry_cycles}, omega {bound.omega_words} "
                f"words) -> {verdict}"
            )
        else:
            print(f"  {bound.region}: UNKNOWN ({bound.reason})")
    print("verdict:", "PASS" if report.ok else "FAIL")
    return 0 if report.ok else 1


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.eval.campaign import (
        CampaignError,
        CampaignSpec,
        lint_table,
        run_campaign,
    )

    if args.jobs is not None and args.jobs <= 0:
        raise SystemExit(f"bad --jobs {args.jobs}: need a positive count")
    try:
        text = _read_source(args.spec)
    except OSError as exc:
        raise SystemExit(f"cannot read campaign spec: {exc}") from None
    try:
        spec = CampaignSpec.from_json(text)
        if args.engine is not None and args.engine != spec.engine:
            import dataclasses

            spec = dataclasses.replace(spec, engine=args.engine)
    except CampaignError as exc:
        raise SystemExit(f"bad campaign spec '{args.spec}': {exc}") from None
    if args.lint:
        print(lint_table(spec).render_text())
    executor = "multiprocess" if args.parallel else "serial"
    result = run_campaign(spec, executor, processes=args.jobs)
    telemetry.absorb_campaign(telemetry.METRICS, result)
    _write_metrics(args, "campaign")
    report = result.to_json()
    if args.output:
        Path(args.output).write_text(report + "\n")
        print(result.table().render_text())
        _log.info(f"report written to {args.output}")
    else:
        _log.info(result.table().render_text())
        print(report)
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import (
        FleetError,
        FleetSpec,
        duty_table,
        histogram_table,
        run_fleet,
    )

    if args.jobs is not None and args.jobs <= 0:
        raise SystemExit(f"bad --jobs {args.jobs}: need a positive count")
    try:
        text = _read_source(args.spec)
    except OSError as exc:
        raise SystemExit(f"cannot read fleet spec: {exc}") from None
    try:
        spec = FleetSpec.from_json(text)
        if args.devices is not None:
            spec = spec.with_total_devices(args.devices)
    except FleetError as exc:
        raise SystemExit(f"bad fleet spec '{args.spec}': {exc}") from None
    if args.executor is not None:
        if args.parallel and args.executor != "sharded":
            raise SystemExit(
                f"--parallel conflicts with --executor {args.executor}; "
                "pick one"
            )
        executor = args.executor
    else:
        executor = "sharded" if args.parallel else "serial"
    try:
        result = run_fleet(
            spec,
            executor,
            processes=args.jobs,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            engine=args.engine,
            memo_dir=args.memo_dir,
            supply_buckets=args.supply_buckets,
        )
    except FleetError as exc:
        raise SystemExit(str(exc)) from None
    tables = [result.table()]
    if args.histograms:
        tables += [histogram_table(result), duty_table(result)]
    telemetry.absorb_fleet(telemetry.METRICS, result)
    _write_metrics(args, "fleet")
    rendered = "\n\n".join(t.render_text() for t in tables)
    report = result.to_json()
    if args.output:
        Path(args.output).write_text(report + "\n")
        print(rendered)
        _log.info(f"report written to {args.output}")
    else:
        _log.info(rendered)
        print(report)
    return 0


def cmd_eval(args: argparse.Namespace) -> int:
    from repro.eval.runner import main as eval_main

    forwarded = []
    if args.markdown:
        forwarded.append("--markdown")
    if args.parallel:
        forwarded.append("--parallel")
    if args.jobs is not None:
        forwarded.extend(["--jobs", str(args.jobs)])
    forwarded.extend(["--seed", str(args.seed)])
    return eval_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_config_flag(p: argparse.ArgumentParser) -> None:
        # Not argparse choices: the registry can grow at import time, and
        # unknown values get a one-line error listing registered names.
        p.add_argument(
            "--config",
            default="ocelot",
            metavar="NAME",
            help=f"build configuration ({', '.join(config_names())})",
        )

    def add_metrics_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--metrics-out",
            metavar="PATH",
            default=None,
            help="write the telemetry metrics registry "
            f"({telemetry.METRICS_SCHEMA} JSON) here",
        )

    def add_run_style_flags(p: argparse.ArgumentParser) -> None:
        """The execution flags `run`, `trace`, and `explain` share."""
        add_config_flag(p)
        p.add_argument(
            "--set",
            action="append",
            metavar="CH=VALUE | CH=L1,L2,...:DWELL",
            help="bind a sensor channel (constant or stepping signal)",
        )
        p.add_argument("--intermittent", action="store_true")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--schedule",
            metavar="PATH",
            default=None,
            help="replay a failure-schedule JSON (e.g. a verify "
            "counterexample) instead of simulating a supply",
        )

    def add_engine_flag(
        p: argparse.ArgumentParser,
        default: str | None = ENGINE_FAST,
        overrides_spec: bool = False,
    ) -> None:
        extra = " (overrides the spec's engine)" if overrides_spec else ""
        p.add_argument(
            "--engine",
            choices=ENGINES,
            default=default,
            help=(
                "execution engine: 'fast' is the pre-decoded core, "
                f"'reference' the Appendix H semantics oracle{extra}"
            ),
        )

    p_compile = sub.add_parser("compile", help="compile a program")
    p_compile.add_argument("file")
    add_config_flag(p_compile)
    p_compile.add_argument("--ir", action="store_true", help="print the IR")
    p_compile.add_argument("--regions", action="store_true")
    p_compile.add_argument("--policies", action="store_true")
    p_compile.set_defaults(func=cmd_compile)

    p_build = sub.add_parser(
        "build", help="compile and dump intermediate stage artifacts"
    )
    p_build.add_argument(
        "target", help="source file path or registered benchmark name"
    )
    add_config_flag(p_build)
    p_build.add_argument(
        "--emit",
        action="append",
        metavar="KIND[,KIND...]",
        # Derived from the artifact registry: a new stage artifact shows
        # up here (and in the unknown-artifact error) automatically.
        help=f"stage artifact(s) to dump: {', '.join(artifact_names())} "
        "(default: summary; repeatable)",
    )
    p_build.set_defaults(func=cmd_build)

    p_check = sub.add_parser("check", help="checker mode for manual regions")
    p_check.add_argument("file")
    p_check.set_defaults(func=cmd_check)

    p_run = sub.add_parser("run", help="simulate one activation")
    p_run.add_argument(
        "file", help="source file path or registered benchmark name"
    )
    add_run_style_flags(p_run)
    p_run.add_argument("--trace", action="store_true", help="dump all events")
    add_engine_flag(p_run)
    add_metrics_flag(p_run)
    p_run.set_defaults(func=cmd_run)

    p_trace = sub.add_parser(
        "trace",
        help="run and export a Chrome-trace/Perfetto timeline (ts = tau)",
    )
    p_trace.add_argument(
        "file", help="source file path or registered benchmark name"
    )
    add_run_style_flags(p_trace)
    p_trace.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the trace JSON here (default: stdout)",
    )
    p_trace.add_argument(
        "--wall",
        action="store_true",
        help="also record wall-clock engine spans as a second process "
        "(output is no longer byte-deterministic)",
    )
    add_engine_flag(p_trace)
    add_metrics_flag(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    p_explain = sub.add_parser(
        "explain",
        help="run and report why each freshness/consistency check fired",
    )
    p_explain.add_argument(
        "file", help="source file path or registered benchmark name"
    )
    add_run_style_flags(p_explain)
    add_engine_flag(p_explain)
    add_metrics_flag(p_explain)
    p_explain.set_defaults(func=cmd_explain)

    p_verify = sub.add_parser(
        "verify",
        help="exhaustively model-check power-failure schedules in a bound",
    )
    p_verify.add_argument(
        "target", help="source file path or registered benchmark name"
    )
    add_config_flag(p_verify)
    p_verify.add_argument(
        "--set",
        action="append",
        metavar="CH=VALUE | CH=L1,L2,...:DWELL",
        help="bind a sensor channel (constant or stepping signal)",
    )
    p_verify.add_argument(
        "--max-activations", type=int, default=1, metavar="N",
        help="activations in the verified prefix (default: 1)",
    )
    p_verify.add_argument(
        "--max-failures", type=int, default=2, metavar="N",
        help="failures per explored schedule (default: 2)",
    )
    p_verify.add_argument(
        "--max-cycles", type=int, default=200_000, metavar="N",
        help="per-activation cycle budget of the bound (default: 200000)",
    )
    p_verify.add_argument(
        "--max-states", type=int, default=100_000, metavar="N",
        help="fork-state cap; hitting it degrades a proof to "
        "bound-exhausted (default: 100000)",
    )
    p_verify.add_argument(
        "--off-cycles", type=int, default=10_000, metavar="N",
        help="recharge time charged per injected failure (default: 10000)",
    )
    p_verify.add_argument(
        "--no-prune",
        action="store_true",
        help="disable analysis-guided pruning (explore every fork)",
    )
    p_verify.add_argument(
        "--schedule-out",
        metavar="PATH",
        default=None,
        help="write a counterexample schedule JSON here (replayable via "
        "'run --schedule')",
    )
    p_verify.add_argument(
        "--emit-graph",
        metavar="PATH",
        default=None,
        help="write the exploration graph (nodes, fork edges, stats) as JSON",
    )
    p_verify.add_argument(
        "--guided",
        action="store_true",
        help="seed and prune the search with the static staleness "
        "verdicts (see 'repro lint')",
    )
    add_engine_flag(p_verify)
    add_metrics_flag(p_verify)
    p_verify.set_defaults(func=cmd_verify)

    p_lint = sub.add_parser(
        "lint",
        help="statically classify every check as safe, doomed, or "
        "environment-dependent",
    )
    p_lint.add_argument(
        "target", help="source file path or registered benchmark name"
    )
    add_config_flag(p_lint)
    p_lint.add_argument(
        "--set",
        action="append",
        metavar="CH=VALUE | CH=L1,L2,...:DWELL",
        help="bind a sensor channel (constant or stepping signal)",
    )
    p_lint.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="CYCLES",
        help="usable-energy window in cycles (default: the standard "
        "profile's guaranteed post-boot budget)",
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="diagnostic output format (default: text)",
    )
    p_lint.add_argument(
        "--fail-on",
        choices=("error", "warning", "never"),
        default="error",
        help="lowest severity that fails the gate (default: error, "
        "i.e. any DOOMED check)",
    )
    add_metrics_flag(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    p_feas = sub.add_parser("feasibility", help="region energy bounds")
    p_feas.add_argument("file")
    add_config_flag(p_feas)
    p_feas.add_argument("--usable", type=int, default=None)
    p_feas.set_defaults(func=cmd_feasibility)

    p_eval = sub.add_parser("eval", help="regenerate the paper's evaluation")
    p_eval.add_argument("--markdown", action="store_true")
    p_eval.add_argument("--seed", type=int, default=0)
    p_eval.add_argument("--parallel", action="store_true")
    p_eval.add_argument("--jobs", type=int, default=None, metavar="N")
    p_eval.set_defaults(func=cmd_eval)

    p_campaign = sub.add_parser(
        "campaign", help="run a declarative evaluation campaign"
    )
    p_campaign.add_argument("spec", help="JSON campaign spec file")
    p_campaign.add_argument(
        "--parallel",
        action="store_true",
        help="use the multiprocessing executor",
    )
    p_campaign.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --parallel (default: one per core)",
    )
    p_campaign.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the JSON report here (default: stdout)",
    )
    p_campaign.add_argument(
        "--lint",
        action="store_true",
        help="print static staleness verdict counts per (app, config) "
        "cell before running",
    )
    add_engine_flag(p_campaign, default=None, overrides_spec=True)
    add_metrics_flag(p_campaign)
    p_campaign.set_defaults(func=cmd_campaign)

    p_fleet = sub.add_parser(
        "fleet", help="simulate a multi-device intermittent fleet"
    )
    p_fleet.add_argument("spec", help="JSON fleet spec file")
    p_fleet.add_argument(
        "--devices",
        type=int,
        default=None,
        metavar="N",
        help="rescale the fleet to exactly N devices (keeps the class mix)",
    )
    p_fleet.add_argument(
        "--executor",
        choices=("serial", "sharded", "vector"),
        default=None,
        help="fleet executor (vector = memoized batch execution; "
        "all three produce bit-identical aggregates)",
    )
    p_fleet.add_argument(
        "--parallel",
        action="store_true",
        help="use the sharded multiprocessing executor "
        "(shorthand for --executor sharded)",
    )
    p_fleet.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --parallel (default: one per core)",
    )
    p_fleet.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="checkpoint file: resumed if present, updated as devices finish",
    )
    p_fleet.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="K",
        help="devices per checkpoint chunk (default: 256 with --checkpoint)",
    )
    p_fleet.add_argument(
        "--memo-dir",
        metavar="DIR",
        default=None,
        help="persist the vector executor's activation memo here "
        "(requires --executor vector); re-runs start warm",
    )
    p_fleet.add_argument(
        "--supply-buckets",
        type=int,
        default=None,
        metavar="N",
        help="charge buckets for quantized supply memo keys on the "
        "vector executor (0 disables quantization; default 32)",
    )
    p_fleet.add_argument(
        "--histograms",
        action="store_true",
        help="also print violation and duty-cycle histograms",
    )
    p_fleet.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the JSON report here (default: stdout)",
    )
    add_engine_flag(p_fleet)
    add_metrics_flag(p_fleet)
    p_fleet.set_defaults(func=cmd_fleet)

    # Every subcommand controls status-output verbosity the same way.
    for p_sub in set(sub.choices.values()):
        group = p_sub.add_argument_group("output")
        group.add_argument(
            "-v",
            "--verbose",
            action="store_true",
            help="debug-level status output on stderr",
        )
        group.add_argument(
            "-q",
            "--quiet",
            action="store_true",
            help="suppress status output (warnings and errors only)",
        )

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    verbosity = 0
    if getattr(args, "verbose", False):
        verbosity = 1
    if getattr(args, "quiet", False):
        verbosity = -1
    telemetry.configure_logging(verbosity)
    telemetry.METRICS.clear()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
