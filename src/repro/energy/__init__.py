"""Energy substrate: capacitor, harvesters, and the instruction cost model.

Together with :class:`repro.runtime.supply.EnergyDrivenSupply` this stands
in for the Capybara board + PowerCast harvester of the paper's testbed.
"""

from repro.energy.capacitor import Capacitor, EnergyError
from repro.energy.costs import DEFAULT_COSTS, CostModel
from repro.energy.harvester import ConstantHarvester, NoisyHarvester, TraceHarvester
from repro.energy.seeds import derive_seed

__all__ = [
    "Capacitor",
    "EnergyError",
    "DEFAULT_COSTS",
    "CostModel",
    "ConstantHarvester",
    "NoisyHarvester",
    "TraceHarvester",
    "derive_seed",
]
