"""Per-instruction cost model.

Replaces the paper's MSP430 + Capybara measurements with an explicit cycle
and energy model.  Absolute numbers are arbitrary; what matters for the
reproduction is the *structure* the paper's results depend on:

* sensor reads and radio/UART outputs are much slower than ALU work,
* a JIT checkpoint costs time proportional to live volatile state,
* an atomic region entry costs a volatile save plus an undo-log write
  proportional to the checkpointed nonvolatile set omega (backing a large
  structure is what makes CEM's Atomics-only build ~2.5x slower, Section
  7.2),
* energy consumption is proportional to cycles (single supply rail).

Tuning knobs are dataclass fields so ablation benchmarks can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir import instructions as ir


@dataclass(frozen=True)
class CostModel:
    """Cycle costs per instruction class and per runtime action.

    ``input_costs`` overrides the sampling cost per channel: a
    photoresistor needs integration time, a thermometer an ADC conversion,
    while an accelerometer with a FIFO reads out in a few cycles.  The
    per-benchmark cost models in :mod:`repro.apps` use this to reflect
    each application's sensor mix.
    """

    alu: int = 1  # assign / branch / jump / skip
    input_op: int = 40  # default sensor sample (ADC settle + read)
    input_costs: dict[str, int] = None  # type: ignore[assignment]
    call: int = 2
    ret: int = 2
    output_op: int = 60  # UART/radio word
    annot: int = 0  # annotations erase to nothing
    #: JIT checkpoint: base + per volatile word
    ckpt_base: int = 20
    ckpt_per_word: int = 2
    #: atomic region entry: base + volatile save + undo-log per nv word
    region_base: int = 12
    region_per_volatile_word: int = 2
    region_per_nv_word: int = 3
    region_commit: int = 6
    region_inner: int = 1  # nested start/end bookkeeping
    restore: int = 10  # reboot context restore
    #: energy units consumed per cycle while on
    energy_per_cycle: int = 1

    def instr_cycles(self, instr: ir.Instr, work_value: int = 0) -> int:
        """Base cycles for one instruction (region costs handled separately)."""
        if isinstance(instr, ir.InputInstr):
            if self.input_costs and instr.channel in self.input_costs:
                return self.input_costs[instr.channel]
            return self.input_op
        if isinstance(instr, ir.OutputInstr):
            return self.output_op
        if isinstance(instr, ir.WorkInstr):
            return max(0, work_value)
        if isinstance(instr, ir.CallInstr):
            return self.call
        if isinstance(instr, ir.RetInstr):
            return self.ret
        if isinstance(instr, ir.AnnotInstr):
            return self.annot
        if isinstance(instr, (ir.AtomicStart, ir.AtomicEnd)):
            return 0  # charged via region_entry/commit below
        return self.alu

    def checkpoint_cycles(self, volatile_words: int) -> int:
        return self.ckpt_base + self.ckpt_per_word * volatile_words

    def region_entry_cycles(self, volatile_words: int, omega_words: int) -> int:
        return (
            self.region_base
            + self.region_per_volatile_word * volatile_words
            + self.region_per_nv_word * omega_words
        )

    def energy(self, cycles: int) -> int:
        return cycles * self.energy_per_cycle


DEFAULT_COSTS = CostModel()
