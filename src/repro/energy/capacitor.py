"""Energy storage: the capacitor / tiny battery of an energy-harvesting node.

The Capybara platform the paper targets monitors its storage with a
comparator and raises an interrupt at a configurable low threshold; the
firmware reserves enough headroom above "off" that a JIT checkpoint always
completes (Section 6.3, the Samoyed assumption).  The model mirrors that:

* ``capacity`` -- energy units stored when full,
* ``low_threshold`` -- the comparator trip point: crossing it delivers the
  low-power signal,
* the band between ``low_threshold`` and empty is the checkpoint reserve.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class EnergyError(Exception):
    """Raised when the reserve assumption is violated (checkpoint too big)."""


@dataclass
class Capacitor:
    capacity: int
    low_threshold: int
    level: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.low_threshold >= self.capacity:
            raise ValueError("low threshold must leave usable energy")
        if self.low_threshold < 0:
            raise ValueError("low threshold must be nonnegative")
        if self.level < 0:
            self.level = self.capacity

    @property
    def usable(self) -> int:
        """Energy available above the low-power trip point."""
        return max(0, self.level - self.low_threshold)

    def drain(self, energy: int) -> bool:
        """Consume ``energy``; return True when the comparator trips."""
        if energy < 0:
            raise ValueError("cannot drain negative energy")
        self.level -= energy
        return self.level <= self.low_threshold

    def drain_reserve(self, energy: int) -> None:
        """Spend checkpoint energy from the reserve band.

        The paper assumes the reserve suffices ("we assume that the extra
        energy gained from raising the trigger point will always be enough
        to complete the checkpoint"); we check the assumption and fail
        loudly when a configuration breaks it.
        """
        self.level -= energy
        if self.level < 0:
            raise EnergyError(
                f"checkpoint needed {energy} units but only "
                f"{energy + self.level} remained in reserve"
            )

    def refill(self) -> int:
        """Charge to full; return the deficit that had to be harvested."""
        deficit = self.capacity - self.level
        self.level = self.capacity
        return max(0, deficit)
