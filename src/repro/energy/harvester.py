"""Harvest sources: how fast the capacitor recharges while the node is off.

The paper harvests RF from a PowerCast transmitter 10 inches away; the
off-time between bursts is "dictated by the physical environment"
(Section 7.2).  We model a harvester as a seeded source of charging rates:
given the energy deficit, it answers how many cycles of off-time pass
before the node can boot again.

Determinism: every harvester is a pure function of its seed and call
index, so whole experiments replay bit-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass
class ConstantHarvester:
    """Fixed charging rate: ``rate`` energy units per kilocycle."""

    rate_per_kilocycle: int

    def off_cycles(self, deficit: int) -> int:
        if self.rate_per_kilocycle <= 0:
            raise ValueError("harvest rate must be positive")
        return max(1, (deficit * 1000) // self.rate_per_kilocycle)

    def spawn(self, seed: int) -> "ConstantHarvester":
        """A fresh harvester with the same rate (deterministic, no RNG)."""
        return ConstantHarvester(self.rate_per_kilocycle)

    def reseed(self, seed: int) -> None:
        """No RNG state to reset; kept for supply-spawning uniformity."""

    def memo_token(self):
        """Hashable identity of future behavior (see ``energy.segments``)."""
        return ("const", self.rate_per_kilocycle)

    def memo_capture(self):
        """Mutable state snapshot for memo replay; nothing to capture."""
        return None

    def memo_restore(self, state) -> None:
        """Apply a captured snapshot; stateless, so nothing to do."""


@dataclass
class NoisyHarvester:
    """RF-like harvester: base rate with multiplicative seeded jitter.

    Jitter spans ``[1/spread, spread]`` around the base rate, drawn from a
    seeded RNG -- successive power failures see different off-times, which
    is what makes intermittent violation timing vary (Table 2b).
    """

    rate_per_kilocycle: int
    seed: int = 0
    spread: float = 3.0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rate_per_kilocycle <= 0:
            raise ValueError("harvest rate must be positive")
        if self.spread < 1.0:
            raise ValueError("spread must be >= 1")
        self._rng = random.Random(self.seed)

    def off_cycles(self, deficit: int) -> int:
        factor = self._rng.uniform(1.0 / self.spread, self.spread)
        effective = max(1.0, self.rate_per_kilocycle * factor)
        return max(1, int(deficit * 1000 / effective))

    def spawn(self, seed: int) -> "NoisyHarvester":
        """A fresh harvester with the same rate/spread on stream ``seed``.

        Fleet simulations derive one such seed per device from the fleet
        root seed, so every device sees an independent but reproducible
        off-time sequence.
        """
        return NoisyHarvester(
            self.rate_per_kilocycle, seed=seed, spread=self.spread
        )

    def reseed(self, seed: int) -> None:
        """Restart this harvester's jitter stream from ``seed`` in place."""
        self.seed = seed
        self._rng = random.Random(seed)

    def memo_token(self):
        """Hashable identity of future behavior.

        With ``spread == 1.0`` the jitter factor is identically 1.0 --
        the RNG is drawn but its value cannot influence any off-time --
        so the stream position is excluded and devices on different
        per-device seeds still compare equal.  A real spread folds the
        exact RNG state in: only a device at the *same* stream position
        provably repeats.
        """
        if self.spread == 1.0:
            return ("noisy", self.rate_per_kilocycle, 1.0)
        return (
            "noisy",
            self.rate_per_kilocycle,
            self.spread,
            self._rng.getstate(),
        )

    def memo_capture(self):
        """Snapshot the jitter stream position for memo replay."""
        return self._rng.getstate()

    def memo_restore(self, state) -> None:
        """Rewind the jitter stream to a captured position."""
        self._rng.setstate(state)


@dataclass
class TraceHarvester:
    """Replay a fixed sequence of off-times (cycles), wrapping around.

    Useful for regression tests that need exact, hand-picked gaps.
    """

    off_times: list[int]
    _idx: int = 0

    def off_cycles(self, deficit: int) -> int:
        if not self.off_times:
            raise ValueError("empty off-time trace")
        value = self.off_times[self._idx % len(self.off_times)]
        self._idx += 1
        return max(1, value)

    def spawn(self, seed: int) -> "TraceHarvester":
        """A fresh replay of the same trace, rewound to the start."""
        return TraceHarvester(list(self.off_times))

    def reseed(self, seed: int) -> None:
        """Rewind the trace in place."""
        self._idx = 0

    def memo_token(self):
        """Hashable identity: the trace plus the replay position."""
        return ("trace", tuple(self.off_times), self._idx)

    def memo_capture(self):
        """Snapshot the replay position for memo replay."""
        return self._idx

    def memo_restore(self, state) -> None:
        """Rewind/advance the replay position to a captured snapshot."""
        self._idx = state
