"""Deterministic seed derivation for per-device randomness streams.

A fleet simulation instantiates thousands of supplies and harvesters
from one root seed; each instance needs an independent, reproducible
RNG stream.  Python's builtin ``hash`` is salted per process, so it
cannot key streams that must agree across processes (the sharded fleet
executor) and across invocations (checkpoint/resume).  ``derive_seed``
hashes its parts with BLAKE2b instead: a pure function of its inputs,
stable across processes, platforms, and Python versions.
"""

from __future__ import annotations

import hashlib

#: Version tag of the derivation scheme.  Bump whenever derived streams
#: change meaning (encoding, hash, digest size): consumers that persist
#: results keyed on derived streams -- fleet checkpoints, recorded
#: expected values -- fold this into their fingerprints so stale state
#: is rejected instead of silently mixing old and new streams.
SEED_SCHEME = "blake2b-lp1"


def derive_seed(*parts: object) -> int:
    """A 64-bit seed derived deterministically from ``parts``.

    ``derive_seed(7, "tire", 3)`` names one stream and
    ``derive_seed(7, "tire", 4)`` a statistically independent one.

    Each part is hashed as a length-prefixed byte string, so distinct
    part *tuples* can never collide: a naive separator join would make
    ``derive_seed("a:b")`` and ``derive_seed("a", "b")`` the same
    stream, which silently correlates devices whose names embed the
    separator.
    """
    hasher = hashlib.blake2b(digest_size=8)
    for part in parts:
        encoded = str(part).encode("utf-8")
        hasher.update(len(encoded).to_bytes(4, "big"))
        hasher.update(encoded)
    return int.from_bytes(hasher.digest(), "big")
