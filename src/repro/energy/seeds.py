"""Deterministic seed derivation for per-device randomness streams.

A fleet simulation instantiates thousands of supplies and harvesters
from one root seed; each instance needs an independent, reproducible
RNG stream.  Python's builtin ``hash`` is salted per process, so it
cannot key streams that must agree across processes (the sharded fleet
executor) and across invocations (checkpoint/resume).  ``derive_seed``
hashes its parts with BLAKE2b instead: a pure function of its inputs,
stable across processes, platforms, and Python versions.
"""

from __future__ import annotations

import hashlib


def derive_seed(*parts: object) -> int:
    """A 64-bit seed derived deterministically from ``parts``.

    Parts are joined by ``:`` after ``str()`` conversion, so
    ``derive_seed(7, "tire", 3)`` names one stream and
    ``derive_seed(7, "tire", 4)`` a statistically independent one.
    """
    key = ":".join(str(part) for part in parts)
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")
