"""Segment quantization: when do two devices provably repeat each other?

Surbatovich et al.'s formal account of intermittent execution ("Towards
a Formal Foundation of Intermittent Computing") characterizes an
activation's behavior as a function of its resume-point state plus the
input environment.  In our model that state splits into three parts,
each with its own equivalence token:

* **program** -- interned by the compile cache (one
  :class:`~repro.core.pipeline.CompiledProgram` per source x pipeline);
* **environment time** -- :meth:`Environment.segment_token
  <repro.sensors.environment.Environment.segment_token>` collapses
  logical times congruent modulo the environment's exact period;
* **supply** -- the ``memo_token`` hooks below: a hashable snapshot of
  everything the supply's future answers can depend on (charge level,
  failure schedule bookkeeping, RNG stream positions where randomness
  can actually reach an outcome).

Two devices running the same program whose nonvolatile state, supply
token, and environment-time token agree must produce identical
activation outcomes -- the soundness fact the fleet memoizer
(:mod:`repro.fleet.vector`) builds on.  Everything here is *conservative*:
a supply without hooks is opaque (``None``), which only costs cache hits.
"""

from __future__ import annotations

from typing import Hashable, Optional


def supply_memo_token(supply) -> Optional[Hashable]:
    """The supply's behavioral-equivalence token, or ``None`` if opaque.

    Dispatches on the optional ``memo_token`` hook so third-party supply
    implementations that predate the hooks degrade to "never equivalent"
    instead of breaking.
    """
    token = getattr(supply, "memo_token", None)
    if token is None:
        return None
    return token()


def capture_supply_state(supply):
    """Snapshot the supply's mutable state for later memo replay."""
    return supply.memo_capture()


def restore_supply_state(supply, state) -> None:
    """Put a supply into a previously captured state."""
    supply.memo_restore(state)
