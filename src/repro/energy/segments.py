"""Segment quantization: when do two devices provably repeat each other?

Surbatovich et al.'s formal account of intermittent execution ("Towards
a Formal Foundation of Intermittent Computing") characterizes an
activation's behavior as a function of its resume-point state plus the
input environment.  In our model that state splits into three parts,
each with its own equivalence token:

* **program** -- interned by the compile cache (one
  :class:`~repro.core.pipeline.CompiledProgram` per source x pipeline);
* **environment time** -- :meth:`Environment.segment_token
  <repro.sensors.environment.Environment.segment_token>` collapses
  logical times congruent modulo the environment's exact period;
* **supply** -- the ``memo_token`` hooks below: a hashable snapshot of
  everything the supply's future answers can depend on (charge level,
  failure schedule bookkeeping, RNG stream positions where randomness
  can actually reach an outcome).

Two devices running the same program whose nonvolatile state, supply
token, and environment-time token agree must produce identical
activation outcomes -- the soundness fact the fleet memoizer
(:mod:`repro.fleet.vector`) builds on.  Everything here is *conservative*:
a supply without hooks is opaque (``None``), which only costs cache hits.

**Quantized supply tokens.**  Exact tokens make the memo useless on
heterogeneous fleets: per-device harvest-rate jitter and RNG stream
positions make every key unique.  :func:`quantized_supply_token` buckets
the charge level and drops everything per-device, which is sound only
under a replay gate the memoizer enforces:

* a bucketed entry is stored only for a **reboot-free** activation
  (``reboots == 0`` and ``cycles_off == 0``), recording the charge level
  it executed at;
* a bucketed hit replays only for a device whose charge level is **at
  least** the entry's recorded execution level.

Why that gate is exact: a reboot-free activation never recharges, never
draws boot or harvest randomness, and consults the supply only through
checks of the form ``level - drained - energy <= low_threshold`` -- each
monotone in the starting level.  If the recorded run tripped none of
them starting from level ``L``, a device starting at ``L' >= L``
(same program, environment segment, and nonvolatile state) trips none
of them either, executes the identical instruction path, and ends at
``L' - consumed``.  Coarser buckets therefore never manufacture a false
hit; they only widen the population that shares a key.
"""

from __future__ import annotations

from typing import Hashable, Optional


def supply_memo_token(supply) -> Optional[Hashable]:
    """The supply's behavioral-equivalence token, or ``None`` if opaque.

    Dispatches on the optional ``memo_token`` hook so third-party supply
    implementations that predate the hooks degrade to "never equivalent"
    instead of breaking.
    """
    token = getattr(supply, "memo_token", None)
    if token is None:
        return None
    return token()


def supply_quantum(supply) -> Optional[tuple]:
    """``(static_token, charge_level)`` for bucketed keys, or ``None``.

    Dispatches on the optional ``memo_quantum`` hook; a supply without
    one cannot be quantized and falls back to exact tokens (or
    opacity), which only costs cache hits.
    """
    hook = getattr(supply, "memo_quantum", None)
    if hook is None:
        return None
    return hook()


def quantized_supply_token(supply, bucket_size: int) -> Optional[Hashable]:
    """Conservative bucketed supply token: geometry + charge bucket.

    ``bucket_size`` is the charge span (energy units) one bucket
    covers; any perturbation of the charge level that crosses a bucket
    boundary changes the token (property-tested in
    ``tests/test_fleet_vector.py``).  Only sound under the reboot-free
    replay gate described in the module docstring -- the fleet memoizer
    pairs every bucketed key with a recorded execution level and
    replays only at or above it.
    """
    if bucket_size <= 0:
        return None
    quantum = supply_quantum(supply)
    if quantum is None:
        return None
    static, level = quantum
    return ("q", static, bucket_size, level // bucket_size)


def capture_supply_state(supply):
    """Snapshot the supply's mutable state for later memo replay."""
    return supply.memo_capture()


def restore_supply_state(supply, state) -> None:
    """Put a supply into a previously captured state."""
    supply.memo_restore(state)
