"""Reproduction of *Automatically Enforcing Fresh and Consistent Inputs in
Intermittent Systems* (Surbatovich, Jia, Lucia -- PLDI 2021).

The package implements the paper's full system stack in Python:

* :mod:`repro.lang` -- the modeling language (Appendix A) with ``Fresh`` /
  ``Consistent`` / ``FreshConsistent`` annotations,
* :mod:`repro.ir` -- a CFG-based IR with dominator/post-dominator analysis
  and a call graph (the LLVM stand-in),
* :mod:`repro.analysis` -- the interprocedural taint / input-dependence
  analysis, provenance chains, function summaries, and policies,
* :mod:`repro.core` -- Ocelot: atomic region inference (Algorithm 1),
  WAR/EMW undo-log analysis, the Section 5.2 checker, and the pass-based
  compilation toolchain (:mod:`repro.core.passes`: ``Pass`` /
  ``PassManager`` / registered ``BuildConfig`` pipelines),
* :mod:`repro.runtime` -- the JIT + atomics intermittent machine
  (Appendix H), power supplies, the bit-vector violation detector, and the
  formal trace predicates (Definitions 2/3),
* :mod:`repro.energy` / :mod:`repro.sensors` -- the simulated testbed,
* :mod:`repro.apps` -- the six benchmark applications (Table 1),
* :mod:`repro.eval` -- the evaluation harness regenerating every table and
  figure of Section 7 (run ``python -m repro.eval``).

Quickstart::

    from repro import compile_source, run_continuous
    from repro.sensors import Environment, steps

    compiled = compile_source('''
        inputs temp;
        fn main() {
          let t = input(temp);
          Fresh(t);
          if t > 30 { alarm(); }
        }
    ''')
    env = Environment({"temp": steps([20, 35], 5000)})
    result = run_continuous(compiled, env)
"""

from repro.core.passes import (
    BuildConfig,
    PassManager,
    config_names,
    emit_artifact,
    get_config,
    register_config,
)
from repro.core.pipeline import (
    CONFIG_ATOMICS,
    CONFIG_JIT,
    CONFIG_OCELOT,
    CONFIGS,
    CompiledProgram,
    PipelineOptions,
    compile_all_configs,
    compile_program,
    compile_source,
)
from repro.lang import parse_program, print_program, validate_program
from repro.runtime import (
    ContinuousPower,
    EnergyDrivenSupply,
    FailurePoint,
    Machine,
    ScheduledFailures,
    check_all_properties,
    check_consistency,
    check_freshness,
    run_activations,
    run_continuous,
    run_once,
)
from repro.sensors import Environment

__version__ = "1.0.0"

__all__ = [
    "BuildConfig",
    "PassManager",
    "config_names",
    "emit_artifact",
    "get_config",
    "register_config",
    "CONFIG_ATOMICS",
    "CONFIG_JIT",
    "CONFIG_OCELOT",
    "CONFIGS",
    "CompiledProgram",
    "PipelineOptions",
    "compile_all_configs",
    "compile_program",
    "compile_source",
    "parse_program",
    "print_program",
    "validate_program",
    "ContinuousPower",
    "EnergyDrivenSupply",
    "FailurePoint",
    "Machine",
    "ScheduledFailures",
    "check_all_properties",
    "check_consistency",
    "check_freshness",
    "run_activations",
    "run_continuous",
    "run_once",
    "Environment",
    "__version__",
]
