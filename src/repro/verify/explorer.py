"""Bounded model checking of power-failure schedules.

The correctness question for an intermittent config is universally
quantified (Surbatovich et al., "Towards a Formal Foundation of
Intermittent Computing"): a build is correct only if *no* reboot
placement produces a stale/inconsistent input.  The paper's detector
samples that space stochastically; this module explores it exhaustively
within a bound B = activations x cycles x failures:

* **Transitions** reuse the production engines: the explorer
  single-steps a stock :class:`Machine`/:class:`FastMachine` and
  branches by snapshot/restore (:mod:`repro.runtime.snapshot`) plus
  :meth:`force_power_failure`, which is bit-identical to a
  :class:`ScheduledFailures` supply firing at that step.
* **Search order** is best-first by failures used, so the first
  counterexample found uses a minimal number of failures; greedy
  delta-reduction (:func:`repro.verify.schedule.minimize_schedule`)
  then makes it 1-minimal through the production replay path.
* **Deduplication** hashes every post-reboot and activation-start state
  (:mod:`repro.verify.digest`) and skips states already explored with
  at least the remaining (activations, failures) budget -- explorable
  futures are monotone in budget, so a Pareto frontier per digest is
  sound.
* **Pruning** skips fork candidates inside atomic regions: Atom-Reboot
  rolls volatile state and the logged NV locations back to the
  outermost region entry with cleared bits, so the failing branch's
  future coincides with the branch already forked at the last depth-0
  point before the region entry (the availability analysis' resume-point
  structure; see docs/architecture.md for the full argument).  A
  candidate is pruned only when the static classification
  (:func:`classify_resume_points`) *and* the dynamic region context
  agree, and only under a time-invariant environment.  Failure points
  that change nothing at all -- jit mode, no bits set, no cached
  hoisted queries, time-invariant environment -- are skipped as no-ops:
  the post-reboot state equals the state the parent keeps exploring
  with strictly more budget.

The verdict is a proof certificate ("no fresh/consistent violation up
to B", with explored/pruned/deduped counts), a minimized replayable
counterexample :class:`Schedule`, or bound-exhausted when the state cap
cut exploration (a cycle-capped branch is *within* B by definition; a
capped frontier is not).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

from repro.analysis.availability import ResumeClassification, classify_resume_points
from repro.core.pipeline import CompiledProgram
from repro.energy.costs import DEFAULT_COSTS, CostModel
from repro.ir.instructions import InstrId
from repro.runtime import observations as obs
from repro.runtime.detector import DetectorPlan
from repro.runtime.engine import ENGINE_FAST, ENGINE_REFERENCE, create_machine
from repro.runtime.executor import ExecError, MachineConfig
from repro.runtime.snapshot import (
    MachineSnapshot,
    begin_activation,
    capture_machine,
    restore_machine,
)
from repro.runtime.supply import FailurePoint
from repro.sensors.environment import Environment
from repro.telemetry.trace import span as _span
from repro.verify.digest import fast_block_namer, state_digest
from repro.verify.schedule import Schedule, minimize_schedule

VERDICT_PROOF = "proof"
VERDICT_COUNTEREXAMPLE = "counterexample"
VERDICT_BOUND = "bound-exhausted"


@dataclass(frozen=True)
class VerifyBounds:
    """The bound B the certificate quantifies over.

    ``max_activations`` and ``max_cycles`` (per activation) define the
    run prefix being verified; ``max_failures`` bounds the failures per
    schedule.  ``max_states`` caps explored fork states -- hitting it
    means the *frontier* was cut, which degrades a proof to
    bound-exhausted (unlike the cycle cap, which is part of B).
    """

    max_activations: int = 1
    max_failures: int = 2
    max_cycles: int = 200_000
    max_states: int = 100_000
    off_cycles: int = 10_000


@dataclass
class ExploreStats:
    """Counters for the certificate and the benchmark record."""

    explored: int = 0  # fork states expanded (segments run)
    steps: int = 0  # machine steps taken
    candidates: int = 0  # feasible failure points seen
    forked: int = 0  # child states pushed
    pruned: int = 0  # candidates skipped by the region-rollback argument
    pruned_noop: int = 0  # candidates skipped as state-identical no-ops
    deduped: int = 0  # branches dropped at a visited digest
    cycle_truncated: int = 0  # branches stopped at the per-activation cycle cap
    stuck: int = 0  # branches that died in ExecError (e.g. region too large)
    truncated: int = 0  # frontier entries dropped at the state cap
    completed_branches: int = 0  # branches that reached the activation bound

    def to_dict(self) -> dict:
        return dict(vars(self))


@dataclass
class Verdict:
    """The verifier's answer for one (program, config, env, bounds)."""

    kind: str
    bounds: VerifyBounds
    stats: ExploreStats
    engine: str
    pruning: bool
    counterexample: Optional[Schedule] = None
    #: (pid, kind, uid) of the first violation on the counterexample path
    violation: Optional[tuple[str, str, InstrId]] = None
    #: all (pid, site chain) that fired, when collect_all exploration ran
    fired: frozenset = frozenset()
    graph: Optional[dict] = None
    #: causal reports for the counterexample's violations, built by
    #: replaying the minimized schedule (telemetry.forensics dicts)
    forensics: Optional[list] = None

    @property
    def exit_code(self) -> int:
        if self.kind == VERDICT_PROOF:
            return 0
        if self.kind == VERDICT_COUNTEREXAMPLE:
            return 1
        return 2

    def certificate(self) -> str:
        """Human-readable verdict summary (the CLI's output)."""
        b, s = self.bounds, self.stats
        lines = [
            f"verdict     : {self.kind}",
            f"bound       : {b.max_activations} activation(s) x "
            f"{b.max_cycles} cycles, <= {b.max_failures} failure(s)",
            f"explored    : {s.explored} states, {s.steps} steps, "
            f"{s.forked} forks",
            f"pruned      : {s.pruned} in-region + {s.pruned_noop} no-op "
            f"of {s.candidates} candidates",
            f"deduped     : {s.deduped}",
        ]
        if s.cycle_truncated:
            lines.append(f"cycle-capped: {s.cycle_truncated} branch(es)")
        if s.truncated or s.stuck:
            lines.append(
                f"exhausted   : {s.truncated} frontier entries dropped, "
                f"{s.stuck} stuck branch(es)"
            )
        if self.counterexample is not None:
            pid, kind, uid = self.violation
            lines.append(
                f"violation   : {kind} {pid} at {uid.func}:{uid.label}"
            )
            for p in self.counterexample.points:
                lines.append(
                    f"  fail before {p.uid.func}:{p.uid.label} "
                    f"(occurrence {p.occurrence})"
                )
        if self.forensics:
            lines.append("forensics   :")
            for report in self.forensics:
                for line in report.render_text().splitlines():
                    lines.append(f"  {line}")
        return "\n".join(lines)


@dataclass
class FixedOffSupply:
    """The explorer's supply: never fails on its own, constant off-time.

    Failures are injected by the explorer via ``force_power_failure``,
    so the supply's only job is answering ``off_and_recharge`` with the
    same constant a replayed :class:`ScheduledFailures` schedule will
    use -- keeping explorer transitions bit-identical to replay.  Both
    engines classify an unknown supply type onto the generic path, i.e.
    the exact reference call sequence.
    """

    off_cycles: int = 10_000

    def fail_before(self, uid, chain=None) -> bool:
        return False

    def consume(self, energy: int) -> bool:
        return False

    def would_trip(self, energy: int) -> bool:
        return False

    def checkpoint_energy(self, energy: int) -> None:
        pass  # simulated failures have ideal reserve

    def off_and_recharge(self) -> int:
        return self.off_cycles


class _ViolationSink(list):
    """An event list that keeps only violations.

    Installed as the explored machine's trace storage so segment runs
    cost O(violations) memory instead of O(observations); the digest
    and the verdict never consult non-violation events.
    """

    __slots__ = ()

    def append(self, event) -> None:
        if type(event) is obs.ViolationObs:
            list.append(self, event)


@dataclass
class _Node:
    snapshot: MachineSnapshot
    activation: int
    failures: int
    points: tuple[FailurePoint, ...]
    attempts: dict[InstrId, int]
    pending: bool  # force a power failure immediately after restore?
    graph_id: int = -1


class Explorer:
    """One bounded exploration of (compiled, env) under ``bounds``."""

    def __init__(
        self,
        compiled: CompiledProgram,
        env: Environment,
        bounds: Optional[VerifyBounds] = None,
        engine: str = ENGINE_FAST,
        costs: CostModel = DEFAULT_COSTS,
        plan: Optional[DetectorPlan] = None,
        prune: bool = True,
        collect_all: bool = False,
        record_graph: bool = False,
        seed_uids: frozenset = frozenset(),
        relevant_bits: Optional[frozenset] = None,
    ) -> None:
        self._compiled = compiled
        self._env = env
        self._bounds = bounds if bounds is not None else VerifyBounds()
        self._engine = engine
        self._costs = costs
        self._plan = plan if plan is not None else compiled.detector_plan()
        # Pruning and no-op skipping argue over tau-shifted futures, so
        # they require a time-invariant environment (every signal
        # constant); otherwise they auto-disable and digests fall back
        # to the environment's periodic tau token.
        self._time_invariant = env.period() == 1
        self._prune = prune and self._time_invariant
        self._classification: ResumeClassification = (
            classify_resume_points(compiled.module)
            if self._prune
            else ResumeClassification()
        )
        self._collect_all = collect_all
        self._record_graph = record_graph
        # Static-verdict guidance (repro.analysis.staleness).  Failure
        # points at a DOOMED site are expanded before same-failure-count
        # siblings -- the linter claims they fire, so they are the
        # shortest route to a counterexample.  ``relevant_bits``, when
        # given, holds every detector bit some non-SAFE check reads;
        # clearing a bit outside it is violation-unobservable (SAFE
        # checks never fire under any schedule), so the no-op skip may
        # ignore such bits instead of requiring the vector to be empty.
        self._seed_uids = seed_uids
        self._relevant_bits = relevant_bits
        self.stats = ExploreStats()
        self._fired: set = set()
        self._graph_nodes: list[dict] = []
        self._graph_edges: list[dict] = []

    # -- engine adapters -------------------------------------------------------

    def _build_machine(self):
        machine = create_machine(
            self._engine,
            self._compiled,
            self._env,
            FixedOffSupply(off_cycles=self._bounds.off_cycles),
            costs=self._costs,
            plan=self._plan,
            config=MachineConfig(max_cycles=self._bounds.max_cycles),
        )
        self._name_block = (
            None
            if self._engine == ENGINE_REFERENCE
            else fast_block_namer(machine._code)
        )
        return machine

    def _peek(self, machine) -> tuple[InstrId, object]:
        """(uid, lazy chain) of the instruction about to execute."""
        if self._name_block is None:
            instr = machine._fetch()
            return instr.uid, lambda: machine._current_chain(instr.uid)
        frame = machine._frames[-1]
        op = frame.ops[frame.idx]
        return op.uid, lambda: op.chain_at(frame.sites)[0]

    def _digest(self, machine) -> bytes:
        token = 0 if self._time_invariant else self._env.segment_token(machine.tau)
        return state_digest(machine, token, self._name_block)

    # -- the search ------------------------------------------------------------

    def run(self) -> Verdict:
        with _span("verify.explore", "verify", engine=self._engine):
            return self._run()

    def _run(self) -> Verdict:
        bounds = self._bounds
        machine = self._build_machine()
        sink = _ViolationSink()
        machine.trace = obs.Trace(events=sink)
        self._visited: dict[bytes, list[tuple[int, int]]] = {}
        self._frontier: list[tuple[int, int, int, _Node]] = []
        self._seq = 0

        root = _Node(
            snapshot=capture_machine(machine),
            activation=0,
            failures=0,
            points=(),
            attempts={},
            pending=False,
            graph_id=self._graph_node(None, 0, 0, "root"),
        )
        self._push(root)

        counterexample: Optional[Verdict] = None
        while self._frontier:
            if self.stats.explored >= bounds.max_states:
                self.stats.truncated += len(self._frontier)
                self._frontier.clear()
                break
            node = heapq.heappop(self._frontier)[-1]
            verdict = self._expand(machine, sink, node)
            if verdict is not None:
                counterexample = verdict
                if not self._collect_all:
                    break

        if counterexample is not None:
            return self._finish(counterexample)
        kind = (
            VERDICT_BOUND
            if self.stats.truncated or self.stats.stuck
            else VERDICT_PROOF
        )
        return self._finish(
            Verdict(
                kind=kind,
                bounds=bounds,
                stats=self.stats,
                engine=self._engine,
                pruning=self._prune,
            )
        )

    def _finish(self, verdict: Verdict) -> Verdict:
        verdict.fired = frozenset(self._fired)
        if self._record_graph:
            verdict.graph = {
                "nodes": self._graph_nodes,
                "edges": self._graph_edges,
            }
        return verdict

    def _push(self, node: _Node, boost: int = 1) -> None:
        """Enqueue best-first: fewest failures, then seeded (``boost``
        0) before unseeded, then FIFO."""
        self._seq += 1
        heapq.heappush(
            self._frontier, (node.failures, boost, self._seq, node)
        )

    def _graph_node(
        self, digest: Optional[bytes], activation: int, failures: int, kind: str
    ) -> int:
        if not self._record_graph:
            return -1
        nid = len(self._graph_nodes)
        self._graph_nodes.append(
            {
                "id": nid,
                "digest": digest.hex() if digest is not None else None,
                "activation": activation,
                "failures": failures,
                "kind": kind,
            }
        )
        return nid

    def _seen(self, digest: bytes, acts_left: int, fails_left: int) -> bool:
        """Pareto-frontier dedup: skip iff already explored with at
        least this much remaining budget in both dimensions."""
        frontier = self._visited.setdefault(digest, [])
        for a, f in frontier:
            if a >= acts_left and f >= fails_left:
                return True
        frontier[:] = [
            (a, f)
            for a, f in frontier
            if not (acts_left >= a and fails_left >= f)
        ]
        frontier.append((acts_left, fails_left))
        return False

    def _expand(self, machine, sink: _ViolationSink, node: _Node) -> Optional[Verdict]:
        """Restore ``node``, apply its pending failure, run the segment."""
        bounds = self._bounds
        stats = self.stats
        stats.explored += 1
        del sink[:]
        restore_machine(machine, node.snapshot, trace=obs.Trace(events=sink))

        activation = node.activation
        failures = node.failures
        attempts = node.attempts

        if node.pending:
            try:
                machine.force_power_failure()
            except ExecError:
                stats.stuck += 1
                return None
            if self._seen(
                self._digest(machine),
                bounds.max_activations - activation,
                bounds.max_failures - failures,
            ):
                stats.deduped += 1
                return None

        classification = self._classification
        prune = self._prune
        noop_ok = self._time_invariant
        seed_uids = self._seed_uids
        relevant = self._relevant_bits

        while True:
            if machine._done:
                activation += 1
                if activation >= bounds.max_activations:
                    stats.completed_branches += 1
                    return None
                begin_activation(machine, trace=machine.trace)
                if self._seen(
                    self._digest(machine),
                    bounds.max_activations - activation,
                    bounds.max_failures - failures,
                ):
                    stats.deduped += 1
                    return None
                continue
            if machine.stats.total_cycles > bounds.max_cycles:
                stats.cycle_truncated += 1
                return None

            uid, chain_of = self._peek(machine)
            count = attempts.get(uid, 0) + 1
            attempts[uid] = count

            if failures < bounds.max_failures:
                stats.candidates += 1
                in_region = machine._atom_ctx is not None
                bits = machine.nv.bits.bits
                if prune and in_region and classification.prunable(chain_of()):
                    stats.pruned += 1
                elif (
                    noop_ok
                    and not in_region
                    and not (
                        bits & relevant if relevant is not None else bits
                    )
                    and not machine._hoist_cache
                ):
                    stats.pruned_noop += 1
                else:
                    child = _Node(
                        snapshot=capture_machine(machine),
                        activation=activation,
                        failures=failures + 1,
                        points=node.points
                        + (FailurePoint(uid=uid, occurrence=count),),
                        attempts=dict(attempts),
                        pending=True,
                        graph_id=self._graph_node(
                            None, activation, failures + 1, "fork"
                        ),
                    )
                    stats.forked += 1
                    if self._record_graph:
                        self._graph_edges.append(
                            {
                                "parent": node.graph_id,
                                "child": child.graph_id,
                                "func": uid.func,
                                "label": uid.label,
                                "occurrence": count,
                            }
                        )
                    self._push(child, boost=0 if uid in seed_uids else 1)

            seen_violations = len(sink)
            site_chain = chain_of() if self._collect_all else None
            try:
                machine.step()
            except ExecError:
                stats.stuck += 1
                return None
            stats.steps += 1

            if len(sink) > seen_violations:
                new = sink[seen_violations:]
                if self._collect_all:
                    for violation in new:
                        self._fired.add((violation.pid, site_chain))
                first = new[0]
                verdict = Verdict(
                    kind=VERDICT_COUNTEREXAMPLE,
                    bounds=bounds,
                    stats=stats,
                    engine=self._engine,
                    pruning=self._prune,
                    counterexample=Schedule(
                        points=node.points,
                        off_cycles=bounds.off_cycles,
                        activations=activation + 1,
                    ),
                    violation=(first.pid, first.kind, first.uid),
                )
                if not self._collect_all:
                    return verdict
                # Exhaustive mode: remember the first counterexample but
                # keep exploring this branch and the frontier.
                if not hasattr(self, "_first_counterexample"):
                    self._first_counterexample = verdict
                self._last_counterexample = verdict


def verify_program(
    compiled: CompiledProgram,
    env: Environment,
    bounds: Optional[VerifyBounds] = None,
    engine: str = ENGINE_FAST,
    costs: CostModel = DEFAULT_COSTS,
    plan: Optional[DetectorPlan] = None,
    prune: bool = True,
    collect_all: bool = False,
    record_graph: bool = False,
    minimize: bool = True,
    target: Optional[str] = None,
    config: Optional[str] = None,
    seed_uids: frozenset = frozenset(),
    relevant_bits: Optional[frozenset] = None,
) -> Verdict:
    """Explore, and minimize any counterexample through the replay path."""
    explorer = Explorer(
        compiled,
        env,
        bounds=bounds,
        engine=engine,
        costs=costs,
        plan=plan,
        prune=prune,
        collect_all=collect_all,
        record_graph=record_graph,
        seed_uids=seed_uids,
        relevant_bits=relevant_bits,
    )
    verdict = explorer.run()
    if collect_all and verdict.kind != VERDICT_COUNTEREXAMPLE:
        first = getattr(explorer, "_first_counterexample", None)
        if first is not None:
            first.fired = verdict.fired
            first.graph = verdict.graph
            verdict = first
    if verdict.counterexample is not None:
        schedule = verdict.counterexample
        if minimize:
            schedule = minimize_schedule(
                compiled,
                env,
                schedule,
                engine=engine,
                costs=costs,
                plan=plan,
            )
        verdict.counterexample = Schedule(
            points=schedule.points,
            off_cycles=schedule.off_cycles,
            activations=schedule.activations,
            target=target,
            config=config,
        )
        # Forensics: the explorer's sink keeps only violation events, so
        # replay the (minimized) schedule with full observation to join
        # the detector firing back to the sensor reads that caused it.
        from repro.telemetry.forensics import explain_traces
        from repro.verify.schedule import replay_schedule

        replay = replay_schedule(
            compiled,
            env,
            verdict.counterexample,
            engine=engine,
            costs=costs,
            plan=plan,
            stop_at_violation=False,
        )
        verdict.forensics = explain_traces(
            replay.traces, getattr(compiled, "policies", None)
        )
    return verdict
