"""Canonical machine-state digests for visited-state deduplication.

Two machine states with equal digests have equal *futures* with respect
to detector violations: the digest covers every state component a
machine step can read -- nonvolatile memory (values and taint
structure), the detector bit vector, the volatile hoisted-query cache,
the frame stack (including reference cells), the atomic undo context,
and completion state -- hashed with BLAKE2b over a canonical encoding.

Two deliberate exclusions, argued in docs/architecture.md:

* **taint timestamps** -- an :class:`InputEvent` carries the ``tau`` of
  the read, but detector checks consult only the bit vector; taint taus
  merely timestamp declaration observations and never influence control
  flow or violations, so they are hashed structurally (uid + channel).
* **logical time** -- ``tau`` feeds back into behavior only through
  ``env.read(channel, tau)``.  The digest therefore includes
  ``env.segment_token(tau)``: for periodic environments that quantizes
  tau to its phase (states one whole period apart behave identically),
  for a time-invariant environment (period 1 -- every signal constant)
  it collapses to a constant, and for aperiodic environments it is raw
  tau, which soundly disables cross-time deduplication.

The JIT checkpoint context is also excluded: it is inert state (only
read at reboot, and any forced failure overwrites it in jit mode before
rebooting), so two states differing only in ``_jit_ctx`` step
identically forever under a verifier that injects failures explicitly.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Callable, Optional

from repro.runtime.engine import CompiledCode, FastFrame
from repro.runtime.values import RefValue


def fast_block_namer(code: CompiledCode) -> Callable:
    """Map a :class:`FastFrame`'s decoded op-list identity back to its
    ``(function, block)`` name pair, for canonical frame encoding."""
    names: dict[int, tuple[str, str]] = {}
    for fname, fn in code.functions.items():
        for bname, ops in fn.blocks.items():
            names[id(ops)] = (fname, bname)

    def name_block(frame: FastFrame) -> tuple[str, str]:
        return names[id(frame.ops)]

    return name_block


def _taint_key(taint: frozenset) -> tuple:
    return tuple(
        sorted((e.uid.func, e.uid.label, e.channel) for e in taint)
    )


def _cell_key(cell) -> tuple:
    if type(cell) is RefValue:
        return ("r", cell.depth, cell.name)
    return ("v", cell.value, _taint_key(cell.taint))


def _locals_key(locals_: dict) -> tuple:
    return tuple(
        (name, _cell_key(cell)) for name, cell in sorted(locals_.items())
    )


def _frame_key(frame, name_block: Optional[Callable]) -> tuple:
    if name_block is None:  # reference Frame carries names directly
        func, block = frame.func, frame.block
        # call provenance decides which detector checks trigger here
        call_uid = frame.call_uid
        provenance = (
            (call_uid.func, call_uid.label) if call_uid is not None else None
        )
    else:
        func, block = name_block(frame)
        provenance = tuple((uid.func, uid.label) for uid in frame.sites)
    return (
        func,
        block,
        frame.idx,
        frame.ret_dest,
        provenance,
        _locals_key(frame.locals),
    )


def _chain_key(chain) -> tuple:
    return tuple((uid.func, uid.label) for uid in chain.ids)


def state_digest(
    machine,
    tau_token: int,
    name_block: Optional[Callable] = None,
) -> bytes:
    """BLAKE2b digest of ``machine``'s behavioral state.

    ``name_block`` is required for fast machines (see
    :func:`fast_block_namer`); reference frames carry block names
    themselves.  ``tau_token`` is the environment-quantized time token
    (see the module docstring).
    """
    nv = machine.nv
    atom = machine._atom_ctx
    key = (
        tau_token,
        machine._done,
        _cell_key(machine._ret_value) if machine._ret_value is not None else None,
        tuple(
            (name, value.value, _taint_key(value.taint))
            for name, value in sorted(nv.globals.items())
        ),
        tuple(
            (name, tuple((c.value, _taint_key(c.taint)) for c in cells))
            for name, cells in sorted(nv.arrays.items())
        ),
        tuple(sorted(_chain_key(c) for c in nv.bits.bits)),
        tuple(
            (hid, tuple(sorted(_chain_key(c) for c in missing)))
            for hid, missing in sorted(machine._hoist_cache.items())
        ),
        tuple(_frame_key(f, name_block) for f in machine._frames),
        (
            (
                atom.region,
                atom.natom,
                tuple(_frame_key(f, name_block) for f in atom.frames),
                tuple(
                    (name, value.value, _taint_key(value.taint))
                    for name, value in sorted(atom.undo_globals.items())
                ),
                tuple(
                    (name, tuple((c.value, _taint_key(c.taint)) for c in cells))
                    for name, cells in sorted(atom.undo_arrays.items())
                ),
            )
            if atom is not None
            else None
        ),
    )
    h = blake2b(repr(key).encode(), digest_size=16)
    return h.digest()


__all__ = ["state_digest", "fast_block_namer"]
