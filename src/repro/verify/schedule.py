"""Replayable counterexample schedules.

A verifier counterexample is a *schedule*: a finite set of power
failures, each "immediately before the ``k``-th dynamic execution of
static instruction ``uid``" -- exactly the occurrence convention of
:class:`~repro.runtime.supply.FailurePoint`, counted across the whole
multi-activation run including post-reboot re-executions.  The explorer
counts every attempt of every instruction along a path, so a schedule
it emits replays bit-exactly through a stock
:class:`~repro.runtime.supply.ScheduledFailures` supply: no verifier
machinery is needed to reproduce a violation, just ``python -m repro
run TARGET --schedule cex.json`` (or a campaign supply of kind
``schedule``).

The JSON format is versioned and deliberately tiny::

    {
      "format": "repro-schedule-1",
      "target": "tire", "config": "jit",        # informational
      "off_cycles": 10000,
      "activations": 1,
      "points": [{"func": "main", "label": 7, "occurrence": 3}]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.pipeline import CompiledProgram
from repro.energy.costs import DEFAULT_COSTS, CostModel
from repro.ir.instructions import InstrId
from repro.runtime import observations as obs
from repro.runtime.detector import DetectorPlan
from repro.runtime.engine import ENGINE_FAST, create_machine
from repro.runtime.executor import MachineConfig, NVState
from repro.runtime.supply import FailurePoint, ScheduledFailures
from repro.sensors.environment import Environment

SCHEDULE_FORMAT = "repro-schedule-1"


class ScheduleError(ValueError):
    """A malformed schedule document."""


@dataclass(frozen=True)
class Schedule:
    """A finite failure schedule plus the replay budget that exposes it."""

    points: tuple[FailurePoint, ...]
    off_cycles: int = 10_000
    #: activations needed to reach the violation (or to prove the bound)
    activations: int = 1
    target: Optional[str] = None
    config: Optional[str] = None

    def to_supply(self) -> ScheduledFailures:
        """A fresh, fully armed injection supply for this schedule."""
        return ScheduledFailures(list(self.points), off_cycles=self.off_cycles)

    def with_points(self, points: tuple[FailurePoint, ...]) -> "Schedule":
        return replace(self, points=points)

    # -- JSON ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": SCHEDULE_FORMAT,
            "target": self.target,
            "config": self.config,
            "off_cycles": self.off_cycles,
            "activations": self.activations,
            "points": [
                {
                    "func": p.uid.func,
                    "label": p.uid.label,
                    "occurrence": p.occurrence,
                }
                for p in self.points
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, data: dict) -> "Schedule":
        if not isinstance(data, dict):
            raise ScheduleError("schedule document must be a JSON object")
        fmt = data.get("format")
        if fmt != SCHEDULE_FORMAT:
            raise ScheduleError(
                f"unknown schedule format {fmt!r} (expected {SCHEDULE_FORMAT!r})"
            )
        points = []
        for entry in data.get("points", []):
            try:
                uid = InstrId(str(entry["func"]), int(entry["label"]))
                occurrence = int(entry.get("occurrence", 1))
            except (KeyError, TypeError, ValueError) as exc:
                raise ScheduleError(f"bad failure point {entry!r}: {exc}") from None
            if occurrence < 1:
                raise ScheduleError(
                    f"bad failure point {entry!r}: occurrence is 1-based"
                )
            points.append(FailurePoint(uid=uid, occurrence=occurrence))
        return cls(
            points=tuple(points),
            off_cycles=int(data.get("off_cycles", 10_000)),
            activations=int(data.get("activations", 1)),
            target=data.get("target"),
            config=data.get("config"),
        )

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScheduleError(f"schedule is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    def to_supply_spec(self, name: str = "counterexample"):
        """This schedule as a campaign :class:`SupplySpec` (kind
        ``schedule``), so a counterexample drops into campaign specs."""
        from repro.eval.campaign import SUPPLY_SCHEDULE, SupplySpec

        return SupplySpec(
            name=name,
            kind=SUPPLY_SCHEDULE,
            off_cycles=self.off_cycles,
            points=tuple(
                (p.uid.func, p.uid.label, p.occurrence) for p in self.points
            ),
        )


@dataclass
class ReplayResult:
    """What replaying a schedule observed."""

    violations: list[obs.ViolationObs] = field(default_factory=list)
    activations: int = 0
    completed: bool = True
    #: per-activation traces, in order (for bit-exactness assertions)
    traces: list[obs.Trace] = field(default_factory=list)
    final_tau: int = 0
    all_fired: bool = False

    @property
    def violating(self) -> bool:
        return bool(self.violations)


def replay_schedule(
    compiled: CompiledProgram,
    env: Environment,
    schedule: Schedule,
    engine: str = ENGINE_FAST,
    costs: CostModel = DEFAULT_COSTS,
    plan: Optional[DetectorPlan] = None,
    config: Optional[MachineConfig] = None,
    max_activations: Optional[int] = None,
    stop_at_violation: bool = True,
) -> ReplayResult:
    """Replay ``schedule`` activation by activation on a stock machine.

    Mirrors :class:`~repro.runtime.harness.ActivationStepper`:
    nonvolatile memory, the supply, and logical time persist across
    activations; volatile state resets per activation.  This is the
    *production* replay path -- the explorer's own transitions are
    validated against it by the parity tests.
    """
    if plan is None:
        plan = compiled.detector_plan()
    supply = schedule.to_supply()
    nv = NVState.initial(compiled.module)
    result = ReplayResult()
    tau = 0
    budget = schedule.activations if max_activations is None else max_activations
    for _ in range(budget):
        machine = create_machine(
            engine,
            compiled,
            env,
            supply,
            costs=costs,
            plan=plan,
            nv=nv,
            config=config,
            start_tau=tau,
        )
        run = machine.run()
        tau = machine.tau
        result.traces.append(run.trace)
        result.violations.extend(run.trace.violations)
        result.activations += 1
        if not run.stats.completed:
            result.completed = False
            break
        if stop_at_violation and result.violations:
            break
    result.final_tau = tau
    result.all_fired = supply.all_fired
    return result


def minimize_schedule(
    compiled: CompiledProgram,
    env: Environment,
    schedule: Schedule,
    engine: str = ENGINE_FAST,
    costs: CostModel = DEFAULT_COSTS,
    plan: Optional[DetectorPlan] = None,
    config: Optional[MachineConfig] = None,
) -> Schedule:
    """Greedy 1-minimal reduction: drop points while a violation remains.

    Every candidate subset is validated through the production replay
    path, so the returned schedule is replayable by construction; each
    surviving point is *necessary* (dropping any one loses the
    violation).  Schedules are small (bounded by ``--max-failures``), so
    the quadratic worst case is irrelevant.
    """
    if plan is None:
        plan = compiled.detector_plan()
    points = list(schedule.points)
    changed = True
    while changed:
        changed = False
        for index in range(len(points)):
            candidate = tuple(points[:index] + points[index + 1 :])
            trial = schedule.with_points(candidate)
            if replay_schedule(
                compiled, env, trial, engine=engine, costs=costs,
                plan=plan, config=config,
            ).violating:
                points = list(candidate)
                changed = True
                break
    return schedule.with_points(tuple(points))
