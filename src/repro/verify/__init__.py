"""Bounded model checking of power-failure schedules (``repro.verify``).

The detector (:mod:`repro.runtime.detector`) answers "did this run
violate freshness/consistency?"; this package answers the universally
quantified question "does *any* failure schedule within a bound?" --
either with a proof certificate or with a minimized counterexample
schedule that replays bit-exactly on the production engines.  See
:mod:`repro.verify.explorer` for the search, :mod:`repro.verify.digest`
for state deduplication, and :mod:`repro.verify.schedule` for the
replayable counterexample format.
"""

from repro.verify.digest import fast_block_namer, state_digest
from repro.verify.explorer import (
    VERDICT_BOUND,
    VERDICT_COUNTEREXAMPLE,
    VERDICT_PROOF,
    Explorer,
    ExploreStats,
    FixedOffSupply,
    Verdict,
    VerifyBounds,
    verify_program,
)
from repro.verify.schedule import (
    SCHEDULE_FORMAT,
    ReplayResult,
    Schedule,
    ScheduleError,
    minimize_schedule,
    replay_schedule,
)

__all__ = [
    "VERDICT_BOUND",
    "VERDICT_COUNTEREXAMPLE",
    "VERDICT_PROOF",
    "Explorer",
    "ExploreStats",
    "FixedOffSupply",
    "Verdict",
    "VerifyBounds",
    "verify_program",
    "SCHEDULE_FORMAT",
    "ReplayResult",
    "Schedule",
    "ScheduleError",
    "minimize_schedule",
    "replay_schedule",
    "state_digest",
    "fast_block_namer",
]
