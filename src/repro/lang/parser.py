"""Recursive-descent parser for the Ocelot modeling language.

Grammar (EBNF, ``//`` comments and whitespace elided by the lexer)::

    program  := decl*
    decl     := 'inputs' IDENT (',' IDENT)* ';'
              | 'nonvolatile' IDENT scalar-or-array ';'
              | 'fn' IDENT '(' [param (',' param)*] ')' block
    param    := ['&'] IDENT
    block    := '{' stmt* '}'
    stmt     := 'let' ['fresh' | 'consistent' '(' INT ')'] IDENT '=' expr ';'
              | 'if' expr block ['else' (block | if-stmt)]
              | 'repeat' INT block
              | 'atomic' block
              | 'return' [expr] ';'
              | 'skip' ';'
              | '*' IDENT '=' expr ';'
              | IDENT '[' expr ']' '=' expr ';'
              | IDENT '=' expr ';'
              | expr ';'

    expr     := or
    or       := and ('||' and)*
    and      := cmp ('&&' cmp)*
    cmp      := add [('<'|'<='|'>'|'>='|'=='|'!=') add]
    add      := mul (('+'|'-') mul)*
    mul      := unary (('*'|'/'|'%') unary)*
    unary    := ('-'|'!') unary | primary
    primary  := INT | 'true' | 'false' | '(' expr ')' | '&' IDENT
              | 'input' '(' IDENT ')'
              | IDENT ['(' [expr (',' expr)*] ')' | '[' expr ']']

Statement-position calls named ``Fresh`` / ``Consistent`` (capitalized, as in
the paper's Rust surface syntax) are recognized as annotation statements.
"""

from __future__ import annotations

from typing import Optional

from repro.lang import ast
from repro.lang.errors import ParseError, SemanticError
from repro.lang.lexer import Token, TokenKind, tokenize

_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")


class Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._idx = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self._idx + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.kind != TokenKind.EOF:
            self._idx += 1
        return tok

    def _expect_punct(self, punct: str) -> Token:
        tok = self._next()
        if not tok.is_punct(punct):
            raise ParseError(f"expected '{punct}', found {tok}", tok.span)
        return tok

    def _expect_op(self, op: str) -> Token:
        tok = self._next()
        if not tok.is_op(op):
            raise ParseError(f"expected '{op}', found {tok}", tok.span)
        return tok

    def _expect_kw(self, word: str) -> Token:
        tok = self._next()
        if not tok.is_kw(word):
            raise ParseError(f"expected '{word}', found {tok}", tok.span)
        return tok

    def _expect_ident(self) -> Token:
        tok = self._next()
        if tok.kind != TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {tok}", tok.span)
        return tok

    def _expect_int(self) -> tuple[int, Token]:
        tok = self._next()
        if tok.kind != TokenKind.INT:
            raise ParseError(f"expected integer, found {tok}", tok.span)
        return int(tok.text), tok

    # -- declarations ---------------------------------------------------------

    def parse_program(self) -> ast.Program:
        functions: dict[str, ast.FuncDecl] = {}
        globals_: dict[str, ast.GlobalDecl] = {}
        arrays: dict[str, ast.ArrayDecl] = {}
        channels: list[str] = []

        while self._peek().kind != TokenKind.EOF:
            tok = self._peek()
            if tok.is_kw("fn"):
                func = self._parse_function()
                if func.name in functions:
                    raise SemanticError(
                        f"duplicate function '{func.name}'", func.span
                    )
                functions[func.name] = func
            elif tok.is_kw("inputs"):
                channels.extend(self._parse_inputs_decl())
            elif tok.is_kw("nonvolatile"):
                decl = self._parse_nonvolatile_decl()
                name = decl.name
                if name in globals_ or name in arrays:
                    raise SemanticError(f"duplicate nonvolatile '{name}'", decl.span)
                if isinstance(decl, ast.ArrayDecl):
                    arrays[name] = decl
                else:
                    globals_[name] = decl
            else:
                raise ParseError(f"expected declaration, found {tok}", tok.span)

        program = ast.Program(
            functions=functions, globals=globals_, arrays=arrays, channels=channels
        )
        ast.assign_labels(program)
        return program

    def _parse_inputs_decl(self) -> list[str]:
        self._expect_kw("inputs")
        names = [self._expect_ident().text]
        while self._peek().is_punct(","):
            self._next()
            names.append(self._expect_ident().text)
        self._expect_punct(";")
        return names

    def _parse_nonvolatile_decl(self):
        start = self._expect_kw("nonvolatile")
        name = self._expect_ident().text
        if self._peek().is_punct("["):
            self._next()
            size, _ = self._expect_int()
            self._expect_punct("]")
            init: Optional[list[int]] = None
            if self._peek().is_op("="):
                self._next()
                init = self._parse_int_list()
                if len(init) != size:
                    raise SemanticError(
                        f"array '{name}' declares {size} elements but "
                        f"initializes {len(init)}",
                        start.span,
                    )
            self._expect_punct(";")
            return ast.ArrayDecl(name=name, size=size, init=init, span=start.span)
        init_val = 0
        if self._peek().is_op("="):
            self._next()
            negate = False
            if self._peek().is_op("-"):
                self._next()
                negate = True
            init_val, _ = self._expect_int()
            if negate:
                init_val = -init_val
        self._expect_punct(";")
        return ast.GlobalDecl(name=name, init=init_val, span=start.span)

    def _parse_int_list(self) -> list[int]:
        self._expect_punct("[")
        values: list[int] = []
        if not self._peek().is_punct("]"):
            values.append(self._parse_signed_int())
            while self._peek().is_punct(","):
                self._next()
                values.append(self._parse_signed_int())
        self._expect_punct("]")
        return values

    def _parse_signed_int(self) -> int:
        negate = False
        if self._peek().is_op("-"):
            self._next()
            negate = True
        value, _ = self._expect_int()
        return -value if negate else value

    def _parse_function(self) -> ast.FuncDecl:
        start = self._expect_kw("fn")
        name = self._expect_ident().text
        self._expect_punct("(")
        params: list[ast.Param] = []
        if not self._peek().is_punct(")"):
            params.append(self._parse_param())
            while self._peek().is_punct(","):
                self._next()
                params.append(self._parse_param())
        self._expect_punct(")")
        body = self._parse_block()
        return ast.FuncDecl(name=name, params=params, body=body, span=start.span)

    def _parse_param(self) -> ast.Param:
        by_ref = False
        if self._peek().is_op("&"):
            self._next()
            by_ref = True
        name = self._expect_ident().text
        return ast.Param(name=name, by_ref=by_ref)

    # -- statements ------------------------------------------------------------

    def _parse_block(self) -> list[ast.Stmt]:
        self._expect_punct("{")
        stmts: list[ast.Stmt] = []
        while not self._peek().is_punct("}"):
            stmts.append(self._parse_stmt())
        self._expect_punct("}")
        return stmts

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.is_kw("let"):
            return self._parse_let()
        if tok.is_kw("if"):
            return self._parse_if()
        if tok.is_kw("repeat"):
            return self._parse_repeat()
        if tok.is_kw("atomic"):
            start = self._next()
            body = self._parse_block()
            return ast.Atomic(body=body, span=start.span)
        if tok.is_kw("return"):
            self._next()
            expr: Optional[ast.Expr] = None
            if not self._peek().is_punct(";"):
                expr = self._parse_expr()
            self._expect_punct(";")
            return ast.Return(expr=expr, span=tok.span)
        if tok.is_kw("skip"):
            self._next()
            self._expect_punct(";")
            return ast.Skip(span=tok.span)
        if tok.is_op("*"):
            self._next()
            name = self._expect_ident().text
            self._expect_op("=")
            expr = self._parse_expr()
            self._expect_punct(";")
            return ast.StoreRef(name=name, expr=expr, span=tok.span)
        if tok.kind == TokenKind.IDENT:
            return self._parse_ident_stmt()
        # Fallback: a bare expression statement (rarely used).
        expr = self._parse_expr()
        self._expect_punct(";")
        return ast.ExprStmt(expr=expr, span=tok.span)

    def _parse_let(self) -> ast.Stmt:
        start = self._expect_kw("let")
        annot: Optional[str] = None
        set_id: Optional[int] = None
        if self._peek().is_kw("fresh"):
            self._next()
            annot = ast.AnnotKind.FRESH
        elif self._peek().is_kw("consistent"):
            self._next()
            self._expect_punct("(")
            set_id, _ = self._expect_int()
            self._expect_punct(")")
            annot = ast.AnnotKind.CONSISTENT
        name = self._expect_ident().text
        self._expect_op("=")
        expr = self._parse_expr()
        self._expect_punct(";")
        return ast.Let(name=name, expr=expr, annot=annot, set_id=set_id, span=start.span)

    def _parse_if(self) -> ast.Stmt:
        start = self._expect_kw("if")
        cond = self._parse_expr()
        then_body = self._parse_block()
        else_body: list[ast.Stmt] = []
        if self._peek().is_kw("else"):
            self._next()
            else_body = (
                [self._parse_if()]
                if self._peek().is_kw("if")
                else self._parse_block()
            )
        return ast.If(cond=cond, then_body=then_body, else_body=else_body, span=start.span)

    def _parse_repeat(self) -> ast.Stmt:
        start = self._expect_kw("repeat")
        count, count_tok = self._expect_int()
        if count <= 0:
            raise SemanticError("repeat count must be positive", count_tok.span)
        body = self._parse_block()
        return ast.Repeat(count=count, body=body, span=start.span)

    def _parse_ident_stmt(self) -> ast.Stmt:
        name_tok = self._expect_ident()
        name = name_tok.text
        nxt = self._peek()

        if nxt.is_punct("["):
            self._next()
            index = self._parse_expr()
            self._expect_punct("]")
            self._expect_op("=")
            expr = self._parse_expr()
            self._expect_punct(";")
            return ast.StoreIndex(array=name, index=index, expr=expr, span=name_tok.span)

        if nxt.is_op("="):
            self._next()
            expr = self._parse_expr()
            self._expect_punct(";")
            return ast.Assign(name=name, expr=expr, span=name_tok.span)

        if nxt.is_punct("("):
            # Annotation statements use the capitalized marker functions of
            # the paper's Rust syntax: Fresh(x); Consistent(x, n);
            if name == "Fresh":
                self._next()
                var = self._expect_ident().text
                self._expect_punct(")")
                self._expect_punct(";")
                return ast.AnnotStmt(
                    kind=ast.AnnotKind.FRESH, var=var, span=name_tok.span
                )
            if name in ("Consistent", "FreshConsistent"):
                kind = (
                    ast.AnnotKind.CONSISTENT
                    if name == "Consistent"
                    else ast.AnnotKind.FRESHCON
                )
                self._next()
                var = self._expect_ident().text
                self._expect_punct(",")
                set_id, _ = self._expect_int()
                self._expect_punct(")")
                self._expect_punct(";")
                return ast.AnnotStmt(
                    kind=kind,
                    var=var,
                    set_id=set_id,
                    span=name_tok.span,
                )
            call = self._parse_call_after_name(name, name_tok)
            self._expect_punct(";")
            return ast.ExprStmt(expr=call, span=name_tok.span)

        raise ParseError(f"unexpected token after '{name}': {nxt}", nxt.span)

    # -- expressions -------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        lhs = self._parse_and()
        while self._peek().is_op("||"):
            op_tok = self._next()
            rhs = self._parse_and()
            lhs = ast.Binary(op="||", lhs=lhs, rhs=rhs, span=op_tok.span)
        return lhs

    def _parse_and(self) -> ast.Expr:
        lhs = self._parse_cmp()
        while self._peek().is_op("&&"):
            op_tok = self._next()
            rhs = self._parse_cmp()
            lhs = ast.Binary(op="&&", lhs=lhs, rhs=rhs, span=op_tok.span)
        return lhs

    def _parse_cmp(self) -> ast.Expr:
        lhs = self._parse_add()
        tok = self._peek()
        if tok.kind == TokenKind.OP and tok.text in _CMP_OPS:
            self._next()
            rhs = self._parse_add()
            return ast.Binary(op=tok.text, lhs=lhs, rhs=rhs, span=tok.span)
        return lhs

    def _parse_add(self) -> ast.Expr:
        lhs = self._parse_mul()
        while self._peek().kind == TokenKind.OP and self._peek().text in ("+", "-"):
            op_tok = self._next()
            rhs = self._parse_mul()
            lhs = ast.Binary(op=op_tok.text, lhs=lhs, rhs=rhs, span=op_tok.span)
        return lhs

    def _parse_mul(self) -> ast.Expr:
        lhs = self._parse_unary()
        while self._peek().kind == TokenKind.OP and self._peek().text in ("*", "/", "%"):
            op_tok = self._next()
            rhs = self._parse_unary()
            lhs = ast.Binary(op=op_tok.text, lhs=lhs, rhs=rhs, span=op_tok.span)
        return lhs

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.is_op("-") or tok.is_op("!"):
            self._next()
            operand = self._parse_unary()
            return ast.Unary(op=tok.text, operand=operand, span=tok.span)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        tok = self._next()
        if tok.kind == TokenKind.INT:
            return ast.IntLit(value=int(tok.text), span=tok.span)
        if tok.is_kw("true"):
            return ast.BoolLit(value=True, span=tok.span)
        if tok.is_kw("false"):
            return ast.BoolLit(value=False, span=tok.span)
        if tok.is_punct("("):
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        if tok.is_op("&"):
            name = self._expect_ident().text
            return ast.Ref(name=name, span=tok.span)
        if tok.is_kw("input"):
            self._expect_punct("(")
            channel = self._expect_ident().text
            self._expect_punct(")")
            return ast.Input(channel=channel, span=tok.span)
        if tok.kind == TokenKind.IDENT:
            name = tok.text
            if self._peek().is_punct("("):
                return self._parse_call_after_name(name, tok)
            if self._peek().is_punct("["):
                self._next()
                index = self._parse_expr()
                self._expect_punct("]")
                return ast.Index(array=name, index=index, span=tok.span)
            return ast.Var(name=name, span=tok.span)
        raise ParseError(f"expected expression, found {tok}", tok.span)

    def _parse_call_after_name(self, name: str, name_tok: Token) -> ast.Call:
        self._expect_punct("(")
        args: list[ast.Expr] = []
        if not self._peek().is_punct(")"):
            args.append(self._parse_expr())
            while self._peek().is_punct(","):
                self._next()
                args.append(self._parse_expr())
        self._expect_punct(")")
        return ast.Call(func=name, args=args, span=name_tok.span)


def parse_program(source: str) -> ast.Program:
    """Parse complete program text into a labeled :class:`~repro.lang.ast.Program`."""
    return Parser(tokenize(source)).parse_program()


def parse_function(source: str) -> ast.FuncDecl:
    """Parse a single ``fn`` declaration (handy in unit tests)."""
    parser = Parser(tokenize(source))
    func = parser._parse_function()
    tok = parser._peek()
    if tok.kind != TokenKind.EOF:
        raise ParseError(f"trailing input after function: {tok}", tok.span)
    return func
