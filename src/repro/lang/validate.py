"""Post-parse semantic validation.

The modeling language inherits the restrictions the paper imposes (Section
4.1) plus the Rust-like discipline its analyses assume (Section 5.1):

* no recursive functions (``disallowed by many intermittent systems``),
* no mutable globals aliasing -- nonvolatile globals are named directly,
* references are created only at call sites (``f(&x)``) and only flow into
  by-reference parameters, so the may-alias set of every location is a
  singleton,
* variables must be defined (``let``) before use; annotations must refer to
  defined variables,
* input channels must be declared.

:func:`validate_program` raises :class:`~repro.lang.errors.SemanticError`
on the first violation, and returns a :class:`ProgramInfo` summary on
success (call graph, per-function variable kinds) that later passes reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.lang.errors import SemanticError

#: Builtin arities; ``log`` and ``send`` are variadic (at least one arg).
_FIXED_ARITY = {"alarm": 0, "work": 1, "abs": 1, "min": 2, "max": 2}
_VARIADIC = {"log", "send"}


@dataclass
class FunctionInfo:
    """Per-function facts gathered during validation."""

    name: str
    params: list[ast.Param]
    locals: set[str] = field(default_factory=set)
    callees: set[str] = field(default_factory=set)
    has_return_value: bool = False

    @property
    def by_ref_params(self) -> set[str]:
        return {p.name for p in self.params if p.by_ref}


@dataclass
class ProgramInfo:
    """Whole-program facts: call graph and per-function summaries."""

    functions: dict[str, FunctionInfo]
    call_graph: dict[str, set[str]]

    def reachable_from(self, root: str) -> set[str]:
        seen: set[str] = set()
        stack = [root]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.call_graph.get(name, ()))
        return seen


class _FunctionValidator:
    def __init__(self, program: ast.Program, func: ast.FuncDecl):
        self._program = program
        self._func = func
        self.info = FunctionInfo(name=func.name, params=list(func.params))

    def run(self) -> FunctionInfo:
        defined = {p.name for p in self._func.params}
        self._check_body(self._func.body, defined)
        return self.info

    def _check_body(self, body: list[ast.Stmt], defined: set[str]) -> None:
        # ``defined`` is mutated: a let in a block scopes to the rest of the
        # enclosing body, mirroring ``let x = e in c``.
        for stmt in body:
            self._check_stmt(stmt, defined)

    def _check_stmt(self, stmt: ast.Stmt, defined: set[str]) -> None:
        if isinstance(stmt, ast.Let):
            self._check_expr(stmt.expr, defined)
            defined.add(stmt.name)
            self.info.locals.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            self._check_expr(stmt.expr, defined)
            if stmt.name not in defined and stmt.name not in self._program.globals:
                raise SemanticError(
                    f"assignment to undefined variable '{stmt.name}' in "
                    f"'{self._func.name}'",
                    stmt.span,
                )
            if stmt.name in self.info.by_ref_params:
                raise SemanticError(
                    f"cannot rebind reference parameter '{stmt.name}'; use "
                    f"'*{stmt.name} = ...' to write through it",
                    stmt.span,
                )
        elif isinstance(stmt, ast.StoreRef):
            self._check_expr(stmt.expr, defined)
            if stmt.name not in self.info.by_ref_params:
                raise SemanticError(
                    f"'*{stmt.name} = ...' requires '&{stmt.name}' parameter in "
                    f"'{self._func.name}'",
                    stmt.span,
                )
        elif isinstance(stmt, ast.StoreIndex):
            if stmt.array not in self._program.arrays:
                raise SemanticError(
                    f"store into undeclared array '{stmt.array}'", stmt.span
                )
            self._check_expr(stmt.index, defined)
            self._check_expr(stmt.expr, defined)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond, defined)
            self._check_body(stmt.then_body, set(defined))
            self._check_body(stmt.else_body, set(defined))
        elif isinstance(stmt, ast.Repeat):
            self._check_body(stmt.body, set(defined))
        elif isinstance(stmt, ast.Atomic):
            # Atomic brackets are commands, not binding constructs: a `let`
            # inside the region scopes to the rest of the enclosing body
            # (the Atomics-only transform relies on this transparency).
            self._check_body(stmt.body, defined)
        elif isinstance(stmt, ast.Return):
            if stmt.expr is not None:
                self._check_expr(stmt.expr, defined)
                self.info.has_return_value = True
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, defined)
        elif isinstance(stmt, ast.AnnotStmt):
            if stmt.var not in defined:
                raise SemanticError(
                    f"annotation references undefined variable '{stmt.var}'",
                    stmt.span,
                )
        elif isinstance(stmt, ast.Skip):
            pass
        else:
            raise SemanticError(
                f"unknown statement {type(stmt).__name__}", stmt.span
            )

    def _check_expr(self, expr: ast.Expr, defined: set[str]) -> None:
        for sub in ast.walk_exprs(expr):
            if isinstance(sub, ast.Var):
                known = (
                    sub.name in defined
                    or sub.name in self._program.globals
                )
                if not known:
                    raise SemanticError(
                        f"use of undefined variable '{sub.name}' in "
                        f"'{self._func.name}'",
                        sub.span,
                    )
            elif isinstance(sub, ast.Ref):
                # References are restricted to locals: taking '&' of a
                # nonvolatile global would create aliasing the analyses
                # (and Rust's discipline the paper leans on) exclude.
                if sub.name not in defined:
                    raise SemanticError(
                        f"reference to undefined local '{sub.name}'", sub.span
                    )
            elif isinstance(sub, ast.Index):
                if sub.array not in self._program.arrays:
                    raise SemanticError(
                        f"load from undeclared array '{sub.array}'", sub.span
                    )
            elif isinstance(sub, ast.Input):
                if sub.channel not in self._program.channels:
                    raise SemanticError(
                        f"input from undeclared channel '{sub.channel}'", sub.span
                    )
            elif isinstance(sub, ast.Call):
                self._check_call(sub)

    def _check_call(self, call: ast.Call) -> None:
        name = call.func
        if name in _VARIADIC:
            if not call.args:
                raise SemanticError(f"'{name}' needs at least one argument", call.span)
            self.info.callees.add(name)
            return
        if name in _FIXED_ARITY:
            if len(call.args) != _FIXED_ARITY[name]:
                raise SemanticError(
                    f"'{name}' takes {_FIXED_ARITY[name]} argument(s), got "
                    f"{len(call.args)}",
                    call.span,
                )
            self.info.callees.add(name)
            return
        if name not in self._program.functions:
            raise SemanticError(f"call to undefined function '{name}'", call.span)
        callee = self._program.functions[name]
        if len(call.args) != len(callee.params):
            raise SemanticError(
                f"'{name}' takes {len(callee.params)} argument(s), got "
                f"{len(call.args)}",
                call.span,
            )
        for arg, param in zip(call.args, callee.params, strict=True):
            arg_is_ref = isinstance(arg, ast.Ref)
            if arg_is_ref and not param.by_ref:
                raise SemanticError(
                    f"passing '&' argument to by-value parameter "
                    f"'{param.name}' of '{name}'",
                    call.span,
                )
            if param.by_ref and not arg_is_ref:
                raise SemanticError(
                    f"parameter '{param.name}' of '{name}' requires a '&' argument",
                    call.span,
                )
        self.info.callees.add(name)


def _check_no_recursion(info: ProgramInfo) -> None:
    """Reject direct or mutual recursion (iterative three-color DFS)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in info.call_graph}
    for root in info.call_graph:
        if color[root] != WHITE:
            continue
        stack: list[tuple[str, list[str]]] = [
            (root, sorted(info.call_graph[root]))
        ]
        color[root] = GRAY
        while stack:
            name, pending = stack[-1]
            if not pending:
                color[name] = BLACK
                stack.pop()
                continue
            child = pending.pop()
            if child not in color:
                continue  # builtin
            if color[child] == GRAY:
                raise SemanticError(
                    f"recursive call cycle through '{child}' (the modeling "
                    "language disallows recursion)"
                )
            if color[child] == WHITE:
                color[child] = GRAY
                stack.append((child, sorted(info.call_graph[child])))


def validate_program(program: ast.Program, require_main: bool = True) -> ProgramInfo:
    """Validate ``program``; return gathered :class:`ProgramInfo`.

    ``require_main=False`` relaxes the entry-point requirement for unit
    tests that validate fragments.
    """
    if require_main and "main" not in program.functions:
        raise SemanticError("program has no 'main' function")
    if "main" in program.functions and program.functions["main"].params:
        raise SemanticError("'main' must take no parameters")

    name_clashes = set(program.globals) & set(program.arrays)
    if name_clashes:
        raise SemanticError(f"global/array name clash: {sorted(name_clashes)}")
    seen_channels: set[str] = set()
    for channel in program.channels:
        if channel in seen_channels:
            raise SemanticError(f"duplicate input channel '{channel}'")
        seen_channels.add(channel)

    functions: dict[str, FunctionInfo] = {}
    for func in program.functions.values():
        seen_params: set[str] = set()
        for param in func.params:
            if param.name in seen_params:
                raise SemanticError(
                    f"duplicate parameter '{param.name}' in '{func.name}'", func.span
                )
            seen_params.add(param.name)
        functions[func.name] = _FunctionValidator(program, func).run()

    call_graph = {
        name: {c for c in info.callees if c in program.functions}
        for name, info in functions.items()
    }
    info = ProgramInfo(functions=functions, call_graph=call_graph)
    _check_no_recursion(info)
    return info
