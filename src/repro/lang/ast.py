"""Abstract syntax for the Ocelot modeling language.

The language follows Appendix A of the paper, extended with the constructs
the benchmark applications need:

* ``nonvolatile`` global scalars and arrays (the paper's nonvolatile memory
  ``N``),
* ``repeat n { ... }`` bounded loops (the paper unrolls bounded loops; we
  keep them in the CFG and bound them at run time),
* pass-by-reference parameters ``&x`` (rule Call-r),
* ``atomic { ... }`` programmer-placed regions (``startatom``/``endatom``),
* the two annotation forms: binding annotations ``let fresh x = e`` /
  ``let consistent(n) x = e`` and statement annotations ``Fresh(x);`` /
  ``Consistent(x, n);`` matching the Rust surface syntax of Figure 3.

Input operations are the primitive expression ``input(channel)`` where
``channel`` names a declared sensor channel; functions wrapping ``input``
become input-deriving functions discovered by the taint analysis, which is
how the paper's ``[IO: fn = tmp, pres, hum]`` declaration is exercised.

Every statement carries a ``label`` -- the per-function instruction label
:math:`\\ell` of the paper -- assigned by :func:`assign_labels`.  A
``(function, label)`` pair uniquely identifies an instruction, which is the
unit of provenance and policy bookkeeping throughout the system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.lang.errors import SemanticError, SourceSpan

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expressions.  Subclasses add payload fields."""

    span: SourceSpan = field(default_factory=SourceSpan.synthetic, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class Var(Expr):
    name: str


@dataclass
class Unary(Expr):
    op: str  # '-' or '!'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # + - * / % < <= > >= == != && ||
    lhs: Expr
    rhs: Expr


@dataclass
class Call(Expr):
    """A call in expression position: ``f(a, b, &c)``.

    Builtins (``log``, ``alarm``, ``send``, ``work``, ``min``, ``max``,
    ``abs``) are also represented as calls; the lowering pass maps them onto
    dedicated IR instructions.
    """

    func: str
    args: list[Expr]


@dataclass
class Input(Expr):
    """The primitive input operation ``input(channel)`` (``IN()`` in the paper).

    ``channel`` names a sensor channel declared with an ``inputs`` declaration.
    """

    channel: str


@dataclass
class Index(Expr):
    """Array load ``a[i]``."""

    array: str
    index: Expr


@dataclass
class Ref(Expr):
    """Reference-of ``&x``; only legal as a call argument (as in the paper)."""

    name: str


# ---------------------------------------------------------------------------
# Statements (the paper's commands / instructions)
# ---------------------------------------------------------------------------

UNLABELED = -1


@dataclass
class Stmt:
    """Base class for statements.

    ``label`` is the instruction label within the enclosing function, filled
    in by :func:`assign_labels`.  Compound statements (``if``, ``repeat``,
    ``atomic``) get labels too: the label identifies the *header* operation
    (the branch, the loop bound check, the region start).
    """

    span: SourceSpan = field(default_factory=SourceSpan.synthetic, kw_only=True)
    label: int = field(default=UNLABELED, kw_only=True)


class AnnotKind:
    """Annotation kinds attached to ``let`` bindings.

    ``FRESHCON`` is the combined ``FreshConsistent(x, n)`` form of Figure 9
    (the Tire benchmark): one source line declaring both constraints; the
    lowering splits it into a fresh and a consistent annotation instruction.
    """

    FRESH = "fresh"
    CONSISTENT = "consistent"
    FRESHCON = "freshconsistent"


@dataclass
class Let(Stmt):
    """``let x = e;`` with optional timing annotation.

    ``annot`` is ``None``, :data:`AnnotKind.FRESH`, or
    :data:`AnnotKind.CONSISTENT`; ``set_id`` is the consistent-set id for
    the latter.  The annotated forms correspond to ``let fresh x = e in c``
    and ``let consistent(n) x = e in c`` of Section 4.2.
    """

    name: str
    expr: Expr
    annot: Optional[str] = None
    set_id: Optional[int] = None


@dataclass
class Assign(Stmt):
    """``x = e;`` -- assignment to a mutable local or a nonvolatile global."""

    name: str
    expr: Expr


@dataclass
class StoreRef(Stmt):
    """``*p = e;`` -- store through a pass-by-reference parameter."""

    name: str
    expr: Expr


@dataclass
class StoreIndex(Stmt):
    """``a[i] = e;`` -- store into a nonvolatile array."""

    array: str
    index: Expr
    expr: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then_body: list[Stmt]
    else_body: list[Stmt]


@dataclass
class Repeat(Stmt):
    """``repeat n { ... }`` -- a loop with a compile-time bound ``count``."""

    count: int
    body: list[Stmt]


@dataclass
class Atomic(Stmt):
    """``atomic { ... }`` -- a programmer-placed atomic region."""

    body: list[Stmt]


@dataclass
class Return(Stmt):
    expr: Optional[Expr]


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect, e.g. ``log(y, z);``."""

    expr: Expr


@dataclass
class AnnotStmt(Stmt):
    """Statement-form annotation: ``Fresh(x);`` or ``Consistent(x, n);``.

    These mirror Ocelot's Rust annotations (calls to empty marker functions,
    Figure 3).  The analysis resolves them onto the reaching definition of
    ``var``.
    """

    kind: str  # AnnotKind.FRESH or AnnotKind.CONSISTENT
    var: str
    set_id: Optional[int] = None


@dataclass
class Skip(Stmt):
    """The no-op instruction of the modeling language."""


# ---------------------------------------------------------------------------
# Declarations and programs
# ---------------------------------------------------------------------------


@dataclass
class Param:
    """A function parameter; ``by_ref`` marks ``&x`` pass-by-reference."""

    name: str
    by_ref: bool = False


@dataclass
class FuncDecl:
    name: str
    params: list[Param]
    body: list[Stmt]
    span: SourceSpan = field(default_factory=SourceSpan.synthetic)

    @property
    def param_names(self) -> list[str]:
        return [p.name for p in self.params]


@dataclass
class GlobalDecl:
    """``nonvolatile x = 3;`` -- a scalar in nonvolatile memory."""

    name: str
    init: int = 0
    span: SourceSpan = field(default_factory=SourceSpan.synthetic)


@dataclass
class ArrayDecl:
    """``nonvolatile a[8];`` -- an array in nonvolatile memory."""

    name: str
    size: int
    init: Optional[list[int]] = None
    span: SourceSpan = field(default_factory=SourceSpan.synthetic)

    def initial_values(self) -> list[int]:
        if self.init is None:
            return [0] * self.size
        return list(self.init)


@dataclass
class Program:
    """A complete program: functions, nonvolatile state, sensor channels.

    ``main`` is the entry point, as in the paper.  ``channels`` lists the
    declared sensor channels in declaration order; the violation detector
    assigns each channel a bit-vector position from this order (Section 7.3).
    """

    functions: dict[str, FuncDecl]
    globals: dict[str, GlobalDecl] = field(default_factory=dict)
    arrays: dict[str, ArrayDecl] = field(default_factory=dict)
    channels: list[str] = field(default_factory=list)

    def function(self, name: str) -> FuncDecl:
        try:
            return self.functions[name]
        except KeyError:
            raise SemanticError(f"undefined function '{name}'") from None

    @property
    def main(self) -> FuncDecl:
        return self.function("main")


# Builtin output / utility functions recognized by the lowering pass.  The
# first group produce *observations* (externally visible effects); ``work``
# burns a given number of cycles to model computation.
OUTPUT_BUILTINS = frozenset({"log", "alarm", "send"})
PURE_BUILTINS = frozenset({"min", "max", "abs"})
EFFECT_BUILTINS = OUTPUT_BUILTINS | {"work"}
BUILTINS = EFFECT_BUILTINS | PURE_BUILTINS


# ---------------------------------------------------------------------------
# Generic traversal helpers
# ---------------------------------------------------------------------------


def child_blocks(stmt: Stmt) -> list[list[Stmt]]:
    """The nested statement lists of a compound statement (empty for leaves)."""
    if isinstance(stmt, If):
        return [stmt.then_body, stmt.else_body]
    if isinstance(stmt, (Repeat, Atomic)):
        return [stmt.body]
    return []


def walk_stmts(body: list[Stmt]) -> Iterator[Stmt]:
    """Yield every statement in ``body``, depth-first, headers before bodies."""
    for stmt in body:
        yield stmt
        for block in child_blocks(stmt):
            yield from walk_stmts(block)


def stmt_exprs(stmt: Stmt) -> list[Expr]:
    """The directly-contained expressions of a statement (non-recursive)."""
    if isinstance(stmt, (Let, Assign, StoreRef)):
        return [stmt.expr]
    if isinstance(stmt, StoreIndex):
        return [stmt.index, stmt.expr]
    if isinstance(stmt, If):
        return [stmt.cond]
    if isinstance(stmt, ExprStmt):
        return [stmt.expr]
    if isinstance(stmt, Return) and stmt.expr is not None:
        return [stmt.expr]
    return []


def walk_exprs(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression, depth-first pre-order."""
    yield expr
    if isinstance(expr, Unary):
        yield from walk_exprs(expr.operand)
    elif isinstance(expr, Binary):
        yield from walk_exprs(expr.lhs)
        yield from walk_exprs(expr.rhs)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_exprs(arg)
    elif isinstance(expr, Index):
        yield from walk_exprs(expr.index)


def free_vars(expr: Expr) -> set[str]:
    """Variable names read by ``expr`` (references count as reads)."""
    names: set[str] = set()
    for sub in walk_exprs(expr):
        if isinstance(sub, (Var, Ref)):
            names.add(sub.name)
        elif isinstance(sub, Index):
            names.add(sub.array)
    return names


def assign_labels(program: Program) -> None:
    """Assign per-function instruction labels, in lexical order.

    Labels start at 1 inside each function (matching the paper's examples,
    where ``fn app() { 1: x := tmp() ... }``).  Idempotent: re-running
    renumbers consistently.
    """
    for func in program.functions.values():
        counter = 1
        for stmt in walk_stmts(func.body):
            stmt.label = counter
            counter += 1


def find_labeled(func: FuncDecl, label: int) -> Stmt:
    """Look up the statement with ``label`` in ``func`` (raises if missing)."""
    for stmt in walk_stmts(func.body):
        if stmt.label == label:
            return stmt
    raise SemanticError(f"no statement labeled {label} in function '{func.name}'")


Node = Union[Expr, Stmt, FuncDecl, Program]
