"""Error types shared by the language front end.

Every front-end failure carries a :class:`SourceSpan` so that callers (and
tests) can pinpoint the offending token.  The span is intentionally small --
line / column pairs -- because the modeling language is meant for programs of
a few hundred lines, matching the benchmarks in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceSpan:
    """A half-open region of source text, ``(line, col)`` to ``(end_line, end_col)``.

    Lines and columns are 1-based, matching most editors.  A zero-width span
    (``line == end_line`` and ``col == end_col``) marks a point, which is how
    synthesized nodes (e.g. unrolled loop bodies) are tagged.
    """

    line: int
    col: int
    end_line: int
    end_col: int

    @staticmethod
    def point(line: int, col: int) -> "SourceSpan":
        return SourceSpan(line, col, line, col)

    @staticmethod
    def synthetic() -> "SourceSpan":
        """Span for nodes that have no surface-syntax origin."""
        return SourceSpan(0, 0, 0, 0)

    def merge(self, other: "SourceSpan") -> "SourceSpan":
        """Smallest span covering both ``self`` and ``other``."""
        start = min((self.line, self.col), (other.line, other.col))
        end = max((self.end_line, self.end_col), (other.end_line, other.end_col))
        return SourceSpan(start[0], start[1], end[0], end[1])

    def __str__(self) -> str:
        if self == SourceSpan.synthetic():
            return "<synthetic>"
        return f"{self.line}:{self.col}"


class LangError(Exception):
    """Base class for all front-end errors."""

    def __init__(self, message: str, span: SourceSpan | None = None):
        self.span = span or SourceSpan.synthetic()
        super().__init__(f"{self.span}: {message}" if span else message)
        self.message = message


class LexError(LangError):
    """Raised when the lexer meets a character it cannot tokenize."""


class ParseError(LangError):
    """Raised when the token stream does not match the grammar."""


class SemanticError(LangError):
    """Raised by post-parse validation (duplicate functions, bad arity, ...)."""
