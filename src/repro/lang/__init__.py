"""Front end for the Ocelot modeling language (Appendix A of the paper).

Public surface:

* :func:`repro.lang.parser.parse_program` -- text to labeled AST,
* :func:`repro.lang.printer.print_program` -- AST back to text,
* :func:`repro.lang.validate.validate_program` -- semantic checks,
* :mod:`repro.lang.ast` -- node classes and traversal helpers.
"""

from repro.lang.ast import Program
from repro.lang.errors import LangError, LexError, ParseError, SemanticError
from repro.lang.parser import parse_function, parse_program
from repro.lang.printer import print_expr, print_function, print_program
from repro.lang.validate import ProgramInfo, validate_program

__all__ = [
    "Program",
    "LangError",
    "LexError",
    "ParseError",
    "SemanticError",
    "parse_program",
    "parse_function",
    "print_expr",
    "print_function",
    "print_program",
    "ProgramInfo",
    "validate_program",
]
