"""Pretty-printer: AST back to surface syntax.

``parse(print(ast))`` round-trips to a structurally equal AST (spans and
labels aside), which the property tests rely on.  Output is deterministic:
declarations print in insertion order, two-space indentation.
"""

from __future__ import annotations

from repro.lang import ast

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "<": 3,
    "<=": 3,
    ">": 3,
    ">=": 3,
    "==": 3,
    "!=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "%": 5,
}
_UNARY_PRECEDENCE = 6


def print_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    """Render ``expr``, parenthesizing only where precedence demands."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.Ref):
        return f"&{expr.name}"
    if isinstance(expr, ast.Input):
        return f"input({expr.channel})"
    if isinstance(expr, ast.Index):
        return f"{expr.array}[{print_expr(expr.index)}]"
    if isinstance(expr, ast.Call):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, ast.Unary):
        inner = print_expr(expr.operand, _UNARY_PRECEDENCE)
        text = f"{expr.op}{inner}"
        if parent_prec > _UNARY_PRECEDENCE:
            return f"({text})"
        return text
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE[expr.op]
        # Left-associative: the right child needs a strictly higher context.
        lhs = print_expr(expr.lhs, prec)
        rhs = print_expr(expr.rhs, prec + 1)
        text = f"{lhs} {expr.op} {rhs}"
        if prec < parent_prec:
            return f"({text})"
        return text
    raise TypeError(f"unknown expression node: {type(expr).__name__}")


def _print_stmt(stmt: ast.Stmt, indent: int) -> list[str]:
    pad = "  " * indent
    if isinstance(stmt, ast.Let):
        head = "let"
        if stmt.annot == ast.AnnotKind.FRESH:
            head = "let fresh"
        elif stmt.annot == ast.AnnotKind.CONSISTENT:
            head = f"let consistent({stmt.set_id})"
        return [f"{pad}{head} {stmt.name} = {print_expr(stmt.expr)};"]
    if isinstance(stmt, ast.Assign):
        return [f"{pad}{stmt.name} = {print_expr(stmt.expr)};"]
    if isinstance(stmt, ast.StoreRef):
        return [f"{pad}*{stmt.name} = {print_expr(stmt.expr)};"]
    if isinstance(stmt, ast.StoreIndex):
        return [
            f"{pad}{stmt.array}[{print_expr(stmt.index)}] = {print_expr(stmt.expr)};"
        ]
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if {print_expr(stmt.cond)} {{"]
        for child in stmt.then_body:
            lines.extend(_print_stmt(child, indent + 1))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            for child in stmt.else_body:
                lines.extend(_print_stmt(child, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.Repeat):
        lines = [f"{pad}repeat {stmt.count} {{"]
        for child in stmt.body:
            lines.extend(_print_stmt(child, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.Atomic):
        lines = [f"{pad}atomic {{"]
        for child in stmt.body:
            lines.extend(_print_stmt(child, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.Return):
        if stmt.expr is None:
            return [f"{pad}return;"]
        return [f"{pad}return {print_expr(stmt.expr)};"]
    if isinstance(stmt, ast.ExprStmt):
        return [f"{pad}{print_expr(stmt.expr)};"]
    if isinstance(stmt, ast.AnnotStmt):
        if stmt.kind == ast.AnnotKind.FRESH:
            return [f"{pad}Fresh({stmt.var});"]
        if stmt.kind == ast.AnnotKind.FRESHCON:
            return [f"{pad}FreshConsistent({stmt.var}, {stmt.set_id});"]
        return [f"{pad}Consistent({stmt.var}, {stmt.set_id});"]
    if isinstance(stmt, ast.Skip):
        return [f"{pad}skip;"]
    raise TypeError(f"unknown statement node: {type(stmt).__name__}")


def print_function(func: ast.FuncDecl) -> str:
    params = ", ".join(("&" + p.name) if p.by_ref else p.name for p in func.params)
    lines = [f"fn {func.name}({params}) {{"]
    for stmt in func.body:
        lines.extend(_print_stmt(stmt, 1))
    lines.append("}")
    return "\n".join(lines)


def print_program(program: ast.Program) -> str:
    """Render a full program; parseable by :func:`repro.lang.parser.parse_program`."""
    chunks: list[str] = []
    if program.channels:
        chunks.append("inputs " + ", ".join(program.channels) + ";")
    for decl in program.globals.values():
        chunks.append(f"nonvolatile {decl.name} = {decl.init};")
    for arr in program.arrays.values():
        if arr.init is None:
            chunks.append(f"nonvolatile {arr.name}[{arr.size}];")
        else:
            init = ", ".join(str(v) for v in arr.init)
            chunks.append(f"nonvolatile {arr.name}[{arr.size}] = [{init}];")
    for func in program.functions.values():
        chunks.append(print_function(func))
    return "\n\n".join(chunks) + "\n"
