"""Tokenizer for the Ocelot modeling language.

A small hand-written scanner: the grammar has no context sensitivity, so a
single-pass lexer with one character of lookahead suffices.  Comments are
``//`` to end of line.  Keywords are carved out of the identifier rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.lang.errors import LexError, SourceSpan


class TokenKind:
    INT = "INT"
    IDENT = "IDENT"
    KEYWORD = "KEYWORD"
    OP = "OP"
    PUNCT = "PUNCT"
    EOF = "EOF"


KEYWORDS = frozenset(
    {
        "fn",
        "let",
        "fresh",
        "consistent",
        "if",
        "else",
        "repeat",
        "atomic",
        "return",
        "true",
        "false",
        "nonvolatile",
        "inputs",
        "input",
        "skip",
    }
)

# Multi-character operators first so maximal munch works by ordered scan.
_TWO_CHAR_OPS = ("==", "!=", "<=", ">=", "&&", "||")
_ONE_CHAR_OPS = tuple("+-*/%<>!=&")
_PUNCT = tuple("(){}[];,")


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    span: SourceSpan

    def is_kw(self, word: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.text == word

    def is_op(self, op: str) -> bool:
        return self.kind == TokenKind.OP and self.text == op

    def is_punct(self, punct: str) -> bool:
        return self.kind == TokenKind.PUNCT and self.text == punct

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})"


class Lexer:
    """Scans source text into a token stream ending with a single EOF token."""

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokens(self) -> list[Token]:
        return list(self._scan())

    # -- internals ----------------------------------------------------------

    def _scan(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            if self._pos >= len(self._source):
                yield Token(TokenKind.EOF, "", SourceSpan.point(self._line, self._col))
                return
            yield self._next_token()

    def _skip_trivia(self) -> None:
        src = self._source
        while self._pos < len(src):
            ch = src[self._pos]
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(src) and src[self._pos] != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        start_line, start_col = self._line, self._col
        ch = self._source[self._pos]

        if ch.isdigit():
            text = self._take_while(str.isdigit)
            return self._mk(TokenKind.INT, text, start_line, start_col)

        if ch.isalpha() or ch == "_":
            text = self._take_while(lambda c: c.isalnum() or c == "_")
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            return self._mk(kind, text, start_line, start_col)

        two = self._source[self._pos : self._pos + 2]
        if two in _TWO_CHAR_OPS:
            self._advance()
            self._advance()
            return self._mk(TokenKind.OP, two, start_line, start_col)

        if ch in _ONE_CHAR_OPS:
            self._advance()
            return self._mk(TokenKind.OP, ch, start_line, start_col)

        if ch in _PUNCT:
            self._advance()
            return self._mk(TokenKind.PUNCT, ch, start_line, start_col)

        raise LexError(
            f"unexpected character {ch!r}", SourceSpan.point(start_line, start_col)
        )

    def _mk(self, kind: str, text: str, line: int, col: int) -> Token:
        span = SourceSpan(line, col, self._line, self._col)
        return Token(kind, text, span)

    def _take_while(self, pred) -> str:
        start = self._pos
        while self._pos < len(self._source) and pred(self._source[self._pos]):
            self._advance()
        return self._source[start : self._pos]

    def _peek(self, offset: int = 0) -> str:
        idx = self._pos + offset
        if idx < len(self._source):
            return self._source[idx]
        return ""

    def _advance(self) -> None:
        if self._source[self._pos] == "\n":
            self._line += 1
            self._col = 1
        else:
            self._col += 1
        self._pos += 1


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: lex ``source`` into a token list (EOF-terminated)."""
    return Lexer(source).tokens()
