"""Content-addressed cache of compiled programs.

The evaluation sweeps the same six benchmark sources through the same
build configurations for every table and figure; compiling is by far the
most expensive per-job step, so the campaign engine, the CLI, and the
benchmarks all share one :class:`CompileCache`.

Keys are content-addressed: the SHA-256 of the program text plus the
*pass-pipeline fingerprint* of the build configuration (see
:func:`repro.core.passes.pipeline_fingerprint`) plus every
:class:`~repro.core.pipeline.PipelineOptions` field.  Editing one
character of source, flipping one option, or reordering / re-parameterizing
one pass yields a different key, so stale builds can never be served --
while two configurations that declare the *same* pipeline share builds,
whatever their names.  (One consequence of sharing: the served
``CompiledProgram.config`` carries the name of whichever same-pipeline
configuration compiled first.)
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.core.passes import resolve_config
from repro.core.pipeline import (
    CONFIG_OCELOT,
    CompiledProgram,
    ConfigLike,
    PipelineOptions,
    compile_source,
)


@dataclass(frozen=True)
class CacheKey:
    """Identity of one build: source digest x pipeline x options."""

    source_hash: str
    #: the configuration's pass-pipeline fingerprint (not its name)
    pipeline: str
    options: tuple

    @classmethod
    def make(
        cls,
        source: str,
        config: ConfigLike = CONFIG_OCELOT,
        options: Optional[PipelineOptions] = None,
    ) -> "CacheKey":
        options = options or PipelineOptions()
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        return cls(
            source_hash=digest,
            pipeline=resolve_config(config).fingerprint(),
            options=dataclasses.astuple(options),
        )


@dataclass
class CacheStats:
    """Hit/miss counters; ``compiles`` counts actual pipeline runs."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def compiles(self) -> int:
        return self.misses

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def snapshot(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "compiles": self.compiles,
            "evictions": self.evictions,
        }


class CompileCache:
    """LRU cache of :class:`CompiledProgram` keyed by build identity.

    Thread-safe for lookups; a compile miss runs outside the lock so
    concurrent misses on *different* keys do not serialize (concurrent
    misses on the same key may compile twice, last write wins -- the
    pipeline is deterministic, so both results are identical).
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive (or None)")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[CacheKey, CompiledProgram] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def lookup(self, key: CacheKey) -> Optional[CompiledProgram]:
        """The cached build for ``key``, or None; does not touch stats."""
        with self._lock:
            compiled = self._entries.get(key)
            if compiled is not None:
                self._entries.move_to_end(key)
            return compiled

    def get_or_compile(
        self,
        source: str,
        config: ConfigLike = CONFIG_OCELOT,
        options: Optional[PipelineOptions] = None,
    ) -> CompiledProgram:
        compiled, _ = self.get_or_compile_with_info(source, config, options)
        return compiled

    def get_or_compile_with_info(
        self,
        source: str,
        config: ConfigLike = CONFIG_OCELOT,
        options: Optional[PipelineOptions] = None,
    ) -> tuple[CompiledProgram, bool]:
        """The build for (source, config, options) plus a was-cached flag."""
        key = CacheKey.make(source, config, options)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return cached, True
            self.stats.misses += 1
        compiled = compile_source(source, config=config, options=options)
        self.put(key, compiled)
        return compiled, False

    def put(self, key: CacheKey, compiled: CompiledProgram) -> None:
        with self._lock:
            self._entries[key] = compiled
            self._entries.move_to_end(key)
            while self.max_entries is not None and len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (and reset the statistics)."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()


#: Process-wide cache shared by the CLI, the evaluation, and benchmarks.
GLOBAL_CACHE = CompileCache()


def compile_cached(
    source: str,
    config: ConfigLike = CONFIG_OCELOT,
    options: Optional[PipelineOptions] = None,
    cache: Optional[CompileCache] = None,
) -> CompiledProgram:
    """Compile through ``cache`` (default: the process-wide cache)."""
    return (cache or GLOBAL_CACHE).get_or_compile(source, config, options)
