"""The Ocelot compilation pipeline (Figure 3).

``compile_source`` / ``compile_program`` drive the full toolchain:

1. parse + validate the annotated program,
2. apply the build configuration's shape (Ocelot / JIT-only /
   Atomics-only),
3. lower to IR (UART guard regions included for every configuration,
   Section 7.2),
4. run the taint analysis and build policy declarations (``getAnnotations``
   / ``searchOps`` / ``buildSummary`` of Figure 3),
5. infer and insert atomic regions (Ocelot and Atomics-only),
6. run the WAR/EMW analysis to stamp undo-log omega sets,
7. verify the IR and run the Section 5.2 checks,
8. compile the detector plan (Section 7.3) used by the runtime.

The JIT-only configuration skips inference, so its check report records
the violations-by-construction the paper's Table 2 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.policies import PolicyDecls, PolicyMap, build_policies
from repro.analysis.taint import TaintResult, analyze_module
from repro.baselines.atomics_only import atomics_only_transform
from repro.core.checker import CheckReport, check_program
from repro.core.inference import InferredRegion, infer_atomic
from repro.core.war import RegionInfo, annotate_omegas
from repro.ir.lowering import LoweringOptions, lower_program
from repro.ir.module import Module
from repro.ir.verify import verify_module
from repro.lang import ast
from repro.lang.parser import parse_program
from repro.lang.validate import validate_program

#: The three build configurations of the evaluation (Section 7.2).
CONFIG_OCELOT = "ocelot"
CONFIG_JIT = "jit"
CONFIG_ATOMICS = "atomics"
CONFIGS = (CONFIG_OCELOT, CONFIG_JIT, CONFIG_ATOMICS)


class CompileError(Exception):
    """Raised when a build that promises correctness fails its checks."""


@dataclass
class CompiledProgram:
    """Everything the runtime and the evaluation need about one build."""

    config: str
    program: ast.Program
    module: Module
    taint: TaintResult
    policies: PolicyDecls
    policy_map: PolicyMap
    regions: list[InferredRegion]
    region_infos: list[RegionInfo]
    check: CheckReport
    source: Optional[str] = None

    @property
    def enforces_policies(self) -> bool:
        """Did this build pass the Section 5.2 checks?"""
        return self.check.ok

    def detector_plan(self):
        from repro.runtime.detector import build_detector_plan

        return build_detector_plan(self.policies)


@dataclass
class PipelineOptions:
    """Compilation knobs; defaults match the paper's evaluation setup."""

    guard_outputs: bool = True
    unroll_loops: bool = True
    include_trivial: bool = False
    #: raise if a correctness-promising config fails the checks
    strict: bool = True


def compile_program(
    program: ast.Program,
    config: str = CONFIG_OCELOT,
    options: Optional[PipelineOptions] = None,
    source: Optional[str] = None,
) -> CompiledProgram:
    options = options or PipelineOptions()
    if config not in CONFIGS:
        raise ValueError(f"unknown build configuration '{config}'")

    shaped = program
    keep_manual = True
    if config == CONFIG_ATOMICS:
        shaped = atomics_only_transform(program)
    elif config == CONFIG_JIT:
        keep_manual = False  # strip programmer regions: pure JIT baseline

    info = validate_program(shaped)
    lowering = LoweringOptions(
        guard_outputs=options.guard_outputs,
        keep_manual_atomics=keep_manual,
        unroll_loops=options.unroll_loops,
    )
    module = lower_program(shaped, options=lowering, info=info)
    verify_module(module)

    taint = analyze_module(module)
    policies = build_policies(taint)

    regions: list[InferredRegion] = []
    policy_map = PolicyMap()
    if config in (CONFIG_OCELOT, CONFIG_ATOMICS):
        policy_map, regions = infer_atomic(
            module, policies, include_trivial=options.include_trivial
        )
        verify_module(module)

    region_infos = annotate_omegas(module)

    # Re-run the analysis on the instrumented module so the checker sees
    # final instruction labels; policies are label-stable by construction.
    final_taint = analyze_module(module)
    final_policies = build_policies(final_taint)
    check = check_program(
        module,
        final_policies,
        final_taint,
        policy_map if config != CONFIG_JIT else None,
        include_trivial=options.include_trivial,
    )
    if config != CONFIG_JIT and options.strict and not check.ok:
        raise CompileError(
            f"{config} build failed policy checks: {check.failures[:3]}"
        )

    return CompiledProgram(
        config=config,
        program=shaped,
        module=module,
        taint=final_taint,
        policies=final_policies,
        policy_map=policy_map,
        regions=regions,
        region_infos=region_infos,
        check=check,
        source=source,
    )


def compile_source(
    source: str,
    config: str = CONFIG_OCELOT,
    options: Optional[PipelineOptions] = None,
) -> CompiledProgram:
    """Parse and compile program text under one build configuration."""
    program = parse_program(source)
    return compile_program(program, config=config, options=options, source=source)


def compile_all_configs(
    source: str, options: Optional[PipelineOptions] = None
) -> dict[str, CompiledProgram]:
    """The three builds of the evaluation, from one annotated source."""
    return {
        config: compile_source(source, config=config, options=options)
        for config in CONFIGS
    }
