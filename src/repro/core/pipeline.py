"""The Ocelot compilation toolchain (Figure 3) -- facade.

Compilation is a *pass pipeline* over a mutable build context (see
:mod:`repro.core.passes`): each registered
:class:`~repro.core.passes.BuildConfig` declares the ordered passes of
one configuration, and :func:`compile_program` simply resolves the
configuration and hands the context to a
:class:`~repro.core.passes.PassManager`.  The paper's three
configurations (Section 7.2) are registered pipelines --

* ``ocelot`` -- validate, lower, taint, policies, region inference,
  WAR/EMW omega stamping, re-analysis, Section 5.2 checks;
* ``jit`` -- no manual or inferred regions; its check report records the
  violations-by-construction the paper's Table 2 demonstrates;
* ``atomics`` -- the DINO-style whole-program region transform, then the
  Ocelot pipeline on top;

-- and derived ablations (``ocelot-noguard``, ``atomics-trivial``, or
any user-registered config) are declared the same way, so no
``if config == ...`` branching exists in the compile path.

This module keeps the historical entry points (``compile_source`` /
``compile_program`` / ``compile_all_configs``) and re-exports the shared
dataclasses (:class:`CompiledProgram`, :class:`PipelineOptions`,
:class:`CompileError`), so existing callers keep working unchanged.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.passes import (
    BuildConfig,
    BuildContext,
    CompiledProgram,
    CompileError,
    PassManager,
    PipelineOptions,
    UnknownConfigError,
    config_names,
    resolve_config,
)
from repro.lang import ast
from repro.lang.parser import parse_program

#: The three build configurations of the evaluation (Section 7.2).
#: More are registered in :mod:`repro.core.passes.config`; use
#: :func:`repro.core.passes.config_names` for the full list.
CONFIG_OCELOT = "ocelot"
CONFIG_JIT = "jit"
CONFIG_ATOMICS = "atomics"
CONFIGS = (CONFIG_OCELOT, CONFIG_JIT, CONFIG_ATOMICS)

ConfigLike = Union[str, BuildConfig]

__all__ = [
    "CONFIG_OCELOT",
    "CONFIG_JIT",
    "CONFIG_ATOMICS",
    "CONFIGS",
    "ConfigLike",
    "CompileError",
    "CompiledProgram",
    "PipelineOptions",
    "UnknownConfigError",
    "compile_program",
    "compile_source",
    "compile_all_configs",
    "config_names",
]


def compile_program(
    program: ast.Program,
    config: ConfigLike = CONFIG_OCELOT,
    options: Optional[PipelineOptions] = None,
    source: Optional[str] = None,
) -> CompiledProgram:
    """Run ``config``'s pass pipeline over ``program``.

    ``config`` is a registered configuration name or a
    :class:`BuildConfig` instance; unknown names raise
    :class:`UnknownConfigError` (a :class:`ValueError`) listing every
    registered name.
    """
    build = resolve_config(config)
    ctx = BuildContext(
        program=program,
        options=options or PipelineOptions(),
        config_name=build.name,
        source=source,
    )
    PassManager(build.passes).run(ctx)
    return ctx.finish()


def compile_source(
    source: str,
    config: ConfigLike = CONFIG_OCELOT,
    options: Optional[PipelineOptions] = None,
) -> CompiledProgram:
    """Parse and compile program text under one build configuration."""
    program = parse_program(source)
    return compile_program(program, config=config, options=options, source=source)


def compile_all_configs(
    source: str, options: Optional[PipelineOptions] = None
) -> dict[str, CompiledProgram]:
    """The three builds of the evaluation, from one annotated source."""
    return {
        config: compile_source(source, config=config, options=options)
        for config in CONFIGS
    }
