"""Atomic region inference -- Algorithm 1 of the paper.

For each policy the algorithm:

1. maps every policy operation (context-qualified chain) to a basic block
   (line 5),
2. finds the *candidate function*: the deepest function such that every
   operation is in it or a policy-named descendant call (``findCandidate``,
   lines 6 and the recursion described in Section 6.2).  Our
   :func:`find_candidate` implements the paper's recursive walk; it is
   provably the longest common call-site prefix of the operations' chains
   (:func:`repro.analysis.provenance.common_context`), and a property test
   keeps the two in agreement,
3. hoists each operation to the call site within the candidate function
   that reaches it (lines 7-16; with chains this is a single index),
4. takes the closest common dominator / post-dominator of the hoisted
   blocks (lines 17-18, LCA queries on the dominator trees),
5. truncates to instruction granularity: the region starts immediately
   before the earliest policy operation in the start block and ends
   immediately after the latest one in the end block (line 19), and
6. inserts ``startatom``/``endatom`` (line 20).

If the latest operation in the end block is the block's terminator (a
branch that *uses* a fresh value), the end marker slides to the immediate
post-dominator block, except at the function's return landing-pad where it
is placed just before ``ret``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.policies import Policy, PolicyDecls, PolicyMap
from repro.analysis.provenance import Chain, Context, common_context, representative_op
from repro.ir import instructions as ir
from repro.ir.callgraph import CallGraph, build_call_graph
from repro.ir.dominators import dominator_tree, postdominator_tree
from repro.ir.module import IRFunction, Module


class InferenceError(Exception):
    """Raised when no legal region placement exists for a policy."""


@dataclass
class InferredRegion:
    """One region placement decision, for reporting and tests."""

    region: str
    pid: str
    func: str
    start_block: str
    start_index: int
    end_block: str
    end_index: int
    reps: list[ir.InstrId] = field(default_factory=list)


def candidate_function(module: Module, context: Context) -> str:
    """The function a candidate context denotes (``main`` for the empty one)."""
    if not context:
        return module.entry
    call = module.instr(context[-1])
    if not isinstance(call, ir.CallInstr):
        raise InferenceError(f"{context[-1]} is not a call site")
    return call.func


def find_candidate(
    module: Module, chains: list[Chain], graph: CallGraph | None = None
) -> Context:
    """The paper's recursive ``findCandidate`` over the call tree.

    Walks from the root, descending only through call sites that appear in
    the policy's provenance, and returns the deepest context containing
    every operation.  Equivalent to the longest common call-site prefix of
    the chains (property-tested against
    :func:`repro.analysis.provenance.common_context`).
    """
    if not chains:
        raise InferenceError("policy has no operations")
    graph = graph or build_call_graph(module)

    def visit(prefix: Context) -> Context:
        # All chains extend ``prefix`` when we get here.  Try descending:
        # a deeper candidate needs every chain to continue through one and
        # the same call site (a chain whose operation *is* at this level
        # pins the candidate here).
        next_ids = set()
        for chain in chains:
            if len(chain) == len(prefix) + 1:
                return prefix  # this chain's op lives directly here
            next_ids.add(chain.ids[len(prefix)])
        if len(next_ids) != 1:
            return prefix
        site = next_ids.pop()
        instr = module.instr(site)
        if not isinstance(instr, ir.CallInstr):
            return prefix
        return visit(prefix + (site,))

    for chain in chains:
        if not chain.extends(()):
            raise InferenceError(f"chain {chain} not rooted at main")
    return visit(())


def _positions(
    func: IRFunction, reps: list[ir.InstrId]
) -> dict[ir.InstrId, tuple[str, int]]:
    return {rep: func.position_of(rep) for rep in reps}


@dataclass
class _Placement:
    func: str
    start_block: str
    start_index: int
    end_block: str
    end_index: int


def _truncate(
    func: IRFunction,
    reps: list[ir.InstrId],
    start_block: str,
    end_block: str,
) -> _Placement:
    """Line 19 of Algorithm 1: instruction-granular start and end points."""
    positions = _positions(func, reps)

    in_start = [idx for rep, (blk, idx) in positions.items() if blk == start_block]
    start_index = min(in_start, default=len(func.blocks[start_block].instrs))

    pdom = postdominator_tree(func)
    current = end_block
    guard = 0
    while True:
        guard += 1
        if guard > len(func.blocks) + 2:
            raise InferenceError(f"could not place region end in {func.name}")
        block = func.blocks[current]
        here = [idx for rep, (blk, idx) in positions.items() if blk == current]
        terminator_is_rep = bool(here) and max(here) >= len(block.instrs)
        if terminator_is_rep:
            if current == func.exit:
                end_index = len(block.instrs)  # just before ret
                break
            current = pdom.idom[current]
            continue
        end_index = (max(here) + 1) if here else 0
        break

    return _Placement(
        func=func.name,
        start_block=start_block,
        start_index=start_index,
        end_block=current,
        end_index=end_index,
    )


@dataclass
class _Insertion:
    func: str
    block: str
    index: int
    marker: ir.Instr
    #: sort key: at equal indices, ends (0) land before starts (1) so
    #: adjacent regions stay disjoint rather than accidentally overlapping.
    kind: int


def infer_atomic(
    module: Module,
    policies: PolicyDecls,
    include_trivial: bool = False,
) -> tuple[PolicyMap, list[InferredRegion]]:
    """Run region inference and insert the markers; returns ``PM`` + report.

    ``include_trivial`` also materializes regions for policies that have
    nothing to enforce (no inputs / a single input); by default they are
    skipped, matching Ocelot's goal of smallest sufficient regions.
    """
    graph = build_call_graph(module)
    policy_map = PolicyMap()
    placements: list[tuple[Policy, _Placement, list[ir.InstrId]]] = []

    for pid in sorted(policies.by_pid):
        policy = policies.get(pid)
        if policy.is_trivial() and not include_trivial:
            continue
        chains = sorted(policy.ops())
        if not chains:
            continue
        context = find_candidate(module, chains, graph)
        assert context == common_context(chains), "findCandidate mismatch"
        func = module.function(candidate_function(module, context))
        reps = sorted({representative_op(chain, context) for chain in chains})
        blocks = [func.block_of(rep) for rep in reps]
        dom = dominator_tree(func)
        pdom = postdominator_tree(func)
        start_block = dom.common_ancestor(blocks)
        end_block = pdom.common_ancestor(blocks)
        placement = _truncate(func, reps, start_block, end_block)
        placements.append((policy, placement, reps))

    insertions: list[_Insertion] = []
    regions: list[InferredRegion] = []
    for policy, placement, reps in placements:
        region = module.fresh_region("a")
        policy_map.assign(region, policy.pid)
        func = module.function(placement.func)
        start = ir.AtomicStart(region=region, origin="inferred")
        end = ir.AtomicEnd(region=region, origin="inferred")
        func.stamp(start)
        func.stamp(end)
        insertions.append(
            _Insertion(placement.func, placement.start_block, placement.start_index, start, kind=1)
        )
        insertions.append(
            _Insertion(placement.func, placement.end_block, placement.end_index, end, kind=0)
        )
        regions.append(
            InferredRegion(
                region=region,
                pid=policy.pid,
                func=placement.func,
                start_block=placement.start_block,
                start_index=placement.start_index,
                end_block=placement.end_block,
                end_index=placement.end_index,
                reps=list(reps),
            )
        )

    # Apply from the back of each block so earlier indices stay valid; at
    # equal indices, inserting the start first leaves the end before it,
    # keeping adjacent regions disjoint (end-then-start order at runtime).
    insertions.sort(key=lambda ins: (ins.func, ins.block, -ins.index, -ins.kind))
    for ins in insertions:
        block = module.function(ins.func).blocks[ins.block]
        block.instrs.insert(ins.index, ins.marker)

    return policy_map, regions
