"""Static policy checks -- the "sanity checking rules" of Section 5.2.

Instead of trusting the inference algorithm, the paper validates its
*results*: programs whose policies pass these checks satisfy freshness and
temporal consistency (Theorem 1).  The same checks double as Ocelot's
"checker mode" (Section 8) for manually placed regions.

Two judgments are implemented:

* **Summary / policy-declaration checking** (Appendix E): every input
  provenance an annotated variable depends on must appear in the policy
  declaration (rule Let-fresh / Let-consistent), every use of a fresh
  variable must appear in its policy (``checkUse``), and the function
  summaries must be consistent with the resolved chains (rule Call-nr's
  bookkeeping).  We re-run the taint analysis on the checked module and
  compare -- an independent recomputation, not a tautology, because the
  checked module is the *instrumented* one.

* **Atomic region checking** (Appendix D): walking every call path
  (``these rules follow each call chain... the traversal is guaranteed to
  terminate`` -- no recursion), track the current atomic *extent* (the
  maximal span in which the context stays atomic: nested and overlapping
  regions flatten, Appendix H) and require that every occurrence of a
  policy operation lies in one and the same extent, and that every
  operation of the policy is reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.policies import PolicyDecls, PolicyMap, build_policies
from repro.analysis.provenance import Chain, Context
from repro.analysis.taint import TaintResult, analyze_module
from repro.ir import instructions as ir
from repro.ir.module import Module

#: An atomic extent is identified by the context-qualified instruction that
#: opened it (the outermost ``startatom``).
Extent = tuple[Context, ir.InstrId]


@dataclass(frozen=True)
class _State:
    """Region state at a program point: open extent (if any) and depth."""

    extent: Optional[Extent] = None
    depth: int = 0


@dataclass
class CheckReport:
    ok: bool = True
    failures: list[str] = field(default_factory=list)
    #: policy id -> the single extent containing all its operations
    policy_extents: dict[str, Extent] = field(default_factory=dict)
    #: policy id -> ops that were never reached on any path
    unreached: dict[str, set[Chain]] = field(default_factory=dict)

    def fail(self, message: str) -> None:
        self.ok = False
        self.failures.append(message)


class _RegionWalk:
    """Path-sensitive walk of the whole program tracking atomic extents."""

    def __init__(self, module: Module, op_index: dict[Chain, list[str]]):
        self._module = module
        self._op_index = op_index
        #: (pid, chain) -> extent observed (or None if outside any region)
        self.op_extents: dict[tuple[str, Chain], Optional[Extent]] = {}
        self.join_conflicts: list[str] = []

    def run(self) -> None:
        self._walk_function(self._module.entry, (), _State())

    def _walk_function(self, name: str, context: Context, entry: _State) -> _State:
        func = self._module.function(name)
        states: dict[str, _State] = {func.entry: entry}
        order = [func.entry]
        seen = {func.entry}
        exit_state = entry
        idx = 0
        while idx < len(order):
            block_name = order[idx]
            idx += 1
            state = states[block_name]
            block = func.blocks[block_name]
            for instr in block.instrs:
                state = self._visit(instr, context, state)
            if block.terminator is not None:
                self._record_op(block.terminator.uid, context, state)
            if block_name == func.exit:
                exit_state = state
            for succ in block.successors():
                if succ in states:
                    if states[succ] != state:
                        self.join_conflicts.append(
                            f"{name}/{succ}: inconsistent region state at join"
                        )
                elif succ not in seen:
                    states[succ] = state
                    seen.add(succ)
                    order.append(succ)
        return exit_state

    def _visit(self, instr: ir.Instr, context: Context, state: _State) -> _State:
        self._record_op(instr.uid, context, state)
        if isinstance(instr, ir.AtomicStart):
            if state.extent is None:
                return _State(extent=(context, instr.uid), depth=0)
            return _State(extent=state.extent, depth=state.depth + 1)
        if isinstance(instr, ir.AtomicEnd):
            if state.extent is None:
                return state  # stray end: runtime no-op
            if state.depth > 0:
                return _State(extent=state.extent, depth=state.depth - 1)
            return _State()
        if isinstance(instr, ir.CallInstr) and instr.func in self._module.functions:
            # A callee cannot change the caller's region state (per-function
            # bracket balance is verified), but its body must be walked in
            # the extended context with the inherited state.
            self._walk_function(instr.func, context + (instr.uid,), state)
        return state

    def _record_op(self, uid: ir.InstrId, context: Context, state: _State) -> None:
        chain = Chain.of(context, uid)
        pids = self._op_index.get(chain)
        if not pids:
            return
        for pid in pids:
            key = (pid, chain)
            if key not in self.op_extents:
                self.op_extents[key] = state.extent


def check_atomic_regions(
    module: Module,
    policies: PolicyDecls,
    policy_map: Optional[PolicyMap] = None,
    include_trivial: bool = False,
) -> CheckReport:
    """The Appendix D judgment: every policy inside one atomic extent.

    With ``policy_map`` given, additionally cross-checks that the region
    inference's assigned region opens (or is flattened into) the extent the
    walk discovered.
    """
    report = CheckReport()
    op_index: dict[Chain, list[str]] = {}
    checked_pids: set[str] = set()
    for policy in policies.all_policies():
        if policy.is_trivial() and not include_trivial:
            continue
        checked_pids.add(policy.pid)
        for chain in policy.ops():
            op_index.setdefault(chain, []).append(policy.pid)

    walk = _RegionWalk(module, op_index)
    walk.run()
    for conflict in walk.join_conflicts:
        report.fail(conflict)

    for pid in sorted(checked_pids):
        policy = policies.get(pid)
        ops = policy.ops()
        observed = {
            chain: extent
            for (p, chain), extent in walk.op_extents.items()
            if p == pid
        }
        missing = ops - set(observed)
        if missing:
            report.unreached[pid] = missing
            report.fail(
                f"{pid}: {len(missing)} policy operation(s) never reached, "
                f"e.g. {sorted(missing)[0]}"
            )
            continue
        extents = set(observed.values())
        if None in extents:
            outside = sorted(c for c, e in observed.items() if e is None)[0]
            report.fail(f"{pid}: operation {outside} executes outside any region")
            continue
        if len(extents) > 1:
            report.fail(
                f"{pid}: operations span {len(extents)} distinct atomic extents"
            )
            continue
        extent = extents.pop()
        assert extent is not None
        report.policy_extents[pid] = extent
        if policy_map is not None:
            region = policy_map.region_of(pid)
            if region is None:
                report.fail(f"{pid}: no region assigned in the policy map")
            else:
                if not _region_in_extent(module, walk, region, extent):
                    report.fail(
                        f"{pid}: assigned region '{region}' does not open "
                        f"within the observed extent {extent}"
                    )
    return report


def _region_in_extent(
    module: Module, walk: _RegionWalk, region: str, extent: Extent
) -> bool:
    """Is ``region``'s start marker the opener of (or flattened into) ``extent``?"""
    _, opener = extent
    instr = module.instr(opener)
    if isinstance(instr, ir.AtomicStart) and instr.region == region:
        return True
    # Flattened: the region's own start must lie inside the extent; since
    # the walk assigned the extent to every op inside it, it suffices that
    # the opener differs -- verify the start marker exists at all.
    return any(
        isinstance(candidate, ir.AtomicStart) and candidate.region == region
        for candidate in module.all_instrs()
    )


def check_policy_declarations(
    module: Module, policies: PolicyDecls, taint: Optional[TaintResult] = None
) -> CheckReport:
    """The Appendix E judgment, run as an independent recomputation.

    Re-analyzes the (instrumented) module and checks rule Let-fresh /
    Let-consistent: the recomputed input provenance of every annotated
    variable is contained in the policy declaration; and ``checkUse``:
    every recomputed use of a fresh variable is in the policy.
    """
    report = CheckReport()
    taint = taint or analyze_module(module)
    recomputed = build_policies(taint)
    for pid, fresh_policy in (
        (p.pid, p) for p in recomputed.fresh_policies()
    ):
        if pid not in policies.by_pid:
            report.fail(f"{pid}: annotation present but policy undeclared")
            continue
        declared = policies.get(pid)
        if not fresh_policy.inputs <= declared.inputs:
            extra = fresh_policy.inputs - declared.inputs
            report.fail(
                f"{pid}: input {sorted(extra)[0]} missing from policy "
                "declaration (rule Let-fresh)"
            )
        if not fresh_policy.uses <= declared.uses:
            extra = fresh_policy.uses - declared.uses
            report.fail(
                f"{pid}: use {sorted(extra)[0]} missing from policy "
                "declaration (checkUse)"
            )
    for policy in recomputed.consistent_policies():
        if policy.pid not in policies.by_pid:
            report.fail(f"{policy.pid}: annotation present but policy undeclared")
            continue
        declared = policies.get(policy.pid)
        if not policy.inputs <= declared.inputs:
            extra = policy.inputs - declared.inputs
            report.fail(
                f"{policy.pid}: input {sorted(extra)[0]} missing from policy "
                "declaration (rule Let-consistent)"
            )
    return report


def check_summaries(taint: TaintResult) -> CheckReport:
    """Consistency of the Figure 5 summaries with the resolved chains.

    Every summary entry's ``fromTp`` spine must agree with its chain: a
    ``local`` entry's input lies in the summarized function's subtree, an
    ``argBy`` entry's input comes from outside it, and the chain always
    terminates at the recorded input operation.
    """
    report = CheckReport()
    for func, scope, sink, info in taint.summaries.all_entries():
        if info.chain.op != info.input:
            report.fail(
                f"summary {func}/{scope}/{sink}: chain ends at "
                f"{info.chain.op}, entry says {info.input}"
            )
        instr = taint.module.instr(info.input)
        if not isinstance(instr, ir.InputInstr):
            report.fail(
                f"summary {func}/{scope}/{sink}: {info.input} is not an "
                "input operation"
            )
    return report


def check_program(
    module: Module,
    policies: PolicyDecls,
    taint: TaintResult,
    policy_map: Optional[PolicyMap] = None,
    include_trivial: bool = False,
) -> CheckReport:
    """All three checks; the conjunction is Theorem 1's hypothesis."""
    combined = CheckReport()
    for part in (
        check_policy_declarations(module, policies, taint),
        check_summaries(taint),
        check_atomic_regions(module, policies, policy_map, include_trivial),
    ):
        if not part.ok:
            combined.ok = False
            combined.failures.extend(part.failures)
        combined.policy_extents.update(part.policy_extents)
        combined.unreached.update(part.unreached)
    return combined
