"""Concrete toolchain passes (the boxes of Figure 3).

Each pass is a frozen dataclass so pipelines are pure data: parameters
participate in the pipeline fingerprint, and therefore in compile-cache
keys.  A parameter of ``None`` means "defer to the build's
:class:`~repro.core.passes.base.PipelineOptions`"; a concrete value pins
the behavior for the configuration regardless of options (how ablation
configs like ``ocelot-noguard`` are declared).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional

from repro.analysis.policies import build_policies
from repro.analysis.taint import analyze_module
from repro.baselines.atomics_only import atomics_only_transform
from repro.core.checker import check_program
from repro.core.inference import infer_atomic
from repro.core.passes.base import (
    DIAG_ERROR,
    BuildContext,
    CompileError,
    PipelineError,
)
from repro.core.war import annotate_omegas
from repro.ir.lowering import LoweringOptions, lower_program
from repro.ir.verify import verify_module
from repro.lang.validate import validate_program


@dataclass(frozen=True)
class ShapeAtomicsOnly:
    """Rewrite the program into the Atomics-only (DINO-style) shape."""

    name: ClassVar[str] = "shape-atomics"

    def run(self, ctx: BuildContext) -> None:
        ctx.program = atomics_only_transform(ctx.program)
        ctx.diag(self.name, "applied the Atomics-only region transform")


@dataclass(frozen=True)
class Validate:
    """Validate the (possibly reshaped) program and gather ProgramInfo."""

    name: ClassVar[str] = "validate"

    def run(self, ctx: BuildContext) -> None:
        ctx.info = validate_program(ctx.program)
        ctx.diag(self.name, f"validated {len(ctx.program.functions)} function(s)")


@dataclass(frozen=True)
class Lower:
    """Lower the AST to the CFG-based IR (``getAnnotations`` input).

    ``keep_manual_atomics=False`` strips programmer regions (the pure JIT
    baseline).  ``guard_outputs`` / ``unroll_loops`` override the
    corresponding :class:`PipelineOptions` fields when not ``None``.
    """

    name: ClassVar[str] = "lower"

    keep_manual_atomics: bool = True
    guard_outputs: Optional[bool] = None
    unroll_loops: Optional[bool] = None

    def run(self, ctx: BuildContext) -> None:
        options = LoweringOptions(
            guard_outputs=(
                ctx.options.guard_outputs
                if self.guard_outputs is None
                else self.guard_outputs
            ),
            keep_manual_atomics=self.keep_manual_atomics,
            unroll_loops=(
                ctx.options.unroll_loops
                if self.unroll_loops is None
                else self.unroll_loops
            ),
        )
        ctx.module = lower_program(ctx.program, options=options, info=ctx.info)
        ctx.diag(
            self.name,
            f"lowered to {len(ctx.module.functions)} IR function(s) "
            f"({sum(1 for _ in ctx.module.all_instrs())} instructions)",
        )


@dataclass(frozen=True)
class VerifyIR:
    """Structural IR well-formedness checks (after lowering / rewriting)."""

    name: ClassVar[str] = "verify-ir"

    def run(self, ctx: BuildContext) -> None:
        verify_module(ctx.need_module())


@dataclass(frozen=True)
class Taint:
    """The interprocedural input-taint analysis (Algorithm 2).

    Appears twice in enforcing pipelines: once to feed region inference,
    once after instrumentation so the checker sees final labels.
    """

    name: ClassVar[str] = "taint"

    def run(self, ctx: BuildContext) -> None:
        ctx.taint = analyze_module(ctx.need_module())
        ctx.diag(
            self.name,
            f"{len(ctx.taint.annot_inputs)} annotated site(s), "
            f"{len(ctx.taint.uses)} policy use set(s)",
        )


@dataclass(frozen=True)
class BuildPolicies:
    """Policy construction from taint facts (``buildSummary`` of Figure 3)."""

    name: ClassVar[str] = "policies"

    def run(self, ctx: BuildContext) -> None:
        ctx.policies = build_policies(ctx.need_taint())
        ctx.diag(self.name, f"built {len(ctx.policies)} policy declaration(s)")


@dataclass(frozen=True)
class InferRegions:
    """Atomic-region inference + insertion (Algorithm 1).

    ``include_trivial`` overrides the option of the same name when set.
    """

    name: ClassVar[str] = "infer-regions"

    include_trivial: Optional[bool] = None

    def _include_trivial(self, ctx: BuildContext) -> bool:
        if self.include_trivial is None:
            return ctx.options.include_trivial
        return self.include_trivial

    def run(self, ctx: BuildContext) -> None:
        ctx.policy_map, ctx.regions = infer_atomic(
            ctx.need_module(),
            ctx.need_policies(),
            include_trivial=self._include_trivial(ctx),
        )
        ctx.diag(self.name, f"inserted {len(ctx.regions)} inferred region(s)")


@dataclass(frozen=True)
class AnnotateOmegas:
    """WAR/EMW analysis stamping undo-log omega sets on every region."""

    name: ClassVar[str] = "war-omegas"

    def run(self, ctx: BuildContext) -> None:
        ctx.region_infos = annotate_omegas(ctx.need_module())
        ctx.diag(self.name, f"stamped {len(ctx.region_infos)} region(s)")


@dataclass(frozen=True)
class Check:
    """The Section 5.2 checks over the final, instrumented module.

    ``enforced=True`` marks a configuration that promises correctness:
    under strict options a failing report raises :class:`CompileError`.
    ``use_region_map=False`` checks without the inference's policy map
    (the JIT baseline, which inserted no regions).
    """

    name: ClassVar[str] = "check"

    enforced: bool = True
    use_region_map: bool = True
    include_trivial: Optional[bool] = None

    def run(self, ctx: BuildContext) -> None:
        include_trivial = (
            ctx.options.include_trivial
            if self.include_trivial is None
            else self.include_trivial
        )
        ctx.check = check_program(
            ctx.need_module(),
            ctx.need_policies(),
            ctx.need_taint(),
            ctx.policy_map if self.use_region_map else None,
            include_trivial=include_trivial,
        )
        for failure in ctx.check.failures:
            ctx.diag(self.name, failure, level=DIAG_ERROR)
        if not ctx.check.failures:
            ctx.diag(self.name, "all policy checks passed")
        if self.enforced and ctx.options.strict and not ctx.check.ok:
            raise CompileError(
                f"{ctx.config_name} build failed policy checks: "
                f"{ctx.check.failures[:3]}"
            )


@dataclass(frozen=True)
class OptimizeChecks:
    """The check optimizer: rewrite the detector plan with fewer queries.

    Runs the :mod:`repro.ir.opt` passes -- redundant-check elimination,
    check hoisting, check coalescing (each toggleable for the ablation
    configs) -- over the final analyzed module and stores the resulting
    :class:`~repro.ir.opt.OptimizedPlan` as the build's detector plan.
    Observation-stream equivalence with the unoptimized plan is the
    pass's contract (the parity suite enforces it bit-exactly); under
    ``BuildContext.debug`` the plan's structural soundness invariants
    are re-verified here, failing the build with this stage named.
    """

    name: ClassVar[str] = "opt-checks"

    eliminate: bool = True
    hoist: bool = True
    coalesce: bool = True

    def run(self, ctx: BuildContext) -> None:
        from repro.ir.opt import optimize_checks, verify_plan

        result = optimize_checks(
            ctx.need_module(),
            ctx.need_policies(),
            eliminate=self.eliminate,
            hoist=self.hoist,
            coalesce=self.coalesce,
        )
        if ctx.debug:
            try:
                verify_plan(result.baseline, result.plan)
            except ValueError as exc:
                raise PipelineError(
                    f"optimized check plan failed verification in pass "
                    f"'{self.name}' of config '{ctx.config_name}': {exc}"
                ) from exc
        ctx.check_plan = result.plan
        ctx.dataflow = result.dataflow
        for stats in result.plan.passes:
            ctx.diag(self.name, stats.render())
        ctx.diag(
            self.name,
            f"{result.plan.baseline_checks} check(s) -> "
            f"{result.plan.static_queries} static quer(y/ies), "
            f"{len(result.plan.elided)} elided outright",
        )
