"""The pass framework behind the Ocelot toolchain.

The Figure 3 toolchain is an ordered sequence of *passes* over one
mutable :class:`BuildContext`: each pass reads the artifacts earlier
passes produced (program, module, taint, policies, regions) and writes
its own.  :class:`PassManager` runs a pipeline, recording per-stage wall
time (:class:`StageTiming`) and structured :class:`Diagnostic` entries
the CLI can dump with ``python -m repro build --emit timings``.

Pipelines are *data*: a tuple of pass instances.  Every pass is a frozen
dataclass, so a pipeline has a stable :func:`pipeline_fingerprint` --
the content-addressed identity the compile cache keys builds on.
Reordering passes, swapping a pass, or changing one parameter changes
the fingerprint, so two builds share a cache entry exactly when they ran
the same passes with the same parameters over the same source.

This module also owns the dataclasses shared by every layer of the
compiler (:class:`PipelineOptions`, :class:`CompiledProgram`,
:class:`CompileError`); :mod:`repro.core.pipeline` re-exports them for
compatibility.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Protocol, Sequence, runtime_checkable

from repro.analysis.policies import PolicyDecls, PolicyMap
from repro.analysis.taint import TaintResult
from repro.core.checker import CheckReport
from repro.core.inference import InferredRegion
from repro.core.war import RegionInfo
from repro.ir.module import IRError, Module
from repro.ir.verify import verify_module
from repro.lang import ast
from repro.lang.validate import ProgramInfo

DIAG_INFO = "info"
DIAG_WARNING = "warning"
DIAG_ERROR = "error"

#: Environment switch for :attr:`BuildContext.debug`; the test suite and
#: CI export ``REPRO_DEBUG_VERIFY=1`` so every transforming pass is
#: followed by a full IR verification (optimizer bugs fail fast with the
#: offending pass named).
DEBUG_ENV_VAR = "REPRO_DEBUG_VERIFY"


def _debug_default() -> bool:
    return os.environ.get(DEBUG_ENV_VAR, "") not in ("", "0")


class CompileError(Exception):
    """Raised when a build that promises correctness fails its checks."""


class PipelineError(Exception):
    """A malformed pass pipeline (missing stages, artifacts never built)."""


@dataclass
class PipelineOptions:
    """Compilation knobs; defaults match the paper's evaluation setup.

    Options apply to *every* configuration compiled with them; per-config
    deviations (an ablation that drops output guards, say) belong in the
    pass parameters of a registered :class:`~repro.core.passes.BuildConfig`
    instead.
    """

    guard_outputs: bool = True
    unroll_loops: bool = True
    include_trivial: bool = False
    #: raise if a correctness-promising config fails the checks
    strict: bool = True


@dataclass(frozen=True)
class Diagnostic:
    """One structured note a pass recorded while running."""

    stage: str
    level: str  # info | warning | error
    message: str

    def to_dict(self) -> dict:
        return {"stage": self.stage, "level": self.level, "message": self.message}

    def render(self) -> str:
        return f"[{self.level:7}] {self.stage}: {self.message}"


@dataclass(frozen=True)
class StageTiming:
    """Wall time of one pass execution within a pipeline run."""

    index: int
    stage: str
    seconds: float

    def to_dict(self) -> dict:
        return {"index": self.index, "stage": self.stage, "seconds": self.seconds}


@dataclass
class BuildContext:
    """Mutable state threaded through a pass pipeline.

    Passes communicate exclusively through this object: earlier stages
    fill in artifacts, later stages consume them via the ``need_*``
    accessors, which turn a missing prerequisite into a clear
    :class:`PipelineError` naming the absent stage.
    """

    program: ast.Program
    options: PipelineOptions = field(default_factory=PipelineOptions)
    config_name: str = "custom"
    source: Optional[str] = None
    #: artifacts, in rough pipeline order
    info: Optional[ProgramInfo] = None
    module: Optional[Module] = None
    taint: Optional[TaintResult] = None
    policies: Optional[PolicyDecls] = None
    policy_map: PolicyMap = field(default_factory=PolicyMap)
    regions: list[InferredRegion] = field(default_factory=list)
    region_infos: list[RegionInfo] = field(default_factory=list)
    check: Optional[CheckReport] = None
    #: optimized detector plan + dataflow summary (the OptimizeChecks pass)
    check_plan: Optional[object] = None
    dataflow: Optional[object] = None
    #: bookkeeping the PassManager and passes append to
    diagnostics: list[Diagnostic] = field(default_factory=list)
    timings: list[StageTiming] = field(default_factory=list)
    #: when set (default: the REPRO_DEBUG_VERIFY env var), the pass
    #: manager re-verifies the IR after every pass that produced or
    #: mutated a module, naming the offending pass on failure
    debug: bool = field(default_factory=_debug_default)

    def diag(self, stage: str, message: str, level: str = DIAG_INFO) -> None:
        self.diagnostics.append(Diagnostic(stage=stage, level=level, message=message))

    def _need(self, value, artifact: str, producer: str):
        if value is None:
            raise PipelineError(
                f"pipeline for '{self.config_name}' needs {artifact} but no "
                f"{producer} pass ran yet"
            )
        return value

    def need_module(self) -> Module:
        return self._need(self.module, "an IR module", "Lower")

    def need_taint(self) -> TaintResult:
        return self._need(self.taint, "taint facts", "Taint")

    def need_policies(self) -> PolicyDecls:
        return self._need(self.policies, "policy declarations", "BuildPolicies")

    def finish(self) -> "CompiledProgram":
        """Package the accumulated artifacts into a :class:`CompiledProgram`.

        A pipeline must at least lower and analyze; a missing check is
        tolerated but recorded as a failing report, so an unchecked
        custom pipeline never claims to enforce its policies.
        """
        module = self.need_module()
        taint = self.need_taint()
        policies = self.need_policies()
        check = self.check
        if check is None:
            check = CheckReport(ok=False, failures=["pipeline ran no Check pass"])
            self.diag(
                "finish", "no Check pass ran; build marked non-enforcing",
                level=DIAG_WARNING,
            )
        return CompiledProgram(
            config=self.config_name,
            program=self.program,
            module=module,
            taint=taint,
            policies=policies,
            policy_map=self.policy_map,
            regions=self.regions,
            region_infos=self.region_infos,
            check=check,
            source=self.source,
            timings=list(self.timings),
            diagnostics=list(self.diagnostics),
            check_plan=self.check_plan,
            dataflow=self.dataflow,
        )


@runtime_checkable
class Pass(Protocol):
    """One stage of the toolchain: reads/writes a :class:`BuildContext`."""

    name: str

    def run(self, ctx: BuildContext) -> None: ...


def pass_fingerprint(stage: Pass) -> tuple:
    """Stable identity of one pass: class, declared name, parameters."""
    params: tuple = ()
    if dataclasses.is_dataclass(stage):
        params = dataclasses.astuple(stage)
    return (type(stage).__qualname__, stage.name, params)


def pipeline_fingerprint(passes: Iterable[Pass]) -> str:
    """Content hash of an ordered pass pipeline (the cache-key component)."""
    payload = repr([pass_fingerprint(p) for p in passes])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class PassManager:
    """Runs an ordered pass pipeline over one build context.

    Per-pass wall times land in ``ctx.timings`` (one entry per pass
    *execution*, so a pass appearing twice -- e.g. re-running the taint
    analysis after instrumentation -- is timed twice).
    """

    def __init__(self, passes: Sequence[Pass]):
        self.passes: tuple[Pass, ...] = tuple(passes)
        if not self.passes:
            raise PipelineError("a pass pipeline needs at least one pass")

    def fingerprint(self) -> str:
        return pipeline_fingerprint(self.passes)

    def run(self, ctx: BuildContext) -> BuildContext:
        for index, stage in enumerate(self.passes):
            started = time.perf_counter()
            stage.run(ctx)
            ctx.timings.append(
                StageTiming(
                    index=index,
                    stage=stage.name,
                    seconds=time.perf_counter() - started,
                )
            )
            if ctx.debug and ctx.module is not None:
                try:
                    verify_module(ctx.module)
                except IRError as exc:
                    raise PipelineError(
                        f"debug IR verification failed after pass "
                        f"'{stage.name}' in config '{ctx.config_name}': {exc}"
                    ) from exc
        return ctx


@dataclass
class CompiledProgram:
    """Everything the runtime and the evaluation need about one build."""

    config: str
    program: ast.Program
    module: Module
    taint: TaintResult
    policies: PolicyDecls
    policy_map: PolicyMap
    regions: list[InferredRegion]
    region_infos: list[RegionInfo]
    check: CheckReport
    source: Optional[str] = None
    #: per-pass wall times and structured notes from the build
    timings: list[StageTiming] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: optimized detector plan (OptimizeChecks); when present it *is* the
    #: build's detector plan, so the compile cache -- keyed on the pass
    #: pipeline fingerprint, which includes the optimizer's parameters --
    #: effectively keys engines and decoded code on the optimized plan
    check_plan: object = field(default=None, repr=False, compare=False)
    #: dataflow summary behind the optimized plan (--emit dataflow)
    dataflow: object = field(default=None, repr=False, compare=False)
    #: lazily built and cached; the harness asks once per activation
    _detector_plan: object = field(default=None, repr=False, compare=False)
    #: pre-decoded execution code, one entry per (detector plan, cost
    #: model) pair -- see :func:`repro.runtime.engine.code_for`.  Builds
    #: are interned by the compile cache keyed on (source, pipeline
    #: fingerprint), so this instance cache is fingerprint-keyed too.
    _engine_code: list = field(
        default_factory=list, repr=False, compare=False
    )

    @property
    def enforces_policies(self) -> bool:
        """Did this build pass the Section 5.2 checks?"""
        return self.check.ok

    def detector_plan(self):
        if self.check_plan is not None:
            return self.check_plan
        if self._detector_plan is None:
            from repro.runtime.detector import build_detector_plan

            self._detector_plan = build_detector_plan(self.policies)
        return self._detector_plan
