"""Build configurations: named, registered pass pipelines.

A :class:`BuildConfig` replaces the old hardcoded config-string triple:
the three paper configurations (Section 7.2) are *declared* here as pass
pipelines, and new scenarios -- ablations, baselines, sensitivity
variants -- are registered the same way instead of being hand-coded into
the compiler.  Anything that accepts a configuration (the pipeline
facade, the compile cache, the campaign engine, the CLI) resolves either
a registered name or a ``BuildConfig`` instance through this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.passes.base import Pass, pipeline_fingerprint
from repro.core.passes.stages import (
    AnnotateOmegas,
    BuildPolicies,
    Check,
    InferRegions,
    Lower,
    OptimizeChecks,
    ShapeAtomicsOnly,
    Taint,
    Validate,
    VerifyIR,
)


class UnknownConfigError(ValueError):
    """An unregistered configuration name was requested."""


@dataclass(frozen=True)
class BuildConfig:
    """One named build configuration: an ordered pass pipeline."""

    name: str
    passes: tuple[Pass, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a build configuration needs a name")
        if not self.passes:
            raise ValueError(f"config '{self.name}' declares no passes")
        # Accept any iterable of passes but store a tuple (hashable, stable).
        if not isinstance(self.passes, tuple):
            object.__setattr__(self, "passes", tuple(self.passes))

    def fingerprint(self) -> str:
        """Content hash of the pipeline -- the cache identity of builds."""
        return pipeline_fingerprint(self.passes)

    @property
    def enforces(self) -> bool:
        """Does this configuration promise the Section 5.2 guarantees?"""
        return any(
            isinstance(p, Check) and p.enforced for p in self.passes
        )

    def replacing(self, name: str, description: str, **swaps: Pass) -> "BuildConfig":
        """A derived config with passes swapped by stage name.

        ``swaps`` maps a pass's ``name`` (with ``-`` spelled ``_``) to its
        replacement, e.g. ``replacing(..., lower=Lower(guard_outputs=False))``.
        """
        by_stage = {key.replace("_", "-"): value for key, value in swaps.items()}
        passes = tuple(by_stage.get(p.name, p) for p in self.passes)
        missing = set(by_stage) - {p.name for p in self.passes}
        if missing:
            raise ValueError(
                f"config '{self.name}' has no stage(s) {sorted(missing)} to replace"
            )
        return BuildConfig(name=name, passes=passes, description=description)


#: Registry of named configurations (populated below and by callers).
_REGISTRY: dict[str, BuildConfig] = {}


def register_config(config: BuildConfig, replace: bool = False) -> BuildConfig:
    """Register ``config`` under its name; returns it for chaining."""
    existing = _REGISTRY.get(config.name)
    if existing is not None and not replace:
        if existing.fingerprint() == config.fingerprint():
            return existing
        raise ValueError(
            f"config '{config.name}' is already registered with a different "
            "pipeline (pass replace=True to override)"
        )
    _REGISTRY[config.name] = config
    return config


def config_names() -> tuple[str, ...]:
    """Every registered configuration name, sorted."""
    return tuple(sorted(_REGISTRY))


def get_config(name: str) -> BuildConfig:
    """The registered configuration called ``name``.

    Raises :class:`UnknownConfigError` with the full list of registered
    names, so the CLI and the campaign engine report actionable errors.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(config_names())
        raise UnknownConfigError(
            f"unknown build configuration '{name}' (registered: {known})"
        ) from None


def resolve_config(config: Union[str, BuildConfig]) -> BuildConfig:
    """Normalize a configuration argument: registered name or instance."""
    if isinstance(config, BuildConfig):
        return config
    if isinstance(config, str):
        return get_config(config)
    raise TypeError(
        f"expected a config name or BuildConfig, got {type(config).__name__}"
    )


def ensure_registered(config: Union[str, BuildConfig]) -> str:
    """Register ``config`` if needed and return its name.

    Used by the campaign engine so custom ``BuildConfig`` objects become
    resolvable by name inside worker processes (which inherit the
    registry via fork).  A name clash with a *different* pipeline is an
    error rather than a silent override.
    """
    if isinstance(config, str):
        get_config(config)  # raises UnknownConfigError if absent
        return config
    return register_config(config).name


# ---------------------------------------------------------------------------
# The paper's three configurations (Section 7.2), as declared pipelines.

#: Enforcing pipelines re-run the analysis after instrumentation so the
#: checker sees final instruction labels (policies are label-stable).
_FINAL_ANALYSIS: tuple[Pass, ...] = (Taint(), BuildPolicies())

OCELOT = register_config(
    BuildConfig(
        name="ocelot",
        description="full Ocelot: taint, inference, WAR/EMW, Section 5.2 checks",
        passes=(
            Validate(),
            Lower(),
            VerifyIR(),
            Taint(),
            BuildPolicies(),
            InferRegions(),
            VerifyIR(),
            AnnotateOmegas(),
            *_FINAL_ANALYSIS,
            Check(),
        ),
    )
)

JIT = register_config(
    BuildConfig(
        name="jit",
        description="JIT-only baseline: no manual or inferred regions, "
        "violations detected at runtime",
        passes=(
            Validate(),
            Lower(keep_manual_atomics=False),
            VerifyIR(),
            AnnotateOmegas(),
            *_FINAL_ANALYSIS,
            Check(enforced=False, use_region_map=False),
        ),
    )
)

ATOMICS = register_config(
    BuildConfig(
        name="atomics",
        description="Atomics-only baseline (DINO-style regions) plus Ocelot "
        "inference on top",
        passes=(
            ShapeAtomicsOnly(),
            Validate(),
            Lower(),
            VerifyIR(),
            Taint(),
            BuildPolicies(),
            InferRegions(),
            VerifyIR(),
            AnnotateOmegas(),
            *_FINAL_ANALYSIS,
            Check(),
        ),
    )
)

# ---------------------------------------------------------------------------
# Derived configurations: declared, not hand-coded.  These exercise the
# registry and widen the scenario space (ablations the ROADMAP asks for).

OCELOT_NOGUARD = register_config(
    OCELOT.replacing(
        "ocelot-noguard",
        "ablation: Ocelot without the Section 7.2 UART output guards",
        lower=Lower(guard_outputs=False),
    )
)

ATOMICS_TRIVIAL = register_config(
    ATOMICS.replacing(
        "atomics-trivial",
        "ablation: Atomics-only keeping trivially-enforced inferred regions",
        infer_regions=InferRegions(include_trivial=True),
        check=Check(include_trivial=True),
    )
)

# ---------------------------------------------------------------------------
# Check-optimizer configurations: the tuned pipeline plus per-pass
# ablations.  ``ocelot-opt`` is ``ocelot`` with the IR check optimizer
# appended -- same regions, same policies, same checker verdict, but the
# detector plan is rewritten to execute strictly fewer runtime checks
# with bit-exact observation parity (see ``tests/test_opt_parity.py``).

OCELOT_OPT = register_config(
    BuildConfig(
        name="ocelot-opt",
        description="tuned Ocelot: + redundant-check elimination, check "
        "hoisting, and check coalescing over the detector plan",
        passes=(*OCELOT.passes, OptimizeChecks()),
    )
)

OCELOT_NOHOIST = register_config(
    BuildConfig(
        name="ocelot-nohoist",
        description="ablation: the check optimizer without check hoisting",
        passes=(*OCELOT.passes, OptimizeChecks(hoist=False)),
    )
)

OCELOT_NOCOALESCE = register_config(
    BuildConfig(
        name="ocelot-nocoalesce",
        description="ablation: the check optimizer without check coalescing",
        passes=(*OCELOT.passes, OptimizeChecks(coalesce=False)),
    )
)

JIT_OPT = register_config(
    BuildConfig(
        name="jit-opt",
        description="JIT-only baseline + check optimizer: no regions, so "
        "elimination is inert and hoisting/coalescing carry the plan -- "
        "the configuration that stress-tests optimized checks that fire",
        passes=(*JIT.passes, OptimizeChecks()),
    )
)
