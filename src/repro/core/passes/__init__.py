"""Pass-based toolchain API.

The subsystem has four parts:

* :mod:`~repro.core.passes.base` -- the :class:`Pass` protocol, the
  mutable :class:`BuildContext`, the :class:`PassManager` (per-stage
  timing + diagnostics), and pipeline fingerprinting;
* :mod:`~repro.core.passes.stages` -- the concrete Figure 3 passes
  (shape, validate, lower, verify, taint, policies, inference, WAR,
  check) plus the IR check optimizer (``OptimizeChecks``, backed by
  :mod:`repro.ir.opt`);
* :mod:`~repro.core.passes.config` -- :class:`BuildConfig` and the
  config registry: the three paper configurations plus derived
  ablations, all declared as pass pipelines;
* :mod:`~repro.core.passes.artifacts` -- renderers for every
  intermediate stage artifact (``repro build --emit ...``).
"""

from repro.core.passes.artifacts import ARTIFACTS, artifact_names, emit_artifact
from repro.core.passes.base import (
    BuildContext,
    CompiledProgram,
    CompileError,
    Diagnostic,
    Pass,
    PassManager,
    PipelineError,
    PipelineOptions,
    StageTiming,
    pass_fingerprint,
    pipeline_fingerprint,
)
from repro.core.passes.config import (
    ATOMICS,
    ATOMICS_TRIVIAL,
    JIT,
    JIT_OPT,
    OCELOT,
    OCELOT_NOCOALESCE,
    OCELOT_NOGUARD,
    OCELOT_NOHOIST,
    OCELOT_OPT,
    BuildConfig,
    UnknownConfigError,
    config_names,
    ensure_registered,
    get_config,
    register_config,
    resolve_config,
)
from repro.core.passes.stages import (
    AnnotateOmegas,
    BuildPolicies,
    Check,
    InferRegions,
    Lower,
    OptimizeChecks,
    ShapeAtomicsOnly,
    Taint,
    Validate,
    VerifyIR,
)

__all__ = [
    "ARTIFACTS",
    "artifact_names",
    "emit_artifact",
    "BuildContext",
    "CompiledProgram",
    "CompileError",
    "Diagnostic",
    "Pass",
    "PassManager",
    "PipelineError",
    "PipelineOptions",
    "StageTiming",
    "pass_fingerprint",
    "pipeline_fingerprint",
    "ATOMICS",
    "ATOMICS_TRIVIAL",
    "JIT",
    "JIT_OPT",
    "OCELOT",
    "OCELOT_NOCOALESCE",
    "OCELOT_NOGUARD",
    "OCELOT_NOHOIST",
    "OCELOT_OPT",
    "BuildConfig",
    "UnknownConfigError",
    "config_names",
    "ensure_registered",
    "get_config",
    "register_config",
    "resolve_config",
    "AnnotateOmegas",
    "BuildPolicies",
    "Check",
    "InferRegions",
    "Lower",
    "OptimizeChecks",
    "ShapeAtomicsOnly",
    "Taint",
    "Validate",
    "VerifyIR",
]
