"""Stage-artifact introspection: render any intermediate build product.

``python -m repro build FILE --emit KIND`` dumps these; they are plain
functions over a :class:`CompiledProgram` so tests and notebooks can use
them directly.  Every artifact the pipeline produces is reachable:
the reshaped AST, the lowered IR, taint facts, policy declarations,
inferred regions with their omega/WAR/EMW sets, the check report,
per-pass timings, and the structured diagnostics.
"""

from __future__ import annotations

from typing import Callable

from repro.core.passes.base import CompiledProgram
from repro.ir.printer import print_module
from repro.lang.printer import print_program


def _summary(compiled: CompiledProgram) -> str:
    lines = [
        f"config      : {compiled.config}",
        f"functions   : {len(compiled.module.functions)}",
        f"policies    : {len(compiled.policies)}",
        f"regions     : {len(compiled.regions)}",
        f"checker     : {'PASS' if compiled.check.ok else 'FAIL'}",
    ]
    lines.extend(f"  ! {failure}" for failure in compiled.check.failures)
    return "\n".join(lines)


def _ast(compiled: CompiledProgram) -> str:
    return print_program(compiled.program)


def _ir(compiled: CompiledProgram) -> str:
    return print_module(compiled.module)


def _taint(compiled: CompiledProgram) -> str:
    taint = compiled.taint
    lines = []
    for uid in sorted(taint.annot_inputs):
        chains = ", ".join(str(c) for c in sorted(taint.annot_inputs[uid]))
        lines.append(f"annot {uid}: inputs {{{chains}}}")
    for pid in sorted(taint.uses):
        uses = ", ".join(str(c) for c in sorted(taint.uses[pid]))
        lines.append(f"uses {pid}: {{{uses}}}")
    return "\n".join(lines) if lines else "(no annotated sites)"


def _policies(compiled: CompiledProgram) -> str:
    lines = []
    for policy in compiled.policies.all_policies():
        lines.append(f"policy {policy.pid} [{policy.kind}]")
        lines.extend(f"  input: {chain}" for chain in sorted(policy.inputs))
    for region, pids in sorted(compiled.policy_map.by_region.items()):
        lines.append(f"region {region} enforces: {', '.join(pids)}")
    return "\n".join(lines) if lines else "(no policies)"


def _regions(compiled: CompiledProgram) -> str:
    lines = []
    for region in compiled.regions:
        lines.append(
            f"region {region.region} [{region.pid}] in {region.func}: "
            f"{region.start_block}[{region.start_index}] .. "
            f"{region.end_block}[{region.end_index}]"
        )
    for info in compiled.region_infos:
        lines.append(
            f"  {info.region}: omega={sorted(info.omega)} "
            f"war={sorted(info.war)} emw={sorted(info.emw)}"
        )
    return "\n".join(lines) if lines else "(no atomic regions)"


def _check(compiled: CompiledProgram) -> str:
    lines = [f"checker: {'PASS' if compiled.check.ok else 'FAIL'}"]
    lines.extend(f"  ! {failure}" for failure in compiled.check.failures)
    for pid, extent in sorted(compiled.check.policy_extents.items()):
        lines.append(f"  {pid}: enforced by region opened at {extent[1]}")
    return "\n".join(lines)


def _timings(compiled: CompiledProgram) -> str:
    if not compiled.timings:
        return "(no timings recorded)"
    total = sum(t.seconds for t in compiled.timings)
    lines = [
        f"{t.index:2d}  {t.stage:<14} {t.seconds * 1e3:9.3f} ms"
        for t in compiled.timings
    ]
    lines.append(f"    {'total':<14} {total * 1e3:9.3f} ms")
    return "\n".join(lines)


def _diagnostics(compiled: CompiledProgram) -> str:
    if not compiled.diagnostics:
        return "(no diagnostics)"
    return "\n".join(d.render() for d in compiled.diagnostics)


def _dataflow(compiled: CompiledProgram) -> str:
    """Availability facts behind the check optimizer's decisions."""
    info = compiled.dataflow
    if info is None:
        return (
            "(no dataflow summary: this configuration ran no OptimizeChecks "
            "pass; try an *-opt configuration)"
        )
    lines = [
        f"availability: {info.contexts} context(s) analyzed, "
        f"{info.rounds} solver round(s)"
    ]
    for site in sorted(info.at_sites):
        chains = info.at_sites[site]
        rendered = ", ".join(str(c) for c in sorted(chains)) or "-"
        lines.append(f"  at {site}: must-available {{{rendered}}}")
    return "\n".join(lines)


def _availability(compiled: CompiledProgram) -> str:
    """The full availability analysis plus the verifier's resume-point
    classification, run on demand over the lowered module.

    Unlike ``dataflow`` (which reports the facts the OptimizeChecks pass
    recorded at check sites, and only for ``*-opt`` configurations),
    this artifact works for every configuration and shows every
    non-trivial program point -- the raw material for the verifier's
    pruning argument.
    """
    from repro.analysis.availability import (
        analyze_availability,
        classify_resume_points,
    )

    result = analyze_availability(compiled.module)
    classification = classify_resume_points(compiled.module)
    lines = [
        f"availability: {result.contexts} context(s) analyzed, "
        f"{result.rounds} solver round(s)",
        f"resume points: {len(classification.depth)} chain(s) classified, "
        f"{classification.in_region_chains} inside atomic regions",
    ]
    if classification.inconsistent:
        names = ", ".join(sorted(classification.inconsistent))
        lines.append(f"inconsistent region brackets: {names}")
    for chain in sorted(result.before):
        fact = result.before[chain]
        if not fact:
            continue
        rendered = ", ".join(str(c) for c in sorted(fact))
        depth = classification.depth.get(chain, 0)
        lines.append(f"  at {chain} (depth {depth}): must-available {{{rendered}}}")
    return "\n".join(lines)


def _staleness(compiled: CompiledProgram) -> str:
    """The static staleness verdicts, run on demand over the build.

    The same report ``python -m repro lint`` prints, minus the CLI's
    environment bindings: every baseline check classified SAFE / DOOMED
    / ENV-DEPENDENT with its cycle windows, under the default
    usable-energy window and no registered environments.
    """
    from repro.analysis.staleness import analyze_staleness

    return analyze_staleness(compiled).render_text()


def _opt(compiled: CompiledProgram) -> str:
    """The optimized check plan: per-pass counts and per-site actions."""
    plan = compiled.check_plan
    if plan is None:
        return (
            "(no optimized plan: this configuration ran no OptimizeChecks "
            "pass; try an *-opt configuration)"
        )
    lines = [stats.render() for stats in plan.passes]
    lines.append(
        f"total: {plan.baseline_checks} baseline check(s) -> "
        f"{plan.static_queries} static quer(y/ies), "
        f"{len(plan.elided)} dropped outright"
    )
    from repro.runtime.detector import OP_CONSUME, OP_FULL, OP_MARKER

    mode_names = {OP_FULL: "full", OP_MARKER: "marker", OP_CONSUME: "consume"}
    for site in sorted(plan.actions):
        actions = plan.actions[site]
        parts = [
            f"{mode_names[op.mode]}:{op.check.pid}"
            + (f"@q{op.hid}" if op.hid >= 0 else "")
            for op in actions.ops
        ]
        parts.extend(f"hoist:q{h.hid}[{len(h.required)}]" for h in actions.hoists)
        if actions.fused is not None:
            parts.append(f"fused[{len(actions.fused)}]")
        lines.append(f"  site {site}: " + ", ".join(parts))
    for check in plan.elided:
        lines.append(f"  elided {check.pid} at {check.site}")
    return "\n".join(lines)


#: artifact name -> renderer.  This is the single registry every surface
#: derives from: ``--emit`` accepts exactly these names, the CLI help
#: text and unknown-artifact errors list them via :func:`artifact_names`,
#: so new artifacts cannot drift out of the CLI.
ARTIFACTS: dict[str, Callable[[CompiledProgram], str]] = {
    "summary": _summary,
    "ast": _ast,
    "ir": _ir,
    "taint": _taint,
    "policies": _policies,
    "regions": _regions,
    "check": _check,
    "dataflow": _dataflow,
    "availability": _availability,
    "staleness": _staleness,
    "opt": _opt,
    "timings": _timings,
    "diagnostics": _diagnostics,
}


def artifact_names() -> tuple[str, ...]:
    """Every registered artifact name, sorted (the CLI's source of truth)."""
    return tuple(sorted(ARTIFACTS))


def emit_artifact(compiled: CompiledProgram, kind: str) -> str:
    """Render one stage artifact of ``compiled`` as text."""
    try:
        renderer = ARTIFACTS[kind]
    except KeyError:
        known = ", ".join(artifact_names())
        raise ValueError(f"unknown artifact '{kind}' (known: {known})") from None
    return renderer(compiled)
