"""Ocelot's core: region inference, WAR/EMW analysis, checks, pipeline."""

from repro.core.cache import (
    GLOBAL_CACHE,
    CacheKey,
    CacheStats,
    CompileCache,
    compile_cached,
)
from repro.core.checker import (
    CheckReport,
    check_atomic_regions,
    check_policy_declarations,
    check_program,
    check_summaries,
)
from repro.core.inference import (
    InferenceError,
    InferredRegion,
    candidate_function,
    find_candidate,
    infer_atomic,
)
from repro.core.pipeline import (
    CONFIG_ATOMICS,
    CONFIG_JIT,
    CONFIG_OCELOT,
    CONFIGS,
    CompileError,
    CompiledProgram,
    PipelineOptions,
    compile_all_configs,
    compile_program,
    compile_source,
)
from repro.core.war import (
    Effects,
    RegionInfo,
    analyze_regions,
    annotate_omegas,
    function_effects,
    region_extent,
)

__all__ = [
    "GLOBAL_CACHE",
    "CacheKey",
    "CacheStats",
    "CompileCache",
    "compile_cached",
    "CheckReport",
    "check_atomic_regions",
    "check_policy_declarations",
    "check_program",
    "check_summaries",
    "InferenceError",
    "InferredRegion",
    "candidate_function",
    "find_candidate",
    "infer_atomic",
    "CONFIG_ATOMICS",
    "CONFIG_JIT",
    "CONFIG_OCELOT",
    "CONFIGS",
    "CompileError",
    "CompiledProgram",
    "PipelineOptions",
    "compile_all_configs",
    "compile_program",
    "compile_source",
    "Effects",
    "RegionInfo",
    "analyze_regions",
    "annotate_omegas",
    "function_effects",
    "region_extent",
]
