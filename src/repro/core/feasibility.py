"""Energy feasibility of atomic regions (Section 5.3, and the paper's
"Reasoning about Forward Progress" future-work direction).

An atomic region only makes progress if it can finish within one charge of
the energy buffer: "if the smallest possible region that guarantees
correctness w.r.t. timing policies is too large to complete, such a
program fundamentally cannot run correctly."  Ocelot infers the smallest
sufficient regions precisely to maximize the chance of feasibility; this
module closes the loop by *checking* it statically.

For every region we compute a worst-case cycle bound:

* entry cost: volatile save (bounded by the maximum possible frame stack
  along any call path into the region) plus the undo log for omega;
* body cost: every instruction in the flattened extent charged once --
  sound for unrolled programs, whose extents are DAGs -- plus the
  worst-case cost of every callee reachable from the region (call graph
  is a DAG, so the recursion terminates);
* ``work(e)`` with a non-constant argument makes the bound *unknown*
  rather than silently wrong.

``check_feasibility`` compares each bound against the smallest usable
energy window a profile guarantees after boot; the report lists regions
that might livelock (fail, recharge, restart, forever).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.war import RegionInfo, analyze_regions
from repro.energy.costs import DEFAULT_COSTS, CostModel
from repro.ir import instructions as ir
from repro.ir.callgraph import build_call_graph
from repro.ir.module import Module
from repro.lang import ast as lang_ast


@dataclass(frozen=True)
class RegionBound:
    """Worst-case execution bound for one region."""

    region: str
    start: ir.InstrId
    #: worst-case cycles including entry cost; None when unbounded/unknown
    cycles: Optional[int]
    entry_cycles: int
    omega_words: int
    #: why the bound is unknown, if it is
    reason: Optional[str] = None

    @property
    def bounded(self) -> bool:
        return self.cycles is not None


@dataclass
class FeasibilityReport:
    """Per-region bounds plus the verdict against an energy window."""

    bounds: list[RegionBound] = field(default_factory=list)
    usable_energy: Optional[int] = None
    infeasible: list[RegionBound] = field(default_factory=list)
    unknown: list[RegionBound] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.infeasible and not self.unknown

    def worst(self) -> Optional[RegionBound]:
        bounded = [b for b in self.bounds if b.bounded]
        if not bounded:
            return None
        return max(bounded, key=lambda b: b.cycles or 0)


class _Bounder:
    def __init__(self, module: Module, costs: CostModel):
        self._module = module
        self._costs = costs
        self._function_cycles: dict[str, Optional[int]] = {}
        self._compute_function_bounds()

    def _const_work(self, expr: lang_ast.Expr) -> Optional[int]:
        if isinstance(expr, lang_ast.IntLit):
            return max(0, expr.value)
        return None

    def _instr_cycles(self, instr: ir.Instr) -> Optional[int]:
        if isinstance(instr, ir.WorkInstr):
            amount = self._const_work(instr.cycles)
            if amount is None:
                return None
            return self._costs.instr_cycles(instr, work_value=amount)
        if isinstance(instr, ir.CallInstr):
            callee = self._function_cycles.get(instr.func)
            if callee is None:
                return None
            return self._costs.instr_cycles(instr) + callee
        if isinstance(instr, (ir.AtomicStart, ir.AtomicEnd)):
            # Inner markers cost only bookkeeping; the outer entry is
            # charged separately by the caller of bound_region.
            return self._costs.region_inner
        return self._costs.instr_cycles(instr)

    def _compute_function_bounds(self) -> None:
        graph = build_call_graph(self._module)
        order = graph.topo_order(self._module.entry)
        for name in self._module.functions:
            if name not in order:
                order.append(name)
        for name in order:
            func = self._module.function(name)
            total: Optional[int] = 0
            for instr in func.all_instrs():
                if isinstance(instr, ir.CallInstr) and instr.func not in (
                    self._function_cycles
                ):
                    # Callee bound not yet computed -> not reachable via
                    # topo order (shouldn't happen for DAGs); be safe.
                    total = None
                    break
                step = self._instr_cycles(instr)
                if step is None or total is None:
                    total = None
                    break
                total += step
            self._function_cycles[name] = total

    def bound_region(self, info: RegionInfo) -> RegionBound:
        module = self._module
        omega_words = info.omega_words(module)
        # Volatile estimate: a word per local of every function on any
        # call path (conservative: all functions), plus frame overhead.
        volatile = sum(
            len(func.locals) + 2 for func in module.functions.values()
        )
        entry = self._costs.region_entry_cycles(volatile, omega_words)

        total: Optional[int] = entry
        reason = None
        for uid in info.instrs:
            instr = module.instr(uid)
            step = self._instr_cycles(instr)
            if step is None:
                total = None
                reason = f"unbounded cost at {uid} (non-constant work or loop)"
                break
            assert total is not None
            total += step
        return RegionBound(
            region=info.region,
            start=info.start,
            cycles=total,
            entry_cycles=entry,
            omega_words=omega_words,
            reason=reason,
        )


def bound_regions(
    module: Module, costs: CostModel = DEFAULT_COSTS
) -> list[RegionBound]:
    """Worst-case cycle bounds for every region in ``module``."""
    bounder = _Bounder(module, costs)
    return [bounder.bound_region(info) for info in analyze_regions(module)]


def check_feasibility(
    module: Module,
    usable_energy: int,
    costs: CostModel = DEFAULT_COSTS,
) -> FeasibilityReport:
    """Compare every region bound against a guaranteed energy window.

    ``usable_energy`` is the smallest post-boot budget the platform
    guarantees (for :class:`repro.eval.profiles.EnergyProfile`, that is
    ``low_threshold + lo_boot_fraction * (capacity - low_threshold)``
    minus the threshold itself).
    """
    report = FeasibilityReport(usable_energy=usable_energy)
    report.bounds = bound_regions(module, costs)
    for bound in report.bounds:
        if not bound.bounded:
            report.unknown.append(bound)
        elif costs.energy(bound.cycles or 0) > usable_energy:
            report.infeasible.append(bound)
    return report


def profile_usable_energy(profile) -> int:
    """The smallest usable window an :class:`EnergyProfile` guarantees."""
    lo, _hi = profile.boot_fraction
    span = profile.capacity - profile.low_threshold
    return int(lo * span)
