"""WAR / EMW analysis: which nonvolatile state must a region checkpoint.

Checkpoint-based intermittent systems must back up nonvolatile locations
with a Write-After-Read dependence (WAR, [Lucia & Ransford 2015; Van Der
Woude & Hicks 2016]) and, once inputs are involved, the conditionally
written "exclusive may-write" set (EMW, [Surbatovich et al. 2019/2020]) --
Section 2.1.  Ocelot's runtime undo-logs ``omega = WAR ∪ EMW`` at region
entry (the ``startatom(aID, omega)`` parameter of the formalism).

We compute, per atomic region:

* the region's instruction extent (intra-procedurally, from the start
  marker to its matching end marker; the end post-dominates the start by
  construction, so the walk terminates),
* transitive callee effects (the call graph is a DAG),
* ``reads`` / ``writes`` of nonvolatile locations (array granularity is
  whole-array, which is exactly why CEM's Atomics-only build pays a 2.5x
  cost: its big log structure lands in omega, Section 7.2),
* ``war = reads ∩ writes`` and ``emw = writes \\ war``; ``omega`` is their
  union, i.e. the full may-write set.

``annotate_omegas`` stamps omega onto every ``AtomicStart`` in a module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir import instructions as ir
from repro.ir.callgraph import CallGraph, build_call_graph
from repro.ir.module import IRFunction, Module
from repro.lang import ast as lang_ast


@dataclass
class Effects:
    """Nonvolatile reads and writes."""

    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)

    def merge(self, other: "Effects") -> None:
        self.reads |= other.reads
        self.writes |= other.writes


@dataclass
class RegionInfo:
    """The extent and undo-log requirements of one atomic region."""

    region: str
    start: ir.InstrId
    end: ir.InstrId
    instrs: list[ir.InstrId]
    effects: Effects

    @property
    def war(self) -> set[str]:
        return self.effects.reads & self.effects.writes

    @property
    def emw(self) -> set[str]:
        return self.effects.writes - self.war

    @property
    def omega(self) -> frozenset[str]:
        return frozenset(self.effects.writes)

    def omega_words(self, module: Module) -> int:
        """Undo-log size in words (arrays count their full length)."""
        total = 0
        for name in self.omega:
            if name in module.arrays:
                total += len(module.arrays[name])
            else:
                total += 1
        return total


def _instr_effects(module: Module, func: IRFunction, instr: ir.Instr) -> Effects:
    """Direct (non-call) nonvolatile effects of one instruction."""
    effects = Effects()
    for expr in instr.used_exprs():
        for sub in lang_ast.walk_exprs(expr):
            if isinstance(sub, lang_ast.Var) and sub.name not in func.locals:
                if sub.name in module.globals:
                    effects.reads.add(sub.name)
            elif isinstance(sub, lang_ast.Index):
                effects.reads.add(sub.array)
    if isinstance(instr, ir.Assign) and instr.scope == ir.SCOPE_GLOBAL:
        effects.writes.add(instr.dest)
    elif isinstance(instr, ir.StoreArr):
        effects.writes.add(instr.array)
    return effects


def function_effects(module: Module, graph: CallGraph | None = None) -> dict[str, Effects]:
    """Transitive nonvolatile effects per function (callee-first order)."""
    graph = graph or build_call_graph(module)
    order = graph.topo_order(module.entry)
    # topo_order only covers the entry's reachable set; include the rest.
    remaining = [n for n in module.functions if n not in order]
    for name in remaining:
        for extra in graph.topo_order(name):
            if extra not in order:
                order.append(extra)

    effects: dict[str, Effects] = {}
    for name in order:
        func = module.function(name)
        total = Effects()
        for instr in func.all_instrs():
            total.merge(_instr_effects(module, func, instr))
            if isinstance(instr, ir.CallInstr) and instr.func in effects:
                total.merge(effects[instr.func])
        effects[name] = total
    return effects


def region_extent(func: IRFunction, start: ir.AtomicStart) -> list[ir.Instr]:
    """Instructions in the *flattened* extent opened by ``start``.

    Nested and overlapping regions flatten at run time: inner start/end
    markers only move the ``n_atom`` counter, and the extent commits when
    the counter would go negative (Appendix H).  The undo log captured at
    the outer start must therefore cover every write up to that commit
    point -- e.g. with the overlap ``start_A start_B end_A ... end_B``, a
    write after ``end_A`` still happens inside A's flattened extent.

    The walk mirrors the counter exactly: any ``AtomicStart`` increments,
    any ``AtomicEnd`` decrements, and a path ends where the depth drops
    below zero.  Call markers inside callees are balanced, so callee
    bodies never terminate the extent (their effects arrive via
    :func:`function_effects`).
    """
    start_block, start_idx = func.position_of(start.uid)
    collected: list[ir.Instr] = []
    seen: set[tuple[str, int, int]] = set()
    work: list[tuple[str, int, int]] = [(start_block, start_idx + 1, 0)]
    while work:
        block_name, idx, depth = work.pop()
        block = func.blocks[block_name]
        while True:
            key = (block_name, idx, depth)
            if key in seen:
                break
            seen.add(key)
            if idx < len(block.instrs):
                instr = block.instrs[idx]
                if isinstance(instr, ir.AtomicStart):
                    depth += 1
                elif isinstance(instr, ir.AtomicEnd):
                    depth -= 1
                    if depth < 0:
                        break  # the flattened extent commits here
                collected.append(instr)
                idx += 1
                continue
            if block.terminator is not None:
                collected.append(block.terminator)
                for succ in block.successors():
                    work.append((succ, 0, depth))
            break
    return collected


def _matching_end(func: IRFunction, start: ir.AtomicStart) -> ir.InstrId:
    for instr in func.all_instrs():
        if isinstance(instr, ir.AtomicEnd) and instr.region == start.region:
            return instr.uid
    raise ValueError(f"region '{start.region}' has no end marker in {func.name}")


def analyze_regions(module: Module) -> list[RegionInfo]:
    """Compute :class:`RegionInfo` for every region in ``module``."""
    graph = build_call_graph(module)
    per_function = function_effects(module, graph)
    infos: list[RegionInfo] = []
    for func in module.functions.values():
        for instr in func.all_instrs():
            if not isinstance(instr, ir.AtomicStart):
                continue
            extent = region_extent(func, instr)
            effects = Effects()
            for inner in extent:
                effects.merge(_instr_effects(module, func, inner))
                if isinstance(inner, ir.CallInstr) and inner.func in per_function:
                    effects.merge(per_function[inner.func])
            infos.append(
                RegionInfo(
                    region=instr.region,
                    start=instr.uid,
                    end=_matching_end(func, instr),
                    instrs=[i.uid for i in extent],
                    effects=effects,
                )
            )
    return infos


def annotate_omegas(module: Module) -> list[RegionInfo]:
    """Stamp ``omega`` onto every ``AtomicStart``; return the region infos."""
    infos = analyze_regions(module)
    by_region = {info.region: info for info in infos}
    for func in module.functions.values():
        for instr in func.all_instrs():
            if isinstance(instr, ir.AtomicStart):
                instr.omega = by_region[instr.region].omega
    return infos
