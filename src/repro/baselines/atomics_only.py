"""The Atomics-only baseline (Section 7.2's teal bars).

Models DINO-style execution [Lucia & Ransford 2015]: the whole program is
divided into atomic regions ("the Atomics-only programs are entirely
divided into atomic regions").  We wrap, in every function, each maximal
run of simple statements -- and each compound statement (``if`` /
``repeat``) as a whole -- in a programmer-style ``atomic { }`` block,
which is how a developer places task boundaries at control-flow changes.

Two paper-observed consequences fall out of this shape:

* CEM's lookup/insert loop becomes one region whose undo log must back up
  the whole compressed-log structure, the source of its ~2.5x overhead;
* Tire's frequently executed Ocelot region ends up nested inside a larger
  Atomics-only region, and "at runtime, only the outermost bounds are
  treated as an atomic region", making Atomics-only slightly faster there.

The transform runs before lowering; Ocelot's inference then runs on top
(Section 8, "using added regions and Ocelot together"), so the correctness
properties hold by construction rather than by programmer care.
"""

from __future__ import annotations

import copy

from repro.lang import ast


def _is_compound(stmt: ast.Stmt) -> bool:
    return isinstance(stmt, (ast.If, ast.Repeat, ast.Atomic))


def _wrap_body(body: list[ast.Stmt]) -> list[ast.Stmt]:
    """Partition ``body`` into atomic chunks.

    Consecutive simple statements form one region; each compound statement
    becomes its own region (its nested bodies are *not* re-wrapped -- inner
    code already executes atomically under the outer region).
    """
    wrapped: list[ast.Stmt] = []
    run: list[ast.Stmt] = []

    def flush() -> None:
        if run:
            wrapped.append(ast.Atomic(body=list(run), span=run[0].span))
            run.clear()

    for stmt in body:
        if isinstance(stmt, ast.Atomic):
            flush()
            wrapped.append(stmt)  # already a region
        elif _is_compound(stmt):
            flush()
            wrapped.append(ast.Atomic(body=[stmt], span=stmt.span))
        elif isinstance(stmt, ast.Return):
            # Returns stay outside so the region commits before unwinding.
            flush()
            wrapped.append(stmt)
        else:
            run.append(stmt)
    flush()
    return wrapped


def atomics_only_transform(program: ast.Program, entry: str = "main") -> ast.Program:
    """Return a deep-copied program divided entirely into atomic regions.

    Only the entry function's body is chunked: every callee executes within
    its caller's region, so chunking ``main`` already places the entire
    execution inside atomic regions -- which is where DINO-style task
    systems put their boundaries (the main control loop, not leaf driver
    functions).
    """
    transformed = copy.deepcopy(program)
    transformed.functions[entry].body = _wrap_body(transformed.functions[entry].body)
    ast.assign_labels(transformed)
    return transformed
