"""Baseline execution models and programming-effort models."""

from repro.baselines.atomics_only import atomics_only_transform
from repro.baselines.effort import (
    STRATEGY_TABLE,
    StrategyRow,
    atomics_effort,
    jit_effort,
    ocelot_effort,
    samoyed_effort,
    tics_effort,
)

__all__ = [
    "atomics_only_transform",
    "STRATEGY_TABLE",
    "StrategyRow",
    "atomics_effort",
    "jit_effort",
    "ocelot_effort",
    "samoyed_effort",
    "tics_effort",
]
