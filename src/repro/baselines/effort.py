"""Programming-effort models: Tables 3 and 4 of the paper.

The paper models the lines of code each system needs to make a benchmark
timing-correct (Section 7.4).  The formulas below implement the stated
estimates:

* **Ocelot** -- declare each input operation and annotate each
  time-constrained datum: ``inputs + annotation lines``; a combined
  ``FreshConsistent`` is one line (Figure 9).
* **JIT** -- nothing to write, nothing enforced.
* **Atomics-only** -- declare inputs and manually bracket each region:
  ``inputs + 2 * regions``.
* **TICS** -- per fresh datum: expiry + alignment + check (3 LoC) plus a
  ~5-line expiration handler; per consistent set: 2 LoC per member
  (expiry + alignment) plus one check + handler (6 LoC) for the set.
* **Samoyed** -- per atomic function: signature + call-site restructuring
  (3 LoC) plus one line per threaded parameter; functions containing loops
  also need a scaling rule (3 LoC) and a software fallback (~5 LoC).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.meta import BenchmarkMeta

TICS_HANDLER_LOC = 5
SAMOYED_SCALING_LOC = 3
SAMOYED_FALLBACK_LOC = 5


def ocelot_effort(meta: BenchmarkMeta) -> int:
    return meta.input_sites + meta.annotation_lines


def jit_effort(meta: BenchmarkMeta) -> int:
    return 0


def atomics_effort(meta: BenchmarkMeta, regions: int) -> int:
    """``1*(num inputs) + 2*(num atomic regions)`` (Table 3)."""
    return meta.input_sites + 2 * regions


def tics_effort(meta: BenchmarkMeta) -> int:
    fresh = meta.fresh_vars * (3 + TICS_HANDLER_LOC)
    consistent = 2 * meta.consistent_vars + meta.consistent_sets * (
        1 + TICS_HANDLER_LOC
    )
    return fresh + consistent


def samoyed_effort(meta: BenchmarkMeta) -> int:
    shape = meta.samoyed
    base = 3 * shape.atomic_fns + shape.params
    loops = shape.loop_fns * (SAMOYED_SCALING_LOC + SAMOYED_FALLBACK_LOC)
    return base + loops


@dataclass(frozen=True)
class StrategyRow:
    """One row of Table 3: how a system is used and what it guarantees."""

    system: str
    constructs: str
    strategy: str
    loc_model: str
    upholds: str


STRATEGY_TABLE: list[StrategyRow] = [
    StrategyRow(
        system="Ocelot",
        constructs="Time-constraint types",
        strategy="Annotate inputs and time-constrained data",
        loc_model="1*(num inputs) + 1*(data with constraint)",
        upholds="Correct: intermittent execution matches the continuous "
        "specification",
    ),
    StrategyRow(
        system="JIT",
        constructs="None",
        strategy="Do nothing",
        loc_model="0",
        upholds="Incorrect",
    ),
    StrategyRow(
        system="Atomics",
        constructs="Atomic regions",
        strategy="Annotate inputs, manually place regions; reason about "
        "control and data flow",
        loc_model="1*(num inputs) + 2*(num atomic regions)",
        upholds="Programmer-dependent: regions may be misplaced",
    ),
    StrategyRow(
        system="TICS",
        constructs="Timestamp alignment, expiration catch, timely branches",
        strategy="Add real-time expiry dates, alignment operations, "
        "expiration/branch points; write exception handlers",
        loc_model="3*(time-sensitive data) + sum(handler LoC)",
        upholds="Real-time timeliness; no clear mapping to temporal "
        "consistency",
    ),
    StrategyRow(
        system="Samoyed",
        constructs="Atomic functions",
        strategy="Reason about control/data flow; rewrite code into "
        "functions; optionally provide fallbacks and scaling rules",
        loc_model="sum(rewrite cost) + sum(scaling rule LoC) + "
        "sum(fallback LoC)",
        upholds="Programmer-dependent: wrong code may land in the atomic "
        "function",
    ),
]
