"""Cycle-interval lattice for the staleness-window analysis.

The staleness analysis (:mod:`repro.analysis.staleness`) tracks, per
input chain, the interval of cycles elapsed since the chain's input
instruction last executed.  Facts are finite maps from chain to
:class:`Interval`; a chain *absent* from a map (or mapped to
:data:`NEVER`) has not executed on any path into the program point, i.e.
its elapsed time is unbounded below and above -- the detector bit is
guaranteed clear.

Intervals form a join-semilattice under the hull (``[min lo, max hi]``,
with ``None`` as plus infinity on either bound), but the hull alone does
not converge on cyclic CFGs: a loop that adds cost each trip grows the
upper bound forever.  :class:`CycleIntervalLattice` therefore also
implements *widening*: when the solver observes a block's state changing
past a threshold (:attr:`repro.analysis.dataflow.FunctionDataflow`
counts merges per block), it calls :meth:`CycleIntervalLattice.widen`,
which snaps a still-growing upper bound to infinity and a still-shrinking
lower bound to zero.  Both moves are sound: the lower bound is only ever
*under*-approximated (the staleness verdicts rely on ``lo`` being a true
minimum over paths) and the upper bound only *over*-approximated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.analysis.provenance import Chain

#: Facts of the staleness analysis: chain -> elapsed-cycle interval.
IntervalFact = Mapping[Chain, "Interval"]


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval of elapsed cycles; ``None`` means unbounded.

    ``lo is None`` implies ``hi is None`` and encodes "not executed on
    any path" (elapsed time is infinite); see :data:`NEVER`.
    """

    lo: Optional[int]
    hi: Optional[int]

    def __post_init__(self) -> None:
        if self.lo is None and self.hi is not None:
            raise ValueError("lo=None (infinite) requires hi=None")
        if (
            self.lo is not None
            and self.hi is not None
            and self.lo > self.hi
        ):
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @property
    def never(self) -> bool:
        """True when the chain executed on no path (elapsed = infinity)."""
        return self.lo is None

    @property
    def bounded(self) -> bool:
        return self.hi is not None

    def shift(self, lo_cost: int, hi_cost: Optional[int]) -> "Interval":
        """Advance time: add ``lo_cost`` to the lower bound and
        ``hi_cost`` (``None`` = unknown, i.e. unbounded) to the upper."""
        if self.lo is None:
            return self
        hi = None if (self.hi is None or hi_cost is None) else self.hi + hi_cost
        return Interval(lo=self.lo + lo_cost, hi=hi)

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (``None`` = infinity)."""
        lo = min(
            (v for v in (self.lo, other.lo) if v is not None), default=None
        )
        hi = (
            None
            if self.hi is None or other.hi is None
            else max(self.hi, other.hi)
        )
        return Interval(lo=lo, hi=hi)

    def render(self) -> str:
        if self.lo is None:
            return "[never]"
        hi = "inf" if self.hi is None else str(self.hi)
        return f"[{self.lo}, {hi}]"


#: The interval of a chain that executed on no path: elapsed = infinity.
NEVER = Interval(lo=None, hi=None)

#: The interval right after a chain's input executes.
ZERO = Interval(lo=0, hi=0)


@dataclass(frozen=True)
class CycleIntervalLattice:
    """Join-semilattice over chain -> :class:`Interval` maps.

    Like the must-lattices, facts follow the solver's first-reaching-fact
    convention (``bottom`` is never materialized).  ``join`` takes the
    per-chain hull, treating a chain missing on one side as
    :data:`NEVER`; ``widen`` is the convergence accelerator the solver
    applies past its merge threshold (see
    :meth:`repro.analysis.dataflow.FunctionDataflow.solve`).
    """

    def bottom(self) -> IntervalFact:  # pragma: no cover - documented, unused
        raise NotImplementedError(
            "interval facts use first-reaching seeds, not a materialized top"
        )

    def join(self, a: IntervalFact, b: IntervalFact) -> IntervalFact:
        if a == b:
            return a
        out: dict[Chain, Interval] = {}
        for chain in a.keys() | b.keys():
            out[chain] = a.get(chain, NEVER).hull(b.get(chain, NEVER))
        return out

    def widen(self, old: IntervalFact, new: IntervalFact) -> IntervalFact:
        """Accelerate ``old -> new``: growing bounds jump to their extreme.

        Applied by the solver only after a block's state keeps changing;
        a genuinely stable bound passes through untouched, so acyclic
        joins keep full precision.
        """
        out: dict[Chain, Interval] = {}
        for chain in old.keys() | new.keys():
            o = old.get(chain, NEVER)
            n = new.get(chain, NEVER)
            if o == n:
                out[chain] = n
                continue
            lo = _widen_lo(o.lo, n.lo)
            hi = _widen_hi(o.hi, n.hi)
            if lo is None and hi is None:
                out[chain] = NEVER
                continue
            out[chain] = Interval(lo=0 if lo is None else lo, hi=hi)
        return out


def _widen_lo(old: Optional[int], new: Optional[int]) -> Optional[int]:
    """Widened lower bound: a shrinking ``lo`` drops straight to 0."""
    if old is None and new is None:
        return None
    if old is None or new is None or new < old:
        return 0
    return new


def _widen_hi(old: Optional[int], new: Optional[int]) -> Optional[int]:
    """Widened upper bound: a growing ``hi`` jumps straight to infinity."""
    if old is None or new is None or new > old:
        return None
    return new
