"""Static analyses: taint / input-dependence, summaries, and policies.

The pipeline is ``analyze_module`` (Algorithm 2 taint analysis) followed by
``build_policies`` (Section 5.1), feeding region inference in
:mod:`repro.core`.
"""

from repro.analysis.availability import (
    AvailabilityAnalysis,
    AvailabilityResult,
    analyze_availability,
)
from repro.analysis.dataflow import (
    BACKWARD,
    FORWARD,
    AllPathsLattice,
    BlockProblem,
    ConvergenceError,
    FunctionDataflow,
    Lattice,
    ReachInfo,
    SetIntersectLattice,
    SetUnionLattice,
    Solution,
    stabilize,
)
from repro.analysis.policies import (
    ConsistentPolicy,
    FreshPolicy,
    Policy,
    PolicyDecls,
    PolicyMap,
    build_policies,
    policy_channels,
)
from repro.analysis.provenance import Chain, Context, common_context, representative_op
from repro.analysis.summaries import (
    FromArg,
    FromLocal,
    FromPbr,
    FromRet,
    FunctionSummaries,
    FunctionSummary,
    InInfo,
    TaintMap,
    call_chain,
)
from repro.analysis.taint import (
    Facts,
    TaintAnalysis,
    TaintResult,
    analyze_module,
    consistent_pid,
    fresh_pid,
)

__all__ = [
    "AvailabilityAnalysis",
    "AvailabilityResult",
    "analyze_availability",
    "BACKWARD",
    "FORWARD",
    "AllPathsLattice",
    "BlockProblem",
    "ConvergenceError",
    "FunctionDataflow",
    "Lattice",
    "ReachInfo",
    "SetIntersectLattice",
    "SetUnionLattice",
    "Solution",
    "stabilize",
    "ConsistentPolicy",
    "FreshPolicy",
    "Policy",
    "PolicyDecls",
    "PolicyMap",
    "build_policies",
    "policy_channels",
    "Chain",
    "Context",
    "common_context",
    "representative_op",
    "FromArg",
    "FromLocal",
    "FromPbr",
    "FromRet",
    "FunctionSummaries",
    "FunctionSummary",
    "InInfo",
    "TaintMap",
    "call_chain",
    "Facts",
    "TaintAnalysis",
    "TaintResult",
    "analyze_module",
    "consistent_pid",
    "fresh_pid",
]
