"""Function taint summaries, following Figure 5 of the paper.

A summary describes how input taint flows through a function:

* a **local summary** (``lSum``) covers taint *generated within* the
  function (an input operation in its body or below): it flows to every
  caller, through the return (``ret``) or a by-reference parameter
  (``&arg``);
* a **caller summary** (``CSum``) covers taint *passed in* by a specific
  call site: it flows back only to that calling context (context
  sensitivity).

Each entry records the originating input operation and a ``fromtp`` tag --
``local(l)``, ``retBy(f, l)``, ``pbr(f, l)`` or ``argBy(f, l)`` -- plus the
fully resolved provenance chain.  The paper reconstructs chains lazily by
linking entries (``callChain(FS, ins)``); our analysis is context-complete,
so it resolves chains eagerly and stores them on the entry, keeping
``call_chain`` a constant-time lookup.  The checker verifies the two views
agree (every resolved chain's shape matches its ``fromtp`` spine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.analysis.provenance import Chain
from repro.ir.instructions import InstrId

# -- fromtp: how taint reached the value ---------------------------------------


@dataclass(frozen=True)
class FromLocal:
    """Taint born here: the input instruction at label ``label``."""

    label: int

    def __str__(self) -> str:
        return f"local({self.label})"


@dataclass(frozen=True)
class FromRet:
    """Taint returned by the callee invoked at call site ``site``."""

    site: InstrId

    def __str__(self) -> str:
        return f"retBy{self.site}"


@dataclass(frozen=True)
class FromPbr:
    """Taint written back through a by-reference argument at ``site``."""

    site: InstrId

    def __str__(self) -> str:
        return f"pbr{self.site}"


@dataclass(frozen=True)
class FromArg:
    """Taint passed in as an argument by the caller at ``site``."""

    site: InstrId

    def __str__(self) -> str:
        return f"argBy{self.site}"


FromTp = Union[FromLocal, FromRet, FromPbr, FromArg]


# -- taint map entries -----------------------------------------------------------

SINK_RET = "ret"


def sink_ref(param: str) -> str:
    """Sink name for a write through by-reference parameter ``param``."""
    return f"&{param}"


@dataclass(frozen=True)
class InInfo:
    """One ``(input : (f, l), fromTp : fromtp)`` record with resolved chain."""

    input: InstrId
    from_tp: FromTp
    chain: Chain

    def __str__(self) -> str:
        return f"(input: {self.input}, fromTp: {self.from_tp})"


@dataclass
class TaintMap:
    """``sink <- inInfo`` rows for one flow direction out of a function."""

    entries: dict[str, set[InInfo]] = field(default_factory=dict)

    def add(self, sink: str, info: InInfo) -> None:
        self.entries.setdefault(sink, set()).add(info)

    def get(self, sink: str) -> set[InInfo]:
        return self.entries.get(sink, set())

    def sinks(self) -> list[str]:
        return sorted(self.entries)

    def __bool__(self) -> bool:
        return any(self.entries.values())


@dataclass
class FunctionSummary:
    """``fsum ::= lSum..., CSum...`` for one function."""

    name: str
    local: TaintMap = field(default_factory=TaintMap)
    #: call-site uid -> taint map for that calling context
    callers: dict[InstrId, TaintMap] = field(default_factory=dict)

    def caller(self, site: InstrId) -> TaintMap:
        return self.callers.setdefault(site, TaintMap())

    def outputs_for(self, site: InstrId, sink: str) -> set[InInfo]:
        """``s(local, sink) ∪ s(call, f, l, sink)`` as in rule Call-nr."""
        out = set(self.local.get(sink))
        if site in self.callers:
            out |= self.callers[site].get(sink)
        return out


@dataclass
class FunctionSummaries:
    """``FS``: every function's summary."""

    by_func: dict[str, FunctionSummary] = field(default_factory=dict)

    def of(self, name: str) -> FunctionSummary:
        return self.by_func.setdefault(name, FunctionSummary(name=name))

    def all_entries(self) -> list[tuple[str, str, str, InInfo]]:
        """Flattened view: ``(function, scope, sink, entry)`` rows.

        ``scope`` is ``"local"`` or the call-site string for caller
        summaries.  Used by reporting and the consistency checks.
        """
        rows: list[tuple[str, str, str, InInfo]] = []
        for name, summary in self.by_func.items():
            for sink, infos in summary.local.entries.items():
                for info in infos:
                    rows.append((name, "local", sink, info))
            for site, tmap in summary.callers.items():
                for sink, infos in tmap.entries.items():
                    for info in infos:
                        rows.append((name, str(site), sink, info))
        return rows


def call_chain(info: InInfo) -> Chain:
    """``callChain(FS, ins)``: the provenance chain for a summary entry.

    Our entries store the eagerly resolved chain; the paper's lazy linking
    would reconstruct the same object (the checker cross-validates shape).
    """
    return info.chain
