"""Interprocedural, context-sensitive input taint analysis (Algorithm 2).

The analysis walks the call tree from ``main`` (call paths are finite: the
language forbids recursion) and computes, flow-sensitively per calling
context, two kinds of facts for every variable:

* **input provenance** (``provs``): the set of provenance chains of input
  operations the value depends on, through data flow *and* control flow
  ("it inserts any definitions that are data or control dependent on iOp
  into the taint map", Appendix I); and
* **policy tags** (``tags``): identity tags injected at ``Fresh``
  annotations and propagated only through value-preserving moves
  (parameter binding, bare-variable copies, returns of a bare variable).
  An instruction reading a tagged value -- or control-dependent on a
  branch that does -- is a *use* of that policy, matching the paper's use
  set ``[let x, if x, alarm]`` for ``Fresh(x); if x < 5 { alarm(); }``
  (Figure 3): direct readers plus the control-dependence closure, but not
  arbitrary data descendants (re-deriving a value ends the freshness
  obligation, which is why CEM's inferred region stays small, Section 7.2).

Rust's ownership discipline is what makes this precise in the paper; our
modeling language enforces the same discipline (singleton may-alias sets,
no mutable globals aliasing), so no conservative pointer blow-up occurs.

Outputs:

* per-annotation input provenance (feeding policy construction),
* per-policy use chains,
* function summaries in the Figure 5 shape (:mod:`repro.analysis.summaries`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.dataflow import FORWARD, FunctionDataflow, stabilize
from repro.analysis.provenance import Chain, Context
from repro.analysis.summaries import (
    SINK_RET,
    FromArg,
    FromLocal,
    FromPbr,
    FromRet,
    FromTp,
    FunctionSummaries,
    InInfo,
    sink_ref,
)
from repro.ir import instructions as ir
from repro.ir.dominators import control_dependence
from repro.ir.module import IRFunction, Module
from repro.lang import ast as lang_ast

# -- facts ----------------------------------------------------------------------

Provs = frozenset[Chain]
Tags = frozenset[str]

EMPTY_PROVS: Provs = frozenset()
EMPTY_TAGS: Tags = frozenset()


@dataclass(frozen=True)
class Facts:
    """What a value carries: input provenance chains and policy tags."""

    provs: Provs = EMPTY_PROVS
    tags: Tags = EMPTY_TAGS

    def merge(self, other: "Facts") -> "Facts":
        if not other.provs and not other.tags:
            return self
        if not self.provs and not self.tags:
            return other
        return Facts(self.provs | other.provs, self.tags | other.tags)

    def __bool__(self) -> bool:
        return bool(self.provs or self.tags)


EMPTY_FACTS = Facts()


def fresh_pid(uid: ir.InstrId) -> str:
    """Policy id for a ``Fresh`` annotation instruction."""
    return f"fresh@{uid.func}:{uid.label}"


def consistent_pid(set_id: int) -> str:
    """Policy id for a consistent set."""
    return f"consistent#{set_id}"


@dataclass
class CallOutcome:
    """Taint flowing out of one analyzed call."""

    ret: Facts = EMPTY_FACTS
    ref_out: dict[str, Facts] = field(default_factory=dict)


@dataclass
class TaintResult:
    """Everything downstream passes need from the analysis."""

    module: Module
    summaries: FunctionSummaries
    #: static AnnotInstr uid -> union of input provenance over all contexts
    annot_inputs: dict[ir.InstrId, set[Chain]]
    #: static AnnotInstr uid -> the annotation's own context-qualified chains
    annot_chains: dict[ir.InstrId, set[Chain]]
    #: policy id -> use chains (fresh policies only)
    uses: dict[str, set[Chain]]

    def channel_of(self, chain: Chain) -> str:
        instr = self.module.instr(chain.op)
        if not isinstance(instr, ir.InputInstr):
            raise ValueError(f"{chain} does not end at an input operation")
        return instr.channel


#: Outer global-memory fixpoint cap; see :meth:`TaintAnalysis.run`.
MAX_GLOBAL_ROUNDS = 64


class TaintAnalysis:
    """Whole-program analysis; run once per module via :func:`analyze_module`.

    ``max_rounds`` caps the outer global-memory fixpoint; exhausting it
    raises a structured
    :class:`~repro.analysis.dataflow.ConvergenceError` naming the
    analysis and the module entry -- the analysis never proceeds with a
    possibly-unconverged result.
    """

    def __init__(
        self, module: Module, max_rounds: int = MAX_GLOBAL_ROUNDS
    ) -> None:
        self._module = module
        self._max_rounds = max_rounds
        self._cd: dict[str, dict[str, set[str]]] = {
            name: control_dependence(func) for name, func in module.functions.items()
        }
        # Monotone accumulators (survive outer fixpoint rounds).
        self._global_facts: dict[str, Facts] = {}
        self._branch_facts: dict[tuple[Context, ir.InstrId], Facts] = {}
        self._uses: dict[str, set[Chain]] = {}
        self._annot_inputs: dict[ir.InstrId, set[Chain]] = {}
        self._annot_chains: dict[ir.InstrId, set[Chain]] = {}
        self._summaries = FunctionSummaries()
        #: (context, chain) -> ('ret'|'pbr', hop uid): how a subtree chain
        #: surfaced in the context's function; used for fromTp derivation.
        self._hop_kind: dict[tuple[Context, Chain], tuple[str, ir.InstrId]] = {}
        self._memo: dict[tuple[object, ...], CallOutcome] = {}

    # -- entry point --------------------------------------------------------------

    def run(self) -> TaintResult:
        # Outer fixpoint over global-memory taint: globals written late in
        # one round are visible to earlier readers only in the next round.
        # `stabilize` re-runs the whole-program walk until the monotone
        # accumulator sizes stop growing, and raises a structured
        # ConvergenceError on the round cap.
        def global_round() -> None:
            self._memo.clear()
            self._analyze_call(
                context=(), func_name=self._module.entry, bindings={}
            )

        stabilize(
            global_round,
            self._state_size,
            analysis="global-taint",
            scope=self._module.entry,
            max_rounds=self._max_rounds,
        )
        return TaintResult(
            module=self._module,
            summaries=self._summaries,
            annot_inputs=self._annot_inputs,
            annot_chains=self._annot_chains,
            uses=self._uses,
        )

    def _state_size(self) -> int:
        total = sum(len(f.provs) + len(f.tags) for f in self._global_facts.values())
        total += sum(len(f.provs) + len(f.tags) for f in self._branch_facts.values())
        total += sum(len(s) for s in self._uses.values())
        total += sum(len(s) for s in self._annot_inputs.values())
        total += sum(len(s) for s in self._annot_chains.values())
        total += len(self._summaries.all_entries())
        return total

    # -- per-call analysis -----------------------------------------------------------

    def _analyze_call(
        self,
        context: Context,
        func_name: str,
        bindings: dict[str, Facts],
    ) -> CallOutcome:
        memo_key = (
            context,
            func_name,
            tuple(sorted((k, v.provs, v.tags) for k, v in bindings.items())),
        )
        if memo_key in self._memo:
            return self._memo[memo_key]

        func = self._module.function(func_name)
        analyzer = _FunctionFlow(self, func, context, bindings)
        outcome = analyzer.run()
        self._memo[memo_key] = outcome
        return outcome

    # -- shared recording hooks ---------------------------------------------------------

    def record_use(self, tags: Tags, chain: Chain) -> None:
        for tag in tags:
            self._uses.setdefault(tag, set()).add(chain)

    def record_annot(self, uid: ir.InstrId, chain: Chain, provs: Provs) -> None:
        self._annot_inputs.setdefault(uid, set()).update(provs)
        self._annot_chains.setdefault(uid, set()).add(chain)

    def record_branch(self, context: Context, uid: ir.InstrId, facts: Facts) -> None:
        key = (context, uid)
        self._branch_facts[key] = self._branch_facts.get(key, EMPTY_FACTS).merge(facts)

    def branch_facts(self, context: Context, uid: ir.InstrId) -> Facts:
        return self._branch_facts.get((context, uid), EMPTY_FACTS)

    def global_facts(self, name: str) -> Facts:
        return self._global_facts.get(name, EMPTY_FACTS)

    def merge_global(self, name: str, facts: Facts) -> None:
        # Stored values lose identity tags (re-deriving through memory ends
        # the freshness obligation; see the module docstring).
        stripped = Facts(provs=facts.provs)
        self._global_facts[name] = self._global_facts.get(
            name, EMPTY_FACTS
        ).merge(stripped)

    def derive_fromtp(self, context: Context, chain: Chain) -> FromTp:
        """How ``chain``'s taint surfaced in ``context``'s function (Figure 5)."""
        if chain.extends(context):
            if len(chain) == len(context) + 1:
                return FromLocal(chain.op.label)
            hop = chain.ids[len(context)]
            kind, _ = self._hop_kind.get((context, chain), ("ret", hop))
            return FromPbr(hop) if kind == "pbr" else FromRet(hop)
        if context:
            return FromArg(context[-1])
        return FromLocal(chain.op.label)

    def record_hop(
        self, context: Context, chain: Chain, kind: str, site: ir.InstrId
    ) -> None:
        self._hop_kind.setdefault((context, chain), (kind, site))

    @property
    def module(self) -> Module:
        return self._module

    @property
    def summaries(self) -> FunctionSummaries:
        return self._summaries


class _EnvLattice:
    """Pointwise join of taint environments (``name -> Facts``)."""

    def bottom(self) -> dict[str, Facts]:
        return {}

    def join(
        self, a: dict[str, Facts], b: dict[str, Facts]
    ) -> dict[str, Facts]:
        if not b:
            return a
        if not a:
            return b
        merged = dict(a)
        for name, facts in b.items():
            merged[name] = merged.get(name, EMPTY_FACTS).merge(facts)
        return merged


_ENV_LATTICE = _EnvLattice()


class _FunctionFlow:
    """Flow-sensitive fixpoint over one function in one calling context.

    A forward :class:`~repro.analysis.dataflow.BlockProblem`: the fact is
    the taint environment at block entry; the transfer functions are the
    Algorithm 2 rules, which also feed the owner's monotone accumulators
    (uses, branch facts, summaries), so the per-function solve is wrapped
    in :func:`~repro.analysis.dataflow.stabilize` until those stop
    changing too.
    """

    name = "taint-flow"
    direction = FORWARD
    lattice = _ENV_LATTICE

    def __init__(
        self,
        owner: TaintAnalysis,
        func: IRFunction,
        context: Context,
        bindings: dict[str, Facts],
    ):
        self._owner = owner
        self._func = func
        self._context = context
        self._bindings = bindings
        self._module = owner.module
        self._cd = owner._cd[func.name]
        self._in_states: dict[str, dict[str, Facts]] = {}
        self._ret_facts = EMPTY_FACTS
        self._ref_out: dict[str, Facts] = {}

    # -- helpers -------------------------------------------------------------------

    def _control_facts(self, block: str) -> Facts:
        facts = EMPTY_FACTS
        for controller in self._cd.get(block, ()):
            term = self._func.blocks[controller].terminator
            if term is not None:
                facts = facts.merge(self._owner.branch_facts(self._context, term.uid))
        return facts

    def _lookup(self, env: dict[str, Facts], name: str) -> Facts:
        if name in self._func.locals or name in {p.name for p in self._func.params}:
            return env.get(name, EMPTY_FACTS)
        return self._owner.global_facts(name)

    def _expr_facts(self, env: dict[str, Facts], expr: lang_ast.Expr) -> Facts:
        facts = EMPTY_FACTS
        for sub in lang_ast.walk_exprs(expr):
            if isinstance(sub, (lang_ast.Var, lang_ast.Ref)):
                facts = facts.merge(self._lookup(env, sub.name))
            elif isinstance(sub, lang_ast.Index):
                facts = facts.merge(self._owner.global_facts(sub.array))
        return facts

    @staticmethod
    def _move_tags(env_facts: Facts, expr: lang_ast.Expr) -> Tags:
        """Tags survive only a bare-variable move (Rust value identity)."""
        if isinstance(expr, lang_ast.Var):
            return env_facts.tags
        return EMPTY_TAGS

    def _read_facts(self, env: dict[str, Facts], instr: ir.Instr, block: str) -> Facts:
        facts = self._control_facts(block)
        for expr in instr.used_exprs():
            facts = facts.merge(self._expr_facts(env, expr))
        if isinstance(instr, ir.CallInstr):
            for name in instr.ref_args():
                facts = facts.merge(self._lookup(env, name))
        if isinstance(instr, ir.StoreRefInstr):
            pass  # the stored expression is already in used_exprs
        return facts

    def _chain_here(self, uid: ir.InstrId) -> Chain:
        return Chain.of(self._context, uid)

    # -- driver -----------------------------------------------------------------------

    def boundary(self) -> dict[str, Facts]:
        return dict(self._bindings)

    def transfer(self, block_name: str, fact: dict[str, Facts]) -> dict[str, Facts]:
        env = dict(fact)
        block = self._func.blocks[block_name]
        for instr in block.instrs:
            self._transfer(env, instr, block_name)
        if block.terminator is not None:
            self._transfer_terminator(env, block.terminator, block_name)
        return env

    def run(self) -> CallOutcome:
        # The block solve reaches a fixpoint of the entry environments,
        # but the transfer functions also grow owner-level accumulators
        # (branch facts feeding control-dependence reads, return and
        # by-reference outflow); stabilize re-solves until the snapshot
        # of those is quiescent as well.
        flow = FunctionDataflow(self._func)

        def sweep() -> None:
            flow.solve(self, states=self._in_states, max_rounds=200)

        stabilize(
            sweep,
            self._snapshot,
            analysis="taint-flow",
            scope=self._func.name,
            max_rounds=200,
        )
        return CallOutcome(ret=self._ret_facts, ref_out=dict(self._ref_out))

    def _snapshot(self) -> tuple[object, ...]:
        env_size = tuple(
            sorted(
                (name, len(env), sum(len(f.provs) + len(f.tags) for f in env.values()))
                for name, env in self._in_states.items()
            )
        )
        ret = (len(self._ret_facts.provs), len(self._ret_facts.tags))
        ref = tuple(
            sorted(
                (p, len(f.provs), len(f.tags)) for p, f in self._ref_out.items()
            )
        )
        return env_size, ret, ref

    # -- transfer functions ---------------------------------------------------------------

    def _transfer(self, env: dict[str, Facts], instr: ir.Instr, block: str) -> None:
        reads = self._read_facts(env, instr, block)
        if reads.tags and not isinstance(instr, ir.AnnotInstr):
            self._owner.record_use(reads.tags, self._chain_here(instr.uid))

        if isinstance(instr, ir.InputInstr):
            chain = self._chain_here(instr.uid)
            env[instr.dest] = Facts(provs=frozenset({chain}))
        elif isinstance(instr, ir.Assign):
            value = self._expr_facts(env, instr.expr)
            control = self._control_facts(block)
            tags = self._move_tags(
                self._lookup(env, instr.expr.name)
                if isinstance(instr.expr, lang_ast.Var)
                else EMPTY_FACTS,
                instr.expr,
            )
            result = Facts(provs=value.provs | control.provs, tags=tags)
            if instr.scope == ir.SCOPE_GLOBAL:
                self._owner.merge_global(instr.dest, result)
            else:
                env[instr.dest] = result
        elif isinstance(instr, ir.StoreArr):
            value = self._expr_facts(env, instr.expr)
            index = self._expr_facts(env, instr.index)
            control = self._control_facts(block)
            self._owner.merge_global(
                instr.array,
                Facts(provs=value.provs | index.provs | control.provs),
            )
        elif isinstance(instr, ir.StoreRefInstr):
            value = self._expr_facts(env, instr.expr)
            control = self._control_facts(block)
            tags = self._move_tags(
                self._lookup(env, instr.expr.name)
                if isinstance(instr.expr, lang_ast.Var)
                else EMPTY_FACTS,
                instr.expr,
            )
            result = Facts(provs=value.provs | control.provs, tags=tags)
            env[instr.param] = result
            self._ref_out[instr.param] = self._ref_out.get(
                instr.param, EMPTY_FACTS
            ).merge(result)
        elif isinstance(instr, ir.CallInstr):
            self._transfer_call(env, instr, block)
        elif isinstance(instr, ir.AnnotInstr):
            var_facts = self._lookup(env, instr.var)
            chain = self._chain_here(instr.uid)
            self._owner.record_annot(instr.uid, chain, var_facts.provs)
            if instr.kind == lang_ast.AnnotKind.FRESH:
                pid = fresh_pid(instr.uid)
                env[instr.var] = Facts(
                    provs=var_facts.provs, tags=var_facts.tags | {pid}
                )
        # Output, work, skip, atomic markers: reads recorded above, no defs.

    def _transfer_call(
        self, env: dict[str, Facts], instr: ir.CallInstr, block: str
    ) -> None:
        if instr.func not in self._module.functions:
            return
        callee = self._module.function(instr.func)
        site_chain = self._context + (instr.uid,)
        bindings: dict[str, Facts] = {}
        incoming: list[tuple[str, Facts]] = []  # (sink, facts) for summaries
        for param, arg in zip(callee.params, instr.args, strict=True):
            if isinstance(arg, ir.RefArg):
                facts = self._lookup(env, arg.name)
                bindings[param.name] = facts
                if facts.provs:
                    incoming.append((sink_ref(param.name), facts))
            else:
                value = self._expr_facts(env, arg)
                tags = self._move_tags(
                    self._lookup(env, arg.name)
                    if isinstance(arg, lang_ast.Var)
                    else EMPTY_FACTS,
                    arg,
                )
                facts = Facts(provs=value.provs, tags=tags)
                bindings[param.name] = facts
                if facts.provs:
                    incoming.append((param.name, facts))

        outcome = self._owner._analyze_call(site_chain, instr.func, bindings)

        # -- summary rows (Figure 5) -------------------------------------------------
        summary = self._owner.summaries.of(instr.func)
        for sink, facts in incoming:
            for chain in facts.provs:
                summary.caller(instr.uid).add(
                    sink,
                    InInfo(
                        input=chain.op,
                        from_tp=self._owner.derive_fromtp(self._context, chain),
                        chain=chain,
                    ),
                )
        self._record_outflow(summary, instr.uid, SINK_RET, outcome.ret, site_chain)
        for param, facts in outcome.ref_out.items():
            self._record_outflow(
                summary, instr.uid, sink_ref(param), facts, site_chain
            )

        # -- effect on the caller state ------------------------------------------------
        control = self._control_facts(block)
        for chain in outcome.ret.provs:
            if chain.extends(site_chain):
                self._owner.record_hop(self._context, chain, "ret", instr.uid)
        if instr.dest is not None:
            env[instr.dest] = Facts(
                provs=outcome.ret.provs | control.provs, tags=outcome.ret.tags
            )
        for param, arg in zip(callee.params, instr.args, strict=True):
            if isinstance(arg, ir.RefArg) and param.name in outcome.ref_out:
                written = outcome.ref_out[param.name]
                for chain in written.provs:
                    if chain.extends(site_chain):
                        self._owner.record_hop(
                            self._context, chain, "pbr", instr.uid
                        )
                merged = Facts(
                    provs=written.provs | control.provs, tags=written.tags
                )
                env[arg.name] = self._lookup(env, arg.name).merge(merged)

    def _record_outflow(
        self,
        summary,
        site: ir.InstrId,
        sink: str,
        facts: Facts,
        site_chain: Context,
    ) -> None:
        for chain in facts.provs:
            if chain.extends(site_chain):
                # Generated within the callee's subtree: local summary.
                hop_label = chain.ids[len(site_chain)].label
                summary.local.add(
                    sink,
                    InInfo(input=chain.op, from_tp=FromLocal(hop_label), chain=chain),
                )
            else:
                summary.caller(site).add(
                    sink,
                    InInfo(input=chain.op, from_tp=FromArg(site), chain=chain),
                )

    def _transfer_terminator(
        self, env: dict[str, Facts], term: ir.Terminator, block: str
    ) -> None:
        reads = self._read_facts(env, term, block)
        if reads.tags:
            self._owner.record_use(reads.tags, self._chain_here(term.uid))
        if isinstance(term, ir.Branch):
            self._owner.record_branch(self._context, term.uid, reads)
        elif isinstance(term, ir.RetInstr) and term.expr is not None:
            value = self._expr_facts(env, term.expr)
            control = self._control_facts(block)
            tags = self._move_tags(
                self._lookup(env, term.expr.name)
                if isinstance(term.expr, lang_ast.Var)
                else EMPTY_FACTS,
                term.expr,
            )
            self._ret_facts = self._ret_facts.merge(
                Facts(provs=value.provs | control.provs, tags=tags)
            )


def analyze_module(module: Module) -> TaintResult:
    """Run the whole-program taint analysis on ``module``."""
    return TaintAnalysis(module).run()
