"""Exhaustive-search crosscheck of the staleness linter's verdicts.

Mirror of :mod:`repro.ir.opt.crosscheck`, for the static verdict layer:
the linter (:mod:`repro.analysis.staleness`) claims every SAFE check can
*never* fire under the registered environment and every DOOMED check has
a concrete counterexample within one failure.  This module re-derives
both claims by brute force: the bounded model checker explores every
failure schedule within the bound over the **baseline** detector plan in
collect-all mode, and

* no SAFE check may appear among the fired ``(policy, site)`` pairs --
  one firing is a linter unsoundness;
* every DOOMED check must appear among them (given ``max_failures >= 1``
  and a bound covering the activation) -- a missing counterexample means
  the DOOMED proof argued past the machine semantics.

The oracles are independent: the explorer executes the stock engines and
consults neither the availability facts, the cycle windows, nor the
probe (pruning defaults to off so nothing is shared with the system
under test), while the linter never explores schedules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.provenance import Chain
from repro.analysis.staleness import (
    VERDICT_DOOMED,
    VERDICT_SAFE,
    StalenessReport,
    analyze_staleness,
)
from repro.core.passes import CompiledProgram
from repro.energy.costs import DEFAULT_COSTS, CostModel
from repro.runtime.detector import build_detector_plan
from repro.runtime.engine import ENGINE_FAST
from repro.sensors.environment import Environment
from repro.verify.explorer import Verdict, VerifyBounds, verify_program


@dataclass(frozen=True)
class StalenessCrosscheckResult:
    """Outcome of one linter-vs-explorer comparison."""

    report: StalenessReport
    #: (pid, site) pairs that fired somewhere in the explored space
    fired: frozenset[tuple[str, Chain]]
    #: SAFE checks the exhaustive search saw firing -- linter unsound
    safe_offenders: tuple[tuple[str, Chain], ...]
    #: DOOMED checks the search never saw firing -- missing witness
    doomed_missing: tuple[tuple[str, Chain], ...]
    verdict: Verdict

    @property
    def ok(self) -> bool:
        return not self.safe_offenders and not self.doomed_missing

    @property
    def complete(self) -> bool:
        """Did the search cover the whole bound (nothing cut early)?"""
        stats = self.verdict.stats
        return stats.truncated == 0 and stats.stuck == 0

    def render(self) -> str:
        counts = self.report.counts()
        status = "ok" if self.ok else "LINTER BUG"
        lines = [
            f"staleness crosscheck: {status} -- "
            f"{counts[VERDICT_SAFE]} safe / {counts[VERDICT_DOOMED]} doomed "
            f"vs {len(self.fired)} firing site(s) in "
            f"{self.verdict.stats.explored} explored state(s)"
        ]
        for pid, site in self.safe_offenders:
            lines.append(f"  SAFE check {pid} at {site} FIRED")
        for pid, site in self.doomed_missing:
            lines.append(f"  DOOMED check {pid} at {site} never fired")
        return "\n".join(lines)


def crosscheck_staleness(
    compiled: CompiledProgram,
    env: Environment,
    bounds: VerifyBounds | None = None,
    engine: str = ENGINE_FAST,
    costs: CostModel = DEFAULT_COSTS,
    prune: bool = False,
    window: int | None = None,
) -> StalenessCrosscheckResult:
    """Lint ``compiled`` with ``env`` as the sole registered environment,
    then explore every failure schedule within ``bounds`` under the
    baseline plan and compare.

    The DOOMED obligation only holds when the bound can express the
    witness: ``bounds.max_failures >= 1`` and enough cycles for the
    activation.  Callers asserting on :attr:`~StalenessCrosscheckResult.ok`
    should also assert :attr:`~StalenessCrosscheckResult.complete`.
    """
    report = analyze_staleness(
        compiled, [("crosscheck", env)], costs=costs, window=window
    )
    baseline = build_detector_plan(compiled.policies)
    verdict = verify_program(
        compiled,
        env,
        bounds=bounds,
        engine=engine,
        costs=costs,
        plan=baseline,
        prune=prune,
        collect_all=True,
        minimize=False,
    )
    safe = report.pairs(VERDICT_SAFE)
    doomed = report.pairs(VERDICT_DOOMED)
    return StalenessCrosscheckResult(
        report=report,
        fired=verdict.fired,
        safe_offenders=tuple(sorted(safe & verdict.fired)),
        doomed_missing=tuple(sorted(doomed - verdict.fired)),
        verdict=verdict,
    )
