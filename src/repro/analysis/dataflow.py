"""Generic worklist/fixpoint dataflow framework.

Every static analysis in this reproduction is a fixpoint over the IR:
the interprocedural taint analysis (Algorithm 2) iterates per-function
block states inside an outer global-memory fixpoint, and the check
optimizer's availability and anticipability analyses (:mod:`repro.ir.opt`)
are classic forward-must and backward-must problems.  Before this module
each of those carried its own hand-rolled loop with its own ad-hoc
iteration cap; now they are instances of one substrate:

* :class:`Lattice` -- the join-semilattice protocol a fact domain
  implements (``bottom`` is the join identity).  :class:`SetUnionLattice`
  (may-analyses), :class:`SetIntersectLattice` (must-analyses over sets),
  and :class:`AllPathsLattice` (must-analyses over booleans) cover the
  in-tree analyses.
* :class:`BlockProblem` -- one dataflow problem: a direction, a lattice,
  and a per-block transfer function.  Transfer functions may carry side
  effects (the taint analysis records uses and summaries while
  transferring); the solver guarantees every reachable block's transfer
  runs at least once with its final input fact, so side effects observe
  the fixpoint.
* :class:`FunctionDataflow` -- the per-function solver: deterministic
  round-robin sweeps over the block order (insertion order for forward
  problems, reversed for backward) until no in-state changes, with an
  iteration guard that raises a structured :class:`ConvergenceError`
  instead of silently proceeding with an unconverged result.  The solver
  also owns the CFG bundle the optimizer passes need -- successors,
  predecessors, and a lazily built dominator tree
  (:mod:`repro.ir.dominators`) for dominator-aware merges and anchor
  placement.
* :func:`stabilize` -- the outer-fixpoint driver for analyses whose
  transfer functions feed monotone global accumulators (the taint
  analysis' global-memory facts): re-run a step until a snapshot stops
  changing, again raising :class:`ConvergenceError` on the round cap.

Facts must be comparable with ``==`` and, for must-analyses, hashable
(frozensets); the solver never mutates facts in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Protocol, runtime_checkable

from repro.ir.dominators import DomTree, dominator_tree
from repro.ir.module import IRFunction

FORWARD = "forward"
BACKWARD = "backward"

#: Default sweep cap; real programs converge in a handful of rounds, so
#: hitting this means a transfer function is not monotone.
MAX_ROUNDS = 200

#: Default per-block merge count after which the solver switches from a
#: lattice's ``join`` to its ``widen`` (for lattices that have one).
#: Small enough to converge quickly on loops, large enough that the
#: diamond joins of acyclic CFGs never trigger it.
WIDEN_AFTER = 4


class ConvergenceError(RuntimeError):
    """A fixpoint failed to converge within its round cap.

    Carries structured fields so callers (the pass manager, tests) can
    report *which* analysis diverged *where* instead of a bare message:
    ``analysis`` names the fixpoint, ``scope`` the function or module it
    ran over, ``rounds`` the cap that was exhausted.
    """

    def __init__(
        self, analysis: str, scope: str, rounds: int, detail: str = ""
    ) -> None:
        self.analysis = analysis
        self.scope = scope
        self.rounds = rounds
        self.detail = detail
        message = (
            f"{analysis} fixpoint over '{scope}' did not converge within "
            f"{rounds} round(s)"
        )
        if detail:
            message += f": {detail}"
        super().__init__(message)

    def to_diagnostic(self) -> dict[str, object]:
        """The structured form (mirrors ``Diagnostic.to_dict`` payloads)."""
        return {
            "analysis": self.analysis,
            "scope": self.scope,
            "rounds": self.rounds,
            "detail": self.detail,
        }


# ---------------------------------------------------------------------------
# Lattices


@runtime_checkable
class Lattice(Protocol):
    """A join-semilattice over facts; ``bottom`` is the join identity."""

    def bottom(self) -> Any: ...

    def join(self, a: Any, b: Any) -> Any: ...


@dataclass(frozen=True)
class SetUnionLattice:
    """May-analysis facts: frozensets ordered by inclusion, join = union."""

    def bottom(self) -> frozenset[Any]:
        return frozenset()

    def join(self, a: frozenset[Any], b: frozenset[Any]) -> frozenset[Any]:
        if not b:
            return a
        if not a:
            return b
        return a | b


@dataclass(frozen=True)
class SetIntersectLattice:
    """Must-analysis facts: frozensets with join = intersection.

    The solver stores the first fact reaching a block directly (the
    implicit top element), so ``bottom`` -- the identity a pre-seeded
    state would need -- is never materialized; ``join`` only ever sees
    two concrete sets.
    """

    def bottom(self) -> None:  # pragma: no cover - documented, unused
        raise NotImplementedError(
            "must-analyses rely on first-reaching facts, not a materialized top"
        )

    def join(self, a: frozenset[Any], b: frozenset[Any]) -> frozenset[Any]:
        if a == b:
            return a
        return a & b


@dataclass(frozen=True)
class AllPathsLattice:
    """Boolean must-facts: join = AND ("holds on every incoming path")."""

    def bottom(self) -> bool:  # pragma: no cover - documented, unused
        raise NotImplementedError("boolean must-facts use first-reaching seeds")

    def join(self, a: bool, b: bool) -> bool:
        return a and b


# ---------------------------------------------------------------------------
# Problems and solutions


@runtime_checkable
class BlockProblem(Protocol):
    """One dataflow problem over a function's CFG.

    ``transfer`` maps the flow-input fact of a block (entry fact for
    forward problems, exit fact for backward ones) to its flow-output
    fact.  ``boundary`` is the fact at the flow source (the entry block
    forward, the exit block backward).
    """

    name: str
    direction: str
    lattice: Lattice

    def boundary(self) -> Any: ...

    def transfer(self, block_name: str, fact: Any) -> Any: ...


@dataclass
class Solution:
    """Fixpoint states of one solve: flow-in and flow-out facts per block.

    For forward problems ``states`` holds block-entry facts and
    ``out_states`` block-exit facts; backward problems flip the roles.
    Unreachable blocks are absent.
    """

    states: dict[str, Any]
    out_states: dict[str, Any]
    rounds: int

    def in_fact(self, block: str, default: Any = None) -> Any:
        return self.states.get(block, default)

    def out_fact(self, block: str, default: Any = None) -> Any:
        return self.out_states.get(block, default)


class FunctionDataflow:
    """Fixpoint solver plus CFG info bundle for one IR function.

    The solver performs deterministic round-robin sweeps over the block
    order, merging each block's transferred fact into its flow
    successors, until a full sweep changes nothing.  Determinism matters:
    side-effecting problems (taint) must record facts in a reproducible
    order so compile artifacts are byte-stable across runs and processes.
    """

    def __init__(self, func: IRFunction) -> None:
        self.func = func
        self.order: list[str] = list(func.blocks)
        self.successors: dict[str, list[str]] = {
            name: block.successors() for name, block in func.blocks.items()
        }
        self._predecessors: Optional[dict[str, list[str]]] = None
        self._domtree: Optional[DomTree] = None

    @property
    def predecessors(self) -> dict[str, list[str]]:
        """Reverse edges (built on first use; only backward problems and
        the optimizer's reachability need them -- the taint analysis
        constructs one solver per analyzed calling context, so forward
        solves must not pay for the reverse map)."""
        if self._predecessors is None:
            self._predecessors = self.func.predecessors()
        return self._predecessors

    @property
    def domtree(self) -> DomTree:
        """Dominator tree of the function (built on first use)."""
        if self._domtree is None:
            self._domtree = dominator_tree(self.func)
        return self._domtree

    def solve(
        self,
        problem: BlockProblem,
        states: Optional[dict[str, Any]] = None,
        max_rounds: int = MAX_ROUNDS,
    ) -> Solution:
        """Run ``problem`` to its fixpoint over this function.

        ``states`` optionally carries flow-in facts from a previous solve
        (the taint analysis keeps block states across outer global
        rounds); it is updated in place and returned inside the
        :class:`Solution`.  Raises :class:`ConvergenceError` when
        ``max_rounds`` sweeps do not reach the fixpoint.

        Lattices of infinite (or impractically tall) height -- the
        staleness analysis' cycle intervals -- additionally implement
        ``widen(old, new)``: once a block's in-state has changed more
        than ``widen_after`` times (the problem may override the
        default via a ``widen_after`` attribute), the solver runs the
        joined fact through ``widen`` before storing it, trading
        precision for guaranteed convergence on cyclic CFGs.
        """
        forward = problem.direction == FORWARD
        if forward:
            order = self.order
            source = self.func.entry
            edges = self.successors
        else:
            order = list(reversed(self.order))
            source = self.func.exit
            edges = self.predecessors

        lattice = problem.lattice
        widen = getattr(lattice, "widen", None)
        widen_after = getattr(problem, "widen_after", WIDEN_AFTER)
        merges: dict[str, int] = {}
        if states is None:
            states = {}
        boundary = problem.boundary()
        seeded = states.get(source)
        states[source] = (
            boundary if seeded is None else lattice.join(seeded, boundary)
        )
        out_states: dict[str, Any] = {}

        rounds = 0
        changed = True
        while changed:
            rounds += 1
            if rounds > max_rounds:
                raise ConvergenceError(
                    problem.name, self.func.name, max_rounds,
                    detail=f"{len(states)} block state(s) still unstable",
                )
            changed = False
            for name in order:
                if name not in states:
                    continue
                out = problem.transfer(name, states[name])
                out_states[name] = out
                for nxt in edges[name]:
                    if nxt not in states:
                        states[nxt] = out
                        changed = True
                        continue
                    merged = lattice.join(states[nxt], out)
                    if merged == states[nxt]:
                        continue
                    count = merges.get(nxt, 0) + 1
                    merges[nxt] = count
                    if widen is not None and count > widen_after:
                        merged = widen(states[nxt], merged)
                    if merged != states[nxt]:
                        states[nxt] = merged
                        changed = True
        return Solution(states=states, out_states=out_states, rounds=rounds)


def stabilize(
    step: Callable[[], None],
    snapshot: Callable[[], Any],
    analysis: str,
    scope: str,
    max_rounds: int = 64,
) -> int:
    """Outer-fixpoint driver: run ``step`` until ``snapshot`` is stable.

    For analyses whose transfer functions feed monotone global
    accumulators (global-memory taint, recorded use sets), a per-function
    solve alone cannot observe quiescence; this driver re-runs the whole
    step until a caller-supplied snapshot of the accumulated state stops
    changing.  Returns the number of rounds executed.  Raises a
    structured :class:`ConvergenceError` when ``max_rounds`` is exhausted
    -- proceeding with a possibly-unconverged result is never an option.
    """
    previous: Any = _UNSTARTED
    for rounds in range(1, max_rounds + 1):
        step()
        current = snapshot()
        if current == previous:
            return rounds
        previous = current
    raise ConvergenceError(
        analysis, scope, max_rounds,
        detail=f"last snapshot: {previous!r}"[:200],
    )


class _Unstarted:
    """Sentinel distinct from every snapshot value."""

    def __eq__(self, other: object) -> bool:
        return other is self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unstarted>"


_UNSTARTED = _Unstarted()


# ---------------------------------------------------------------------------
# Shared CFG helpers for dominator-aware passes


@dataclass
class ReachInfo:
    """Forward/backward reachability closure over one function's blocks."""

    successors: dict[str, list[str]] = field(default_factory=dict)
    reaches: dict[str, frozenset[str]] = field(default_factory=dict)
    reached_by: dict[str, frozenset[str]] = field(default_factory=dict)

    @staticmethod
    def of(flow: FunctionDataflow) -> "ReachInfo":
        reaches = {
            name: _closure(name, flow.successors) for name in flow.order
        }
        reached_by = {
            name: _closure(name, flow.predecessors) for name in flow.order
        }
        return ReachInfo(
            successors=flow.successors, reaches=reaches, reached_by=reached_by
        )

    def between(self, src: str, dst: str) -> frozenset[str]:
        """Blocks on some path from ``src`` to ``dst`` (inclusive)."""
        return self.reaches.get(src, frozenset()) & self.reached_by.get(
            dst, frozenset()
        )

    def cyclic(self, block: str) -> bool:
        """Is ``block`` on a cycle (reachable from its own successors)?"""
        return any(
            block in self.reaches.get(succ, frozenset())
            for succ in self.successors.get(block, ())
        )


def _closure(root: str, edges: dict[str, list[str]]) -> frozenset[str]:
    seen = {root}
    stack = [root]
    while stack:
        node = stack.pop()
        for nxt in edges.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return frozenset(seen)
