"""Environment specialization: prune CFG edges infeasible under a signal.

The availability analysis answers "can this check ever fire?" for *any*
environment: its must-facts quantify over every CFG path.  Under a
concrete registered environment some of those paths cannot execute --
a branch on a value read from a constant channel always goes the same
way -- and the staleness linter exploits that to prove more checks SAFE
*per environment* (a strictly stronger verdict set than the structural
proof, exactly as the check optimizer's never-fire proof is the
environment-free special case).

The specialization is deliberately conservative:

* only channels whose signal has **period 1** (provably constant,
  :func:`repro.sensors.environment.signal_period`) fold; everything
  else -- globals, arrays, call results, by-reference writes -- is
  treated as unknown;
* constants propagate intraprocedurally through a forward must-analysis
  on the PR 5 dataflow solver (:class:`_ConstProblem`), joining equal
  constants and degrading to unknown at any disagreement;
* a branch whose condition folds to a constant is rewritten into an
  unconditional jump **with the same instruction uid**, so provenance
  chains, detector sites, and availability facts of the specialized
  module are directly comparable with the original's.

Soundness: every execution under the environment takes exactly the
branch the fold predicts (the evaluator mirrors the machine's
``_binop`` semantics), so the specialized CFG admits a superset of the
real executions and any must-fact proven on it holds for every real
execution under that environment.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from repro.analysis.dataflow import FORWARD, FunctionDataflow
from repro.ir import instructions as ir
from repro.ir.module import BasicBlock, IRFunction, Module
from repro.lang import ast as lang_ast
from repro.sensors.environment import Environment, signal_period


class _NotConst:
    """Sentinel: the variable's value is unknown (not a constant)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<nac>"


NAC = _NotConst()

ConstValue = Union[int, _NotConst]
ConstFact = Mapping[str, ConstValue]


def constant_channels(env: Environment) -> dict[str, int]:
    """Channels provably constant under ``env``, with their value."""
    out: dict[str, int] = {}
    for channel, signal in env.signals.items():
        if signal_period(signal) == 1:
            out[channel] = signal(0)
    return out


def fold_expr(expr: lang_ast.Expr, consts: ConstFact) -> Optional[int]:
    """Evaluate ``expr`` to a constant under ``consts``, or ``None``.

    Mirrors the machine's evaluator (:mod:`repro.runtime.executor`) on
    the pure fragment; anything it cannot prove constant -- globals,
    array reads, references, unknown calls -- returns ``None``.
    """
    if isinstance(expr, lang_ast.IntLit):
        return expr.value
    if isinstance(expr, lang_ast.BoolLit):
        return int(expr.value)
    if isinstance(expr, lang_ast.Var):
        value = consts.get(expr.name, NAC)
        return None if isinstance(value, _NotConst) else value
    if isinstance(expr, lang_ast.Unary):
        operand = fold_expr(expr.operand, consts)
        if operand is None:
            return None
        if expr.op == "-":
            return -operand
        if expr.op == "!":
            return int(not operand)
        return None
    if isinstance(expr, lang_ast.Binary):
        lhs = fold_expr(expr.lhs, consts)
        rhs = fold_expr(expr.rhs, consts)
        if lhs is None or rhs is None:
            return None
        # Deferred import: the machine owns the operator semantics, and
        # importing it lazily keeps analysis free of a runtime import
        # cycle.
        from repro.runtime.executor import _binop

        try:
            return _binop(expr.op, lhs, rhs)
        except Exception:
            return None  # division by zero etc: leave to the runtime
    if isinstance(expr, lang_ast.Call):
        args = [fold_expr(a, consts) for a in expr.args]
        if any(a is None for a in args):
            return None
        folded = [a for a in args if a is not None]
        if expr.func == "abs" and len(folded) == 1:
            return abs(folded[0])
        if expr.func == "min" and len(folded) == 2:
            return min(folded[0], folded[1])
        if expr.func == "max" and len(folded) == 2:
            return max(folded[0], folded[1])
        return None
    return None


class _ConstLattice:
    """Must-constants: join keeps agreeing values, degrades to NAC."""

    def bottom(self) -> ConstFact:  # pragma: no cover - documented, unused
        raise NotImplementedError("const facts use first-reaching seeds")

    def join(self, a: ConstFact, b: ConstFact) -> ConstFact:
        if a == b:
            return a
        out: dict[str, ConstValue] = {}
        for name in a.keys() | b.keys():
            va = a.get(name, NAC)
            vb = b.get(name, NAC)
            out[name] = va if va == vb else NAC
        return out


class _ConstProblem:
    """Forward intraprocedural constant propagation over one function."""

    name = "const-fold"
    direction = FORWARD

    def __init__(self, func: IRFunction, channels: Mapping[str, int]) -> None:
        self.lattice = _ConstLattice()
        self._func = func
        self._channels = channels

    def boundary(self) -> ConstFact:
        # Parameters arrive with unknown values.
        return {p.name: NAC for p in self._func.params}

    def transfer(self, block_name: str, fact: ConstFact) -> ConstFact:
        out: dict[str, ConstValue] = dict(fact)
        consts = out
        for instr in self._func.blocks[block_name].instrs:
            if isinstance(instr, ir.Assign):
                if instr.scope == ir.SCOPE_LOCAL:
                    value = fold_expr(instr.expr, consts)
                    out[instr.dest] = NAC if value is None else value
            elif isinstance(instr, ir.InputInstr):
                value = self._channels.get(instr.channel)
                out[instr.dest] = NAC if value is None else value
            elif isinstance(instr, ir.CallInstr):
                if instr.dest is not None:
                    out[instr.dest] = NAC
                for name in instr.ref_args():
                    out[name] = NAC
        return out


def specialize_function(
    func: IRFunction, channels: Mapping[str, int]
) -> IRFunction:
    """A copy of ``func`` with provably one-sided branches made jumps.

    Instructions are shared (analyses never mutate them); only rewritten
    terminators are fresh objects, and those keep the original uid.
    """
    flow = FunctionDataflow(func)
    problem = _ConstProblem(func, channels)
    solution = flow.solve(problem)

    blocks: dict[str, BasicBlock] = {}
    for name, block in func.blocks.items():
        terminator = block.terminator
        exit_fact = solution.out_fact(name)
        if (
            isinstance(terminator, ir.Branch)
            and exit_fact is not None
        ):
            cond = fold_expr(terminator.cond, exit_fact)
            if cond is not None:
                target = (
                    terminator.true_target if cond else terminator.false_target
                )
                terminator = ir.Jump(
                    target=target, uid=terminator.uid, span=terminator.span
                )
        blocks[name] = BasicBlock(
            name=name, instrs=block.instrs, terminator=terminator
        )
    return IRFunction(
        name=func.name,
        params=func.params,
        blocks=blocks,
        entry=func.entry,
        exit=func.exit,
        locals=func.locals,
    )


def specialize_module(module: Module, env: Environment) -> Module:
    """A view of ``module`` with edges infeasible under ``env`` removed.

    Returns ``module`` itself when the environment fixes no channel (no
    specialization possible), so callers can cheaply detect the no-op.
    """
    channels = constant_channels(env)
    if not channels:
        return module
    functions = {
        name: specialize_function(func, channels)
        for name, func in module.functions.items()
    }
    return Module(
        functions=functions,
        globals=module.globals,
        arrays=module.arrays,
        channels=module.channels,
        entry=module.entry,
    )
