"""Must-executed input-chain availability (the check optimizer's oracle).

The bit-vector detector (Section 7.3) sets a chain's bit when its input
executes and clears *all* bits on power failure.  A runtime check over a
required set ``R`` can therefore never fire exactly when, at the check
site, every chain in ``R`` is guaranteed to have re-executed since the
last possible bit-clearing resume point.  This module computes that
guarantee statically, as a context-sensitive interprocedural forward
**must**-analysis (an instance of :mod:`repro.analysis.dataflow`):

* the fact at a program point is the set of input chains that executed
  on **every** path from **every** possible resume point to that point;
* resume points are where a reboot can deposit control with cleared
  bits: the entry of ``main`` (fresh activation / statically initialized
  context), *any* instruction outside an atomic region (JIT-Reboot
  resumes at the low-power checkpoint, which can be taken anywhere), and
  the start of an outermost atomic region (Atom-Reboot rolls volatile
  state back to the region entry).

The atomic-region structure makes the analysis non-trivial: outside any
region nothing is ever available (a JIT checkpoint right before the
check site resumes there with cleared bits), while *inside* a region a
failure always rewinds to the region start, so inputs that dominate the
site within the region are guaranteed re-executed.  Nested
``atomic_start`` markers only bump the dynamic nesting counter
(Atom-Start-Inner) and are **not** resume points, so the transfer
functions track the static atomic nesting depth -- well-defined per
block because :mod:`repro.ir.verify` enforces bracket balance at joins.

Calls are walked context-sensitively like the taint analysis (the
language forbids recursion): the callee is analyzed in the extended
context with the caller's fact and depth at the call site, and the
fact after the call is the callee's exit fact.  Facts are recorded
*before* every instruction (detector checks run before their trigger
instruction executes); re-analyses under shrinking entry facts
intersect into the record, so the stored fact is always a sound
under-approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.dataflow import (
    FORWARD,
    MAX_ROUNDS,
    FunctionDataflow,
    SetIntersectLattice,
)
from repro.analysis.provenance import Chain, Context
from repro.ir import instructions as ir
from repro.ir.module import IRFunction, Module

EMPTY: frozenset[Chain] = frozenset()

_MUST = SetIntersectLattice()


@dataclass
class AvailabilityResult:
    """Availability facts for one module.

    ``before`` maps every analyzed (context-qualified) instruction chain
    to the set of input chains guaranteed executed since the last
    possible bit-clear when control reaches it.  Chains never analyzed
    (unreachable code) default to the empty set -- the conservative
    answer for a must-analysis.
    """

    before: dict[Chain, frozenset[Chain]] = field(default_factory=dict)
    contexts: int = 0
    rounds: int = 0

    def at(self, site: Chain) -> frozenset[Chain]:
        return self.before.get(site, EMPTY)


def function_block_depths(func: IRFunction) -> tuple[dict[str, int], bool]:
    """Static atomic depth at each reachable block entry, relative to the
    function's own entry; ``ok=False`` when brackets are inconsistent
    (a join reached at two different depths).

    Shared by the availability analysis and the verifier's resume-point
    classification (:func:`classify_resume_points`), so both agree on
    which program points sit inside a region.
    """
    depth_at: dict[str, int] = {func.entry: 0}
    order = [func.entry]
    idx = 0
    ok = True
    while idx < len(order) and ok:
        name = order[idx]
        idx += 1
        depth = depth_at[name]
        for instr in func.blocks[name].instrs:
            if isinstance(instr, ir.AtomicStart):
                depth += 1
            elif isinstance(instr, ir.AtomicEnd):
                depth -= 1
        for succ in func.blocks[name].successors():
            if succ not in depth_at:
                depth_at[succ] = depth
                order.append(succ)
            elif depth_at[succ] != depth:
                ok = False
                break
    return depth_at, ok


class AvailabilityAnalysis:
    """Whole-program analysis; run once per module via :func:`analyze_availability`."""

    def __init__(self, module: Module, max_rounds: int = MAX_ROUNDS) -> None:
        self._module = module
        self._max_rounds = max_rounds
        self._before: dict[Chain, frozenset[Chain]] = {}
        #: (context, func, entry fact, entry depth) -> exit fact
        self._memo: dict[tuple[object, ...], frozenset[Chain]] = {}
        #: func name -> (relative depth at block entry, brackets consistent)
        self._depths: dict[str, tuple[dict[str, int], bool]] = {}
        self._contexts: set[tuple[Context, str]] = set()
        self._rounds = 0

    def run(self) -> AvailabilityResult:
        self._exit_fact((), self._module.entry, EMPTY, 0)
        return AvailabilityResult(
            before=self._before,
            contexts=len(self._contexts),
            rounds=self._rounds,
        )

    # -- recording -------------------------------------------------------------

    def _record(self, chain: Chain, fact: frozenset[Chain]) -> None:
        old = self._before.get(chain)
        self._before[chain] = fact if old is None else (old & fact)

    # -- static region nesting -------------------------------------------------

    def _block_depths(self, func: IRFunction) -> tuple[dict[str, int], bool]:
        """Static atomic depth at each block entry, relative to the
        function's own entry; ``ok=False`` when brackets are inconsistent
        (the analysis then degrades to "nothing available")."""
        cached = self._depths.get(func.name)
        if cached is not None:
            return cached
        result = function_block_depths(func)
        self._depths[func.name] = result
        return result

    # -- interprocedural walk -----------------------------------------------------

    def _exit_fact(
        self,
        context: Context,
        func_name: str,
        entry_fact: frozenset[Chain],
        entry_depth: int,
    ) -> frozenset[Chain]:
        """Availability at the callee's unified exit, analyzing on demand."""
        key = (context, func_name, entry_fact, entry_depth)
        cached = self._memo.get(key)
        if cached is not None:
            return cached

        func = self._module.function(func_name)
        self._contexts.add((context, func_name))
        rel_depths, ok = self._block_depths(func)
        if not ok:
            # Inconsistent brackets: record nothing (lookups default to
            # the empty set) and report nothing available downstream.
            self._memo[key] = EMPTY
            return EMPTY

        problem = _AvailProblem(self, func, context, rel_depths, entry_depth)
        flow = FunctionDataflow(func)
        boundary = entry_fact if entry_depth > 0 else EMPTY
        problem.entry_fact = boundary
        solution = flow.solve(problem, max_rounds=self._max_rounds)
        self._rounds += solution.rounds
        exit_fact = solution.out_fact(func.exit, EMPTY)
        self._memo[key] = exit_fact
        return exit_fact


class _AvailProblem:
    """Forward must-problem over one function in one calling context."""

    name = "availability"
    direction = FORWARD
    lattice = _MUST

    def __init__(
        self,
        owner: AvailabilityAnalysis,
        func: IRFunction,
        context: Context,
        rel_depths: dict[str, int],
        entry_depth: int,
    ):
        self._owner = owner
        self._func = func
        self._context = context
        self._rel_depths = rel_depths
        self._entry_depth = entry_depth
        self.entry_fact: frozenset[Chain] = EMPTY

    def boundary(self) -> frozenset[Chain]:
        return self.entry_fact

    def transfer(
        self, block_name: str, fact: frozenset[Chain]
    ) -> frozenset[Chain]:
        owner = self._owner
        context = self._context
        module = owner._module
        depth = self._entry_depth + self._rel_depths.get(block_name, 0)
        if depth <= 0:
            fact = EMPTY
        block = self._func.blocks[block_name]
        for instr in block.all_instrs():
            owner._record(Chain.of(context, instr.uid), fact)
            if isinstance(instr, ir.AtomicStart):
                depth += 1
                if depth == 1:
                    # Outermost region entry: Atom-Reboot resumes here
                    # with cleared bits, so only inputs after this point
                    # are guaranteed.
                    fact = EMPTY
            elif isinstance(instr, ir.AtomicEnd):
                depth -= 1
                if depth <= 0:
                    depth = 0
                    fact = EMPTY
            elif isinstance(instr, ir.InputInstr):
                if depth > 0:
                    fact = fact | {Chain.of(context, instr.uid)}
            elif (
                isinstance(instr, ir.CallInstr)
                and instr.func in module.functions
            ):
                fact = owner._exit_fact(
                    context + (instr.uid,), instr.func, fact, depth
                )
                if depth <= 0:
                    fact = EMPTY
        return fact


def analyze_availability(
    module: Module, max_rounds: int = MAX_ROUNDS
) -> AvailabilityResult:
    """Run the must-executed-input analysis on a lowered (and, for useful
    results, region-instrumented) module.

    ``max_rounds`` caps each per-function solver sweep; exceeding it
    raises :class:`~repro.analysis.dataflow.ConvergenceError` naming
    this analysis -- injectable so the cap is testable without a
    pathological CFG.
    """
    return AvailabilityAnalysis(module, max_rounds=max_rounds).run()


# ---------------------------------------------------------------------------
# Resume-point classification (the verifier's pruning query)


@dataclass(frozen=True)
class ResumeClassification:
    """Static atomic-region depth at every context-qualified chain.

    ``depth[chain]`` is the static nesting depth *when control reaches*
    the instruction (i.e. before it executes -- the ``fail_before``
    moment).  Depth 0 means a power failure there deposits control at a
    fresh resume point with cleared detector bits (activation restart or
    a JIT checkpoint that resumes anywhere); depth >= 1 means
    Atom-Reboot rolls volatile and logged nonvolatile state back to the
    *outermost* region entry, so the failure's future is equivalent to
    one already explored from the fork before that region entry.  Chains
    in functions with inconsistent region brackets, or never classified,
    conservatively report depth 0 (never prunable).
    """

    depth: dict[Chain, int] = field(default_factory=dict)
    inconsistent: frozenset[str] = frozenset()

    def prunable(self, chain: Chain) -> bool:
        """May the verifier skip forking a failure before ``chain``?"""
        return self.depth.get(chain, 0) > 0

    @property
    def in_region_chains(self) -> int:
        return sum(1 for d in self.depth.values() if d > 0)


def classify_resume_points(module: Module) -> ResumeClassification:
    """Classify every reachable context-qualified chain by static depth.

    Mirrors the availability transfer's depth tracking (same
    :func:`function_block_depths`, same context-sensitive call walk), so
    the pruner and the availability facts agree on region membership.
    When the same chain is reached at different depths -- impossible for
    bracket-consistent programs, but kept conservative -- the *minimum*
    wins, which can only disable pruning, never enable it unsoundly.
    """
    depths: dict[Chain, int] = {}
    inconsistent: set[str] = set()
    seen: set[tuple[Context, str, int]] = set()

    def walk(context: Context, func_name: str, entry_depth: int) -> None:
        key = (context, func_name, entry_depth)
        if key in seen:
            return
        seen.add(key)
        func = module.function(func_name)
        rel_depths, ok = function_block_depths(func)
        if not ok:
            inconsistent.add(func_name)
            return
        for block_name, rel in rel_depths.items():
            depth = max(0, entry_depth + rel)
            for instr in func.blocks[block_name].all_instrs():
                chain = Chain.of(context, instr.uid)
                old = depths.get(chain)
                depths[chain] = depth if old is None else min(old, depth)
                if isinstance(instr, ir.AtomicStart):
                    depth += 1
                elif isinstance(instr, ir.AtomicEnd):
                    depth = max(0, depth - 1)
                elif (
                    isinstance(instr, ir.CallInstr)
                    and instr.func in module.functions
                ):
                    walk(context + (instr.uid,), instr.func, depth)

    walk((), module.entry, 0)
    return ResumeClassification(
        depth=depths, inconsistent=frozenset(inconsistent)
    )
