"""Static staleness-window analysis: prove checks safe or doomed.

The PR 5 layer proves checks *redundant* (availability: the required
bits are guaranteed set); whether a surviving check can actually fire
was, until now, answered dynamically by the campaign engine or the
bounded model checker.  This module answers it statically, per check of
the baseline detector plan:

* **SAFE** -- the check can never fire.  Either structurally (every
  required chain is must-available at the site, the optimizer's proof)
  or *per registered environment*: constant channels fold branch
  conditions (:mod:`repro.analysis.specialize`), pruning CFG edges no
  execution under that environment can take, and the availability
  must-facts re-proven on the pruned CFG cover the site.  A check is
  SAFE only when proven under **every** registered environment.
* **DOOMED** -- the check fires whenever its site executes.  Two
  provable causes: ``fires-without-failure`` (a required input chain
  precedes the site on *no* path, so its bit is clear even on the
  failure-free run -- confirmed by the concrete reachability probe) and
  ``stale-window`` (the minimum cycle distance from a required input to
  the site exceeds the usable-energy window ``U``: any supply whose
  charge sustains at most ``U`` cycles must fail somewhere inside every
  input-to-use journey, and a journey restarted by the reboot costs just
  as much, so no arrival at the site ever carries a set bit.  For sites
  outside atomic regions the JIT checkpoint still guarantees arrivals,
  hence the check fires on every one).  Every DOOMED check carries a
  concrete witness: an empty schedule (it already fires failure-free) or
  a single failure immediately before the site, which the bounded model
  checker confirms as a counterexample.
* **ENV-DEPENDENT** -- neither proof applies.  The diagnostic reports
  the elapsed-cycle window ``[lo, hi]`` per required chain, the supply
  window threshold below which the verdict flips to DOOMED, and which
  registered environments (if any) individually prove the check safe.

The cycle windows come from an interprocedural, context-sensitive
forward dataflow (:class:`StalenessAnalysis`) over the
:class:`~repro.analysis.intervals.CycleIntervalLattice`: the fact at a
program point maps every detector bit chain to the interval of cycles
elapsed since its input instruction last executed, advanced by the cost
model and reset to ``[0, 0]`` at the input itself.  Reboot re-execution
needs no extra edges: a resume point either replays the input (the
elapsed clock restarts -- the re-execution path is itself a CFG path)
or leaves the bit clear, which the verdict logic accounts for via
:func:`~repro.analysis.availability.classify_resume_points`.  Loops are
handled by the solver's widening hook.

For consistent-set policies the report adds *stale-pair coverage*: any
pair of set members not covered by a common atomic region gets a fix-it
naming the nearest common dominator block where a region covering both
could start.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.analysis.availability import (
    AvailabilityResult,
    ResumeClassification,
    analyze_availability,
    classify_resume_points,
)
from repro.analysis.dataflow import FORWARD, MAX_ROUNDS, FunctionDataflow
from repro.analysis.intervals import (
    NEVER,
    ZERO,
    CycleIntervalLattice,
    Interval,
    IntervalFact,
)
from repro.analysis.provenance import Chain, Context, common_context, representative_op
from repro.analysis.specialize import specialize_module
from repro.energy.costs import DEFAULT_COSTS, CostModel
from repro.ir import instructions as ir
from repro.ir.instructions import InstrId
from repro.ir.module import IRFunction, Module
from repro.lang import ast as lang_ast
from repro.sensors.environment import Environment, signal_period

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.detector import Check, DetectorPlan

#: Pseudo-chain tracking cycles since the activation began.
BOOT = Chain.of((), InstrId("<boot>", 0))

VERDICT_SAFE = "safe"
VERDICT_DOOMED = "doomed"
VERDICT_ENV = "env-dependent"

_LATTICE = CycleIntervalLattice()


# ---------------------------------------------------------------------------
# The cycle-interval dataflow


@dataclass
class WindowResult:
    """Elapsed-cycle windows for one module.

    ``before`` maps every analyzed (context-qualified) instruction chain
    to the chain->interval fact holding when control reaches it --
    exactly the moment its detector checks run.  Sites never analyzed
    (unreachable code) default to the empty fact: every chain reads as
    "never executed", the conservative answer.
    """

    before: dict[Chain, IntervalFact] = field(default_factory=dict)
    contexts: int = 0
    rounds: int = 0

    def at(self, site: Chain) -> IntervalFact:
        return self.before.get(site, {})

    def window(self, site: Chain, chain: Chain) -> Interval:
        """Elapsed cycles since ``chain`` executed, at ``site``."""
        return self.at(site).get(chain, NEVER)


class StalenessAnalysis:
    """Interprocedural elapsed-cycles analysis (one run per module).

    Context-sensitive exactly like the availability analysis: callees
    are analyzed per calling context with the caller's fact at the call
    site, memoized on ``(context, function, entry fact)``.  The
    recursion terminates because the language forbids recursive calls
    and the per-function solver widens on cyclic CFGs.
    """

    def __init__(
        self,
        module: Module,
        tracked: frozenset[Chain],
        costs: CostModel = DEFAULT_COSTS,
        max_rounds: int = MAX_ROUNDS,
    ) -> None:
        self._module = module
        self._tracked = tracked
        self._costs = costs
        self._max_rounds = max_rounds
        self._before: dict[Chain, IntervalFact] = {}
        self._memo: dict[tuple[Any, ...], IntervalFact] = {}
        self._contexts: set[tuple[Context, str]] = set()
        self._rounds = 0
        # Conservative volatile estimate for region-entry upper bounds
        # (mirrors the feasibility bounder's stack model).
        self._volatile = sum(
            len(func.locals) + 2 for func in module.functions.values()
        )

    def run(self) -> WindowResult:
        self._exit_fact((), self._module.entry, {BOOT: ZERO})
        return WindowResult(
            before=self._before,
            contexts=len(self._contexts),
            rounds=self._rounds,
        )

    # -- recording -------------------------------------------------------------

    def _record(self, chain: Chain, fact: IntervalFact) -> None:
        old = self._before.get(chain)
        self._before[chain] = fact if old is None else _LATTICE.join(old, fact)

    # -- costs -----------------------------------------------------------------

    def _instr_cost(self, instr: ir.Instr) -> tuple[int, Optional[int]]:
        """``(lo, hi)`` cycle cost of one instruction; ``hi=None`` when
        unbounded.  ``lo`` is a sound under-approximation (the verdicts
        rely on it); ``hi`` is best-effort for reporting."""
        if isinstance(instr, ir.WorkInstr):
            if isinstance(instr.cycles, lang_ast.IntLit):
                cycles = self._costs.instr_cycles(
                    instr, work_value=max(0, instr.cycles.value)
                )
                return cycles, cycles
            return 0, None
        if isinstance(instr, ir.AtomicStart):
            return 0, self._costs.region_entry_cycles(self._volatile, 0)
        if isinstance(instr, ir.AtomicEnd):
            return 0, self._costs.region_commit
        cycles = self._costs.instr_cycles(instr)
        return cycles, cycles

    # -- interprocedural walk --------------------------------------------------

    def _freeze(self, fact: IntervalFact) -> tuple[Any, ...]:
        return tuple(sorted(fact.items()))

    def _exit_fact(
        self, context: Context, func_name: str, entry_fact: IntervalFact
    ) -> IntervalFact:
        key = (context, func_name, self._freeze(entry_fact))
        cached = self._memo.get(key)
        if cached is not None:
            return cached

        func = self._module.function(func_name)
        self._contexts.add((context, func_name))
        problem = _ElapsedProblem(self, func, context, entry_fact)
        flow = FunctionDataflow(func)
        solution = flow.solve(problem, max_rounds=self._max_rounds)
        self._rounds += solution.rounds
        exit_fact = solution.out_fact(func.exit, {})
        self._memo[key] = exit_fact
        return exit_fact


class _ElapsedProblem:
    """Forward interval problem over one function in one calling context."""

    name = "staleness"
    direction = FORWARD
    lattice = _LATTICE

    def __init__(
        self,
        owner: StalenessAnalysis,
        func: IRFunction,
        context: Context,
        entry_fact: IntervalFact,
    ) -> None:
        self._owner = owner
        self._func = func
        self._context = context
        self._entry_fact = entry_fact

    def boundary(self) -> IntervalFact:
        return self._entry_fact

    def transfer(self, block_name: str, fact: IntervalFact) -> IntervalFact:
        owner = self._owner
        context = self._context
        module = owner._module
        for instr in self._func.blocks[block_name].all_instrs():
            owner._record(Chain.of(context, instr.uid), fact)
            lo_cost, hi_cost = owner._instr_cost(instr)
            if lo_cost or hi_cost is None or hi_cost:
                fact = {
                    chain: interval.shift(lo_cost, hi_cost)
                    for chain, interval in fact.items()
                }
            if isinstance(instr, ir.InputInstr):
                chain = Chain.of(context, instr.uid)
                if chain in owner._tracked:
                    updated = dict(fact)
                    updated[chain] = ZERO
                    fact = updated
            elif (
                isinstance(instr, ir.CallInstr)
                and instr.func in module.functions
            ):
                fact = owner._exit_fact(
                    context + (instr.uid,), instr.func, fact
                )
        return fact


def analyze_windows(
    module: Module,
    tracked: frozenset[Chain],
    costs: CostModel = DEFAULT_COSTS,
    max_rounds: int = MAX_ROUNDS,
) -> WindowResult:
    """Run the elapsed-cycles analysis over ``module`` for ``tracked``
    chains (plus the implicit :data:`BOOT` clock)."""
    return StalenessAnalysis(
        module, tracked=tracked, costs=costs, max_rounds=max_rounds
    ).run()


# ---------------------------------------------------------------------------
# The concrete reachability probe


@dataclass(frozen=True)
class ProbeResult:
    """One failure-free run: which check sites executed, which fired."""

    executed: frozenset[Chain] = frozenset()
    fired: frozenset[tuple[str, Chain]] = frozenset()
    completed: bool = True


def probe_run(
    compiled: Any,
    env: Environment,
    plan: "DetectorPlan",
    costs: CostModel = DEFAULT_COSTS,
    max_cycles: int = 200_000,
) -> ProbeResult:
    """Execute one failure-free activation, recording per-site facts.

    The probe is the linter's reachability oracle: a DOOMED verdict is
    only emitted for sites this run actually reaches, which is what
    guarantees the bounded model checker can confirm it with a concrete
    counterexample.  Runs the reference engine under wall power; cost is
    one activation, paid only in the lint / ``--emit staleness`` path.
    """
    from repro.runtime.engine import ENGINE_REFERENCE, create_machine
    from repro.runtime.executor import ExecError, MachineConfig
    from repro.runtime.supply import ContinuousPower

    machine = create_machine(
        ENGINE_REFERENCE,
        compiled,
        env,
        ContinuousPower(),
        costs=costs,
        plan=plan,
        config=MachineConfig(max_cycles=max_cycles),
    )
    executed: set[Chain] = set()
    fired: set[tuple[str, Chain]] = set()
    completed = True
    while not machine._done:
        if machine.stats.total_cycles > max_cycles:
            completed = False
            break
        instr = machine._fetch()
        chain: Optional[Chain] = None
        if instr.uid in plan.trigger_uids:
            chain = machine._current_chain(instr.uid)
            executed.add(chain)
        seen = len(machine.trace.violations)
        try:
            machine.step()
        except ExecError:
            completed = False
            break
        if chain is not None:
            for violation in machine.trace.violations[seen:]:
                fired.add((violation.pid, chain))
    return ProbeResult(
        executed=frozenset(executed),
        fired=frozenset(fired),
        completed=completed,
    )


# ---------------------------------------------------------------------------
# Verdicts


@dataclass(frozen=True)
class CheckVerdict:
    """The linter's answer for one detector check."""

    pid: str
    kind: str  # 'fresh' or 'consistent'
    site: Chain
    verdict: str  # safe | doomed | env-dependent
    reason: str
    #: required chains not structurally must-available at the site
    missing: tuple[Chain, ...] = ()
    #: per required chain: elapsed-cycle window at the site
    windows: tuple[tuple[Chain, Interval], ...] = ()
    #: supply window (cycles) below which the verdict flips to DOOMED
    threshold: Optional[int] = None
    #: environments that individually prove the check safe
    safe_envs: tuple[str, ...] = ()
    #: concrete witness (schedule description) for DOOMED verdicts
    witness: tuple[str, ...] = ()
    #: consistent-set region-placement suggestions
    fixits: tuple[str, ...] = ()
    #: static atomic depth at the site (0 = JIT-resumable)
    site_depth: int = 0
    #: did the probe observe the site executing? (None = no probe ran)
    reached: Optional[bool] = None

    @property
    def level(self) -> str:
        if self.verdict == VERDICT_DOOMED:
            return "error"
        if self.verdict == VERDICT_ENV:
            return "warning"
        return "info"

    def describe(self) -> str:
        head = (
            f"{self.verdict.upper():13s} {self.kind} {self.pid} at "
            f"{self.site}: {self.reason}"
        )
        parts = [head]
        for chain, interval in self.windows:
            parts.append(f"    window {interval.render()} since {chain}")
        if self.threshold is not None:
            parts.append(
                f"    flips to DOOMED under supply windows < "
                f"{self.threshold} cycles"
            )
        if self.safe_envs:
            parts.append(
                "    proven safe under: " + ", ".join(self.safe_envs)
            )
        for line in self.witness:
            parts.append(f"    witness: {line}")
        for line in self.fixits:
            parts.append(f"    fix-it: {line}")
        return "\n".join(parts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "kind": self.kind,
            "site": str(self.site),
            "verdict": self.verdict,
            "reason": self.reason,
            "level": self.level,
            "missing": [str(c) for c in self.missing],
            "windows": {
                str(chain): [interval.lo, interval.hi]
                for chain, interval in self.windows
            },
            "threshold": self.threshold,
            "safe_envs": list(self.safe_envs),
            "witness": list(self.witness),
            "fixits": list(self.fixits),
            "site_depth": self.site_depth,
            "reached": self.reached,
        }


@dataclass
class StalenessReport:
    """All check verdicts for one compiled program."""

    config: str
    window_cycles: int
    verdicts: list[CheckVerdict] = field(default_factory=list)
    envs: tuple[str, ...] = ()
    probed: bool = False
    analysis_rounds: int = 0

    def counts(self) -> dict[str, int]:
        out = {VERDICT_SAFE: 0, VERDICT_DOOMED: 0, VERDICT_ENV: 0}
        for verdict in self.verdicts:
            out[verdict.verdict] += 1
        return out

    def by_verdict(self, kind: str) -> list[CheckVerdict]:
        return [v for v in self.verdicts if v.verdict == kind]

    def pairs(self, kind: str) -> frozenset[tuple[str, Chain]]:
        """(pid, site) pairs carrying the given verdict."""
        return frozenset(
            (v.pid, v.site) for v in self.verdicts if v.verdict == kind
        )

    def doomed_uids(self) -> frozenset[InstrId]:
        """Trigger uids of DOOMED sites (the verifier's frontier seeds)."""
        return frozenset(
            v.site.op for v in self.verdicts if v.verdict == VERDICT_DOOMED
        )

    def relevant_bits(self) -> frozenset[Chain]:
        """Bit chains some non-SAFE check still depends on.

        The verifier's no-op pruning may ignore bits outside this set:
        clearing a bit read only by SAFE checks cannot create a
        violation, because SAFE checks never fire under any schedule.
        """
        out: set[Chain] = set()
        for verdict in self.verdicts:
            if verdict.verdict != VERDICT_SAFE:
                out.update(verdict.missing)
                out.update(chain for chain, _ in verdict.windows)
        return frozenset(out)

    def diagnostics(self) -> list[Any]:
        """The verdicts as structured pass diagnostics (stage ``lint``)."""
        from repro.core.passes.base import (
            DIAG_ERROR,
            DIAG_INFO,
            DIAG_WARNING,
            Diagnostic,
        )

        levels = {
            "error": DIAG_ERROR,
            "warning": DIAG_WARNING,
            "info": DIAG_INFO,
        }
        return [
            Diagnostic(
                stage="lint",
                level=levels[verdict.level],
                message=verdict.describe(),
            )
            for verdict in self.verdicts
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "config": self.config,
            "window_cycles": self.window_cycles,
            "envs": list(self.envs),
            "probed": self.probed,
            "summary": self.counts(),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    def render_text(self) -> str:
        counts = self.counts()
        lines = [
            f"lint: {len(self.verdicts)} check(s) under config "
            f"'{self.config}' (supply window {self.window_cycles} cycles)",
            f"  safe: {counts[VERDICT_SAFE]}  doomed: "
            f"{counts[VERDICT_DOOMED]}  env-dependent: {counts[VERDICT_ENV]}",
        ]
        for verdict in self.verdicts:
            lines.append(verdict.describe())
        return "\n".join(lines)

    def worst_level(self) -> Optional[str]:
        if any(v.verdict == VERDICT_DOOMED for v in self.verdicts):
            return "error"
        if any(v.verdict == VERDICT_ENV for v in self.verdicts):
            return "warning"
        return None

    def exit_code(self, fail_on: str = "error") -> int:
        """Gate: 1 when a verdict at or above ``fail_on`` exists."""
        worst = self.worst_level()
        if fail_on == "never" or worst is None:
            return 0
        if fail_on == "warning":
            return 1
        return 1 if worst == "error" else 0


# ---------------------------------------------------------------------------
# Classification


def _consistent_fixits(
    module: Module,
    check: "Check",
    avail_at: frozenset[Chain],
) -> tuple[str, ...]:
    """Region-placement suggestions for uncovered consistent pairs.

    For every required chain whose bit is not guaranteed at the site,
    suggest starting an atomic region at the nearest common dominator of
    the pair's representative operations -- the smallest placement that
    can cover both ends (the shape region inference itself uses).
    """
    fixits: list[str] = []
    for chain in check.required:
        if chain in avail_at:
            continue
        context = common_context([chain, check.site])
        op_a = representative_op(chain, context)
        op_b = representative_op(check.site, context)
        func = module.function(op_a.func)
        try:
            block_a = func.block_of(op_a)
            block_b = func.block_of(op_b)
        except Exception:  # pragma: no cover - malformed module
            continue
        lca = FunctionDataflow(func).domtree.lca(block_a, block_b)
        fixits.append(
            f"cover {chain} and {check.site} with one atomic region "
            f"starting at block '{lca}' of {func.name}() "
            f"(nearest common dominator of {op_a} and {op_b})"
        )
    return tuple(fixits)


def _signal_periods(envs: Sequence[tuple[str, Environment]]) -> dict[str, str]:
    out: dict[str, str] = {}
    for name, env in envs:
        periods = sorted(
            {
                str(signal_period(sig))
                for sig in env.signals.values()
                if signal_period(sig) is not None
            }
        )
        out[name] = ",".join(periods) if periods else "aperiodic"
    return out


def _classify_check(
    check: "Check",
    avail: AvailabilityResult,
    env_avails: Sequence[tuple[str, AvailabilityResult]],
    windows: WindowResult,
    classification: ResumeClassification,
    probe: Optional[ProbeResult],
    window_cycles: int,
    fixits: tuple[str, ...],
) -> CheckVerdict:
    site = check.site
    avail_at = avail.at(site)
    missing = tuple(
        sorted(chain for chain in check.required if chain not in avail_at)
    )
    site_windows = tuple(
        (chain, windows.window(site, chain)) for chain in sorted(check.required)
    )
    depth = classification.depth.get(site, 0)
    reached = None if probe is None else (site in probe.executed)

    common = {
        "pid": check.pid,
        "kind": check.kind,
        "site": site,
        "missing": missing,
        "windows": site_windows,
        "site_depth": depth,
        "reached": reached,
        "fixits": fixits,
    }

    if not missing:
        return CheckVerdict(
            verdict=VERDICT_SAFE,
            reason="every required chain is must-available at the site",
            **common,
        )

    safe_envs = tuple(
        name
        for name, env_avail in env_avails
        if all(chain in env_avail.at(site) for chain in missing)
    )
    if env_avails and len(safe_envs) == len(env_avails):
        return CheckVerdict(
            verdict=VERDICT_SAFE,
            reason=(
                "required chains are must-available under every "
                "registered environment (infeasible edges pruned)"
            ),
            safe_envs=safe_envs,
            **common,
        )

    if probe is not None and (check.pid, site) in probe.fired:
        culprits = [
            chain for chain, interval in site_windows if interval.never
        ]
        detail = (
            f"required input {culprits[0]} executes on no path to the site"
            if culprits
            else "a required bit is clear on the failure-free path"
        )
        return CheckVerdict(
            verdict=VERDICT_DOOMED,
            reason=f"fires even without power failures: {detail}",
            witness=(
                "empty failure schedule: the failure-free run violates "
                f"{check.pid} at {site.op}",
            ),
            safe_envs=safe_envs,
            **common,
        )

    #: the supply window under which the check can no longer pass: the
    #: widest minimum input-to-site distance among required chains.
    finite_los = [
        interval.lo
        for _chain, interval in site_windows
        if interval.lo is not None
    ]
    flip = max(finite_los) if finite_los else None

    if (
        reached
        and depth == 0
        and flip is not None
        and flip > window_cycles
    ):
        culprit = max(
            (
                (interval.lo, chain)
                for chain, interval in site_windows
                if interval.lo is not None
            ),
        )[1]
        return CheckVerdict(
            verdict=VERDICT_DOOMED,
            reason=(
                f"minimum {flip} cycles from {culprit} to the site exceed "
                f"the {window_cycles}-cycle usable-energy window: no "
                "arrival can carry a set bit"
            ),
            threshold=flip,
            witness=(
                f"schedule: one power failure immediately before "
                f"{site.op} -- the JIT checkpoint resumes at the site "
                "with cleared bits",
            ),
            safe_envs=safe_envs,
            **common,
        )

    if reached is False:
        reason = "site not reached by the failure-free probe run"
    elif safe_envs:
        reason = (
            "safe under some registered environments but not all "
            f"({len(safe_envs)}/{len(env_avails)})"
        )
    else:
        missing_count = len(missing)
        reason = (
            "may fire depending on schedule and environment "
            f"({missing_count} required chain(s) not must-available)"
        )
    return CheckVerdict(
        verdict=VERDICT_ENV,
        reason=reason,
        threshold=flip,
        safe_envs=safe_envs,
        **common,
    )


def analyze_staleness(
    compiled: Any,
    envs: Optional[Sequence[tuple[str, Environment]]] = None,
    *,
    costs: Optional[CostModel] = None,
    window: Optional[int] = None,
    probe: bool = True,
    max_rounds: int = MAX_ROUNDS,
    probe_cycles: int = 200_000,
) -> StalenessReport:
    """Classify every baseline check of ``compiled`` as SAFE / DOOMED /
    ENV-DEPENDENT.

    ``envs`` registers named environments for the specialized SAFE
    proofs and the probe; with none given, the probe runs under the
    all-constant-zero environment and SAFE means the structural proof
    only.  ``window`` overrides the usable-energy window (defaults to
    the standard profile's guaranteed post-boot budget).  The analysis
    runs only here -- never on the run/campaign/fleet hot paths.
    """
    from repro.runtime.detector import build_detector_plan

    module: Module = compiled.module
    cost_model = costs if costs is not None else DEFAULT_COSTS
    if window is None:
        from repro.core.feasibility import profile_usable_energy
        from repro.eval.profiles import STANDARD_PROFILE

        window = profile_usable_energy(STANDARD_PROFILE)

    plan = build_detector_plan(compiled.policies)
    avail = analyze_availability(module, max_rounds=max_rounds)
    classification = classify_resume_points(module)
    windows = analyze_windows(
        module,
        tracked=plan.bit_chains,
        costs=cost_model,
        max_rounds=max_rounds,
    )

    registered = list(envs) if envs else []
    env_avails: list[tuple[str, AvailabilityResult]] = []
    for name, env in registered:
        specialized = specialize_module(module, env)
        env_avails.append(
            (
                name,
                avail
                if specialized is module
                else analyze_availability(specialized, max_rounds=max_rounds),
            )
        )

    probe_result: Optional[ProbeResult] = None
    if probe:
        probe_env = (
            registered[0][1]
            if registered
            else Environment.constant_for(module.channels, 0)
        )
        probe_result = probe_run(
            compiled,
            probe_env,
            plan,
            costs=cost_model,
            max_cycles=probe_cycles,
        )

    verdicts: list[CheckVerdict] = []
    for site in sorted(plan.checks):
        for check in plan.checks_at(site):
            fixits = (
                _consistent_fixits(module, check, avail.at(site))
                if check.kind == "consistent"
                else ()
            )
            verdicts.append(
                _classify_check(
                    check,
                    avail,
                    env_avails,
                    windows,
                    classification,
                    probe_result,
                    window,
                    fixits,
                )
            )

    return StalenessReport(
        config=compiled.config,
        window_cycles=window,
        verdicts=verdicts,
        envs=tuple(name for name, _env in registered),
        probed=probe_result is not None,
        analysis_rounds=windows.rounds,
    )
