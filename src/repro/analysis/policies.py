"""Policy construction: annotations + taint facts -> policy declarations.

Implements the ``buildPolicies`` step of Algorithm 1 / Section 5.1.  A
*policy* records everything that must execute inside one atomic region:

* ``fresh(decl, inputs, uses)`` -- the declaration site, the provenance
  chains of every input operation the annotated variable depends on, and
  every use of the variable (Figure 5);
* ``consistent(decls, inputs)`` -- the declaration sites of every variable
  in the consistent set and the provenance chains of their inputs.

Policies are context-qualified throughout: each operation is a
:class:`~repro.analysis.provenance.Chain`, so two calls to the same input
function stay distinct (the Figure 6(b) situation).

``PolicyDecls`` is the paper's ``PD``; ``PolicyMap`` is ``PM`` (atomic
region id -> policies it enforces), filled in by region inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.provenance import Chain
from repro.analysis.taint import TaintResult, consistent_pid, fresh_pid
from repro.ir import instructions as ir
from repro.lang import ast as lang_ast


@dataclass
class FreshPolicy:
    """A freshness policy: one per static ``Fresh`` annotation."""

    pid: str
    decl: ir.InstrId  # the annotation instruction (policy declaration site)
    decl_chains: set[Chain] = field(default_factory=set)
    inputs: set[Chain] = field(default_factory=set)
    uses: set[Chain] = field(default_factory=set)

    @property
    def kind(self) -> str:
        return "fresh"

    def ops(self) -> set[Chain]:
        """Every context-qualified operation the region must contain."""
        return self.decl_chains | self.inputs | self.uses

    def is_trivial(self) -> bool:
        """True when the variable depends on no inputs (vacuous freshness)."""
        return not self.inputs


@dataclass
class ConsistentPolicy:
    """A temporal-consistency policy: one per consistent-set id."""

    pid: str
    set_id: int
    decls: set[ir.InstrId] = field(default_factory=set)
    decl_chains: set[Chain] = field(default_factory=set)
    inputs: set[Chain] = field(default_factory=set)
    #: per member declaration: the inputs that member depends on (drives
    #: the detector's ordered preceding-member checks, Section 7.3)
    decl_inputs: dict[ir.InstrId, set[Chain]] = field(default_factory=dict)

    @property
    def kind(self) -> str:
        return "consistent"

    def ops(self) -> set[Chain]:
        return self.decl_chains | self.inputs

    def is_trivial(self) -> bool:
        """A consistent set with at most one input has nothing to enforce --
        but we still keep its region so the declaration's meaning is stable
        under program evolution."""
        return len(self.inputs) <= 1


Policy = FreshPolicy | ConsistentPolicy


@dataclass
class PolicyDecls:
    """``PD``: policy id -> policy."""

    by_pid: dict[str, Policy] = field(default_factory=dict)

    def fresh_policies(self) -> list[FreshPolicy]:
        return [p for p in self.by_pid.values() if isinstance(p, FreshPolicy)]

    def consistent_policies(self) -> list[ConsistentPolicy]:
        return [p for p in self.by_pid.values() if isinstance(p, ConsistentPolicy)]

    def all_policies(self) -> list[Policy]:
        return list(self.by_pid.values())

    def get(self, pid: str) -> Policy:
        return self.by_pid[pid]

    def __len__(self) -> int:
        return len(self.by_pid)


@dataclass
class PolicyMap:
    """``PM``: atomic region id -> policy ids the region enforces."""

    by_region: dict[str, list[str]] = field(default_factory=dict)

    def assign(self, region: str, pid: str) -> None:
        self.by_region.setdefault(region, []).append(pid)

    def policies_of(self, region: str) -> list[str]:
        return self.by_region.get(region, [])

    def region_of(self, pid: str) -> str | None:
        for region, pids in self.by_region.items():
            if pid in pids:
                return region
        return None


def build_policies(taint: TaintResult) -> PolicyDecls:
    """Construct ``PD`` from the taint analysis of an annotated module."""
    decls = PolicyDecls()
    for annot in taint.module.annot_instrs():
        chains = taint.annot_chains.get(annot.uid, set())
        inputs = taint.annot_inputs.get(annot.uid, set())
        if annot.kind == lang_ast.AnnotKind.FRESH:
            pid = fresh_pid(annot.uid)
            policy = FreshPolicy(pid=pid, decl=annot.uid)
            policy.decl_chains = set(chains)
            policy.inputs = set(inputs)
            policy.uses = set(taint.uses.get(pid, set()))
            decls.by_pid[pid] = policy
        else:
            if annot.set_id is None:
                raise ValueError(f"consistent annotation {annot.uid} has no set id")
            pid = consistent_pid(annot.set_id)
            existing = decls.by_pid.get(pid)
            if existing is None:
                existing = ConsistentPolicy(pid=pid, set_id=annot.set_id)
                decls.by_pid[pid] = existing
            assert isinstance(existing, ConsistentPolicy)
            existing.decls.add(annot.uid)
            existing.decl_chains.update(chains)
            existing.inputs.update(inputs)
            existing.decl_inputs.setdefault(annot.uid, set()).update(inputs)
    return decls


def policy_channels(taint: TaintResult, policy: Policy) -> list[str]:
    """Sensor channels feeding a policy, in deterministic order."""
    channels = {taint.channel_of(chain) for chain in policy.inputs}
    return sorted(channels)
