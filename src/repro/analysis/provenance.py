"""Provenance chains -- the paper's :math:`\\rho ::= nil | (f_1, l_1) :: \\rho`.

A chain is a tuple of :class:`~repro.ir.instructions.InstrId`: the call
sites walked from ``main`` down to an operation, with the operation itself
as the last element.  Chains disambiguate multiple calls to the same
function ("the purpose of provenance information is to disambiguate
multiple calls to the same input operation in a policy", Section 5.1) --
e.g. the two calls to ``pres`` in Figure 6(b) yield

    (app, 1) :: (confirm, 2) :: (pres, 1) :: (sense, 0)
    (app, 1) :: (confirm, 3) :: (pres, 1) :: (sense, 0)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.instructions import InstrId

#: A calling context: the call-site uids from ``main`` down to the current
#: function.  The empty tuple is ``main`` itself.
Context = tuple[InstrId, ...]


@dataclass(frozen=True, order=True)
class Chain:
    """A context-qualified operation: call sites from ``main`` + the op."""

    ids: tuple[InstrId, ...]

    def __post_init__(self) -> None:
        if not self.ids:
            raise ValueError("a chain has at least the operation itself")

    @staticmethod
    def of(context: Context, op: InstrId) -> "Chain":
        return Chain(ids=tuple(context) + (op,))

    @property
    def op(self) -> InstrId:
        """The operation at the end of the chain."""
        return self.ids[-1]

    @property
    def context(self) -> Context:
        """The calling context (all but the operation)."""
        return self.ids[:-1]

    def extends(self, prefix: Context) -> bool:
        """True if this chain's call path starts with ``prefix``."""
        return self.ids[: len(prefix)] == tuple(prefix)

    def __len__(self) -> int:
        return len(self.ids)

    def __str__(self) -> str:
        return "::".join(str(i) for i in self.ids)


def common_context(chains: list[Chain]) -> Context:
    """Longest common call-site prefix of ``chains``.

    Only *call-site* elements participate: the terminal operation of a
    chain never joins the prefix, so the result is always a valid calling
    context.  This is the deepest call-tree node containing every chain,
    which is what ``findCandidate`` (Algorithm 1) computes by recursion --
    see :func:`repro.core.inference.find_candidate` for the faithful
    recursive version and the property test equating the two.
    """
    if not chains:
        return ()
    limit = min(len(c) - 1 for c in chains)  # exclude each chain's op
    prefix: list[InstrId] = []
    for depth in range(limit):
        first = chains[0].ids[depth]
        if all(c.ids[depth] == first for c in chains):
            prefix.append(first)
        else:
            break
    return tuple(prefix)


def representative_op(chain: Chain, context: Context) -> InstrId:
    """The instruction representing ``chain`` inside ``context``'s function.

    If the chain is exactly one level below the context it is the operation
    itself; otherwise it is the call site within the candidate function that
    leads toward the operation (the hoisting step of Algorithm 1, lines
    7--16).
    """
    if not chain.extends(context):
        raise ValueError(f"{chain} does not extend context {context}")
    return chain.ids[len(context)]
