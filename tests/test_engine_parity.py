"""Engine parity: the fast engine must be bit-identical to the reference.

The reference :class:`~repro.runtime.executor.Machine` is the executable
Appendix H semantics; :class:`~repro.runtime.engine.FastMachine` is the
pre-decoded engine every harness defaults to.  Following the
formal-semantics discipline (keep the reference machine as the spec,
demand observation-stream equivalence from any optimized engine), these
tests assert byte-identical observation traces, :class:`RunStats`,
logical clocks, return values, and final nonvolatile state across:

* every shipped benchmark app x build configuration,
* hypothesis-generated programs under continuous, energy-driven, and
  scheduled-failure power,
* repeated-activation streams (shared NV state and supply),
* whole fleets and campaign jobs run end to end under both engines.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import BENCHMARKS
from repro.core.cache import GLOBAL_CACHE
from repro.core.pipeline import CONFIGS, compile_source
from repro.eval.profiles import STANDARD_PROFILE, EnergyProfile
from repro.runtime.engine import (
    ENGINE_FAST,
    ENGINE_REFERENCE,
    code_for,
    create_machine,
)
from repro.runtime.harness import run_activations
from repro.runtime.supply import (
    ContinuousPower,
    FailurePoint,
    ScheduledFailures,
)
from repro.sensors.environment import Environment, random_walk, steps
from tests.strategies import program_sources

_PARITY_PROFILE = EnergyProfile(
    capacity=2500,
    low_threshold=500,
    boot_fraction=(0.7, 1.0),
    harvest_rate=250,
    harvest_spread=3.0,
)


def _gen_env(seed: int) -> Environment:
    """A deterministic, time-varying world for generated programs."""
    return Environment(
        {
            "alpha": steps([3, 11, 7], 900),
            "beta": random_walk(20, 5, seed=seed, interval=300),
            "gamma": steps([-4, 18], 1500),
        }
    )


def _run_both(compiled, make_env, make_supply, costs=None, plan=None):
    """Run one activation under each engine; return both outcomes."""
    outcomes = []
    for engine in (ENGINE_REFERENCE, ENGINE_FAST):
        kwargs = {}
        if costs is not None:
            kwargs["costs"] = costs
        machine = create_machine(
            engine, compiled, make_env(), make_supply(), plan=plan, **kwargs
        )
        result = machine.run()
        outcomes.append((machine, result))
    return outcomes


def _assert_identical(outcomes, context=""):
    (ref_machine, ref), (fast_machine, fast) = outcomes
    assert ref.stats == fast.stats, context
    assert ref.trace.events == fast.trace.events, context
    assert ref.ret == fast.ret, context
    assert ref_machine.tau == fast_machine.tau, context
    assert (
        ref_machine.nv.snapshot_values() == fast_machine.nv.snapshot_values()
    ), context


class TestBenchmarkParity:
    """Deterministic sweep: all shipped apps x configs x supply kinds."""

    def test_all_apps_all_configs_continuous_and_harvest(self):
        for app, meta in BENCHMARKS.items():
            for config in CONFIGS:
                compiled = GLOBAL_CACHE.get_or_compile(meta.source, config)
                costs = meta.cost_model()
                for supply_kind in ("continuous", "harvest"):
                    if supply_kind == "continuous":
                        def make_supply():
                            return ContinuousPower()
                    else:
                        proto = STANDARD_PROFILE.make_supply(seed=11)

                        def make_supply(proto=proto):
                            return proto.spawn(23)

                    outcomes = _run_both(
                        compiled,
                        lambda meta=meta: meta.env_factory(5),
                        make_supply,
                        costs=costs,
                    )
                    _assert_identical(outcomes, f"{app}/{config}/{supply_kind}")

    def test_injection_parity_at_every_check_site(self):
        meta = BENCHMARKS["tire"]
        compiled = GLOBAL_CACHE.get_or_compile(meta.source, "ocelot")
        plan = compiled.detector_plan()
        costs = meta.cost_model()
        assert plan.checks, "tire/ocelot should have detector check sites"
        for site in sorted(plan.checks):
            outcomes = _run_both(
                compiled,
                lambda: meta.env_factory(0),
                lambda site=site: ScheduledFailures(
                    [FailurePoint(chain=site)], off_cycles=25_000
                ),
                costs=costs,
                plan=plan,
            )
            _assert_identical(outcomes, f"injection at {site}")

    def test_activation_streams_share_nv_and_supply(self):
        for app in ("tire", "greenhouse", "cem"):
            meta = BENCHMARKS[app]
            compiled = GLOBAL_CACHE.get_or_compile(meta.source, "ocelot")
            costs = meta.cost_model()
            proto = _PARITY_PROFILE.make_supply(seed=3)
            results = []
            for engine in (ENGINE_REFERENCE, ENGINE_FAST):
                outcome = run_activations(
                    compiled,
                    meta.env_factory(7),
                    proto.spawn(9),
                    budget_cycles=300_000,
                    costs=costs,
                    engine=engine,
                )
                results.append(outcome)
            ref, fast = results
            assert ref.records == fast.records, app
            assert ref.total_cycles_on == fast.total_cycles_on
            assert ref.total_cycles_off == fast.total_cycles_off


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    source=program_sources(),
    config=st.sampled_from(CONFIGS),
    env_seed=st.integers(0, 50),
)
def test_random_programs_parity_continuous(source, config, env_seed):
    compiled = compile_source(source, config)
    outcomes = _run_both(
        compiled, lambda: _gen_env(env_seed), ContinuousPower
    )
    _assert_identical(outcomes, source)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    source=program_sources(),
    config=st.sampled_from(CONFIGS),
    env_seed=st.integers(0, 50),
    supply_seed=st.integers(0, 1000),
)
def test_random_programs_parity_energy_driven(
    source, config, env_seed, supply_seed
):
    compiled = compile_source(source, config)
    proto = _PARITY_PROFILE.make_supply(seed=1)
    outcomes = _run_both(
        compiled,
        lambda: _gen_env(env_seed),
        lambda: proto.spawn(supply_seed),
    )
    _assert_identical(outcomes, source)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    source=program_sources(),
    config=st.sampled_from(CONFIGS),
    env_seed=st.integers(0, 50),
    occurrence=st.integers(1, 3),
    data=st.data(),
)
def test_random_programs_parity_scheduled_failures(
    source, config, env_seed, occurrence, data
):
    """Inject a failure before a random input occurrence, both engines."""
    compiled = compile_source(source, config)
    inputs = compiled.module.input_instrs()
    if not inputs:
        return
    uid = data.draw(st.sampled_from([i.uid for i in inputs]))
    outcomes = _run_both(
        compiled,
        lambda: _gen_env(env_seed),
        lambda: ScheduledFailures(
            [FailurePoint(uid=uid, occurrence=occurrence)], off_cycles=8_000
        ),
    )
    _assert_identical(outcomes, f"{source}\nfail at {uid} #{occurrence}")


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    source=program_sources(),
    config=st.sampled_from(CONFIGS),
    env_seed=st.integers(0, 50),
    supply_seed=st.integers(0, 1000),
)
def test_random_programs_parity_activation_streams(
    source, config, env_seed, supply_seed
):
    """Back-to-back activations: NV state and supply persist across runs."""
    compiled = compile_source(source, config)
    proto = _PARITY_PROFILE.make_supply(seed=2)
    results = []
    for engine in (ENGINE_REFERENCE, ENGINE_FAST):
        results.append(
            run_activations(
                compiled,
                _gen_env(env_seed),
                proto.spawn(supply_seed),
                budget_cycles=60_000,
                engine=engine,
            )
        )
    ref, fast = results
    assert ref.records == fast.records
    assert ref.total_cycles_on == fast.total_cycles_on
    assert ref.total_cycles_off == fast.total_cycles_off


class TestSubsystemParity:
    """Fleets and campaign jobs are engine-independent end to end."""

    def test_fleet_parity_across_engines(self):
        from repro.fleet import (
            SerialFleetExecutor,
            aggregate_fingerprint,
            run_fleet,
        )
        from tests.test_fleet import small_spec

        spec = small_spec()
        results = [
            run_fleet(spec, SerialFleetExecutor(engine=engine))
            for engine in (ENGINE_REFERENCE, ENGINE_FAST)
        ]
        ref, fast = results
        assert aggregate_fingerprint(ref) == aggregate_fingerprint(fast)
        assert ref.aggregate.to_dict() == fast.aggregate.to_dict()

    def test_campaign_job_parity_across_engines(self):
        import dataclasses

        from repro.eval.campaign import (
            CampaignSpec,
            SupplySpec,
            execute_job,
        )

        spec = CampaignSpec(
            apps=("greenhouse",),
            configs=CONFIGS,
            supplies=(SupplySpec(),),
            seeds=(0, 1),
            budget_cycles=60_000,
        )
        for job in spec.expand():
            fast = execute_job(job)
            ref = execute_job(
                dataclasses.replace(job, engine=ENGINE_REFERENCE)
            )
            assert fast.fingerprint() == ref.fingerprint()

    def test_code_is_cached_per_build_and_cost_model(self):
        meta = BENCHMARKS["tire"]
        compiled = GLOBAL_CACHE.get_or_compile(meta.source, "ocelot")
        costs = meta.cost_model()
        first = code_for(compiled, costs=costs)
        again = code_for(compiled, costs=meta.cost_model())
        assert first is again  # equal cost models share the decode
        other = code_for(compiled)  # DEFAULT_COSTS decodes separately
        assert other is not first
        assert first is code_for(compiled, costs=meta.cost_model())

    def test_unknown_engine_rejected(self):
        import pytest

        from repro.runtime.engine import EngineError

        meta = BENCHMARKS["tire"]
        compiled = GLOBAL_CACHE.get_or_compile(meta.source, "ocelot")
        with pytest.raises(EngineError, match="unknown engine"):
            create_machine("warp", compiled, meta.env_factory(0))
