"""Tests for the formal trace predicates (Definitions 2 and 3)."""

from repro.core.pipeline import compile_source
from repro.ir import instructions as ir
from repro.runtime.executor import Machine
from repro.runtime.properties import (
    check_consistency,
    check_freshness,
    check_region_bracketing,
)
from repro.runtime.supply import ContinuousPower, FailurePoint, ScheduledFailures
from repro.sensors.environment import Environment, steps


def run_machine(compiled, env, supply=None):
    machine = Machine(
        compiled.module, env, supply or ContinuousPower(),
        plan=compiled.detector_plan(),
    )
    result = machine.run()
    assert result.stats.completed
    return result


def branch_uid(module):
    for instr in module.all_instrs():
        if isinstance(instr, ir.Branch) and instr.uid.func == "main":
            return instr.uid
    raise AssertionError("no branch in main")


def input_uids(module, channel=None):
    return [
        i.uid
        for i in module.all_instrs()
        if isinstance(i, ir.InputInstr)
        and (channel is None or i.channel == channel)
    ]


class TestFreshnessPredicate:
    def test_continuous_trace_is_fresh(self, weather_ocelot, weather_env):
        result = run_machine(weather_ocelot, weather_env)
        assert check_freshness(result.trace) == []

    def test_jit_failure_between_input_and_use_violates(
        self, weather_jit, weather_env
    ):
        supply = ScheduledFailures(
            [FailurePoint(branch_uid(weather_jit.module))], off_cycles=9000
        )
        result = run_machine(weather_jit, weather_env, supply)
        violations = check_freshness(result.trace)
        assert violations
        assert violations[0].kind == "fresh"

    def test_ocelot_reexecution_stays_fresh(self, weather_ocelot, weather_env):
        supply = ScheduledFailures(
            [FailurePoint(branch_uid(weather_ocelot.module))], off_cycles=9000
        )
        result = run_machine(weather_ocelot, weather_env, supply)
        assert check_freshness(result.trace) == []


class TestConsistencyPredicate:
    def test_continuous_trace_is_consistent(self, weather_ocelot, weather_env):
        result = run_machine(weather_ocelot, weather_env)
        assert check_consistency(result.trace) == []

    def test_jit_failure_between_set_inputs_violates(
        self, weather_jit, weather_env
    ):
        hum_uid = input_uids(weather_jit.module, "hum")[0]
        supply = ScheduledFailures([FailurePoint(hum_uid)], off_cycles=9000)
        result = run_machine(weather_jit, weather_env, supply)
        violations = check_consistency(result.trace)
        assert violations
        assert violations[0].kind == "consistent"

    def test_ocelot_reexecution_stays_consistent(
        self, weather_ocelot, weather_env
    ):
        hum_uid = input_uids(weather_ocelot.module, "hum")[0]
        supply = ScheduledFailures([FailurePoint(hum_uid)], off_cycles=9000)
        result = run_machine(weather_ocelot, weather_env, supply)
        assert check_consistency(result.trace) == []


class TestPredicateAgreesWithDetector:
    """The dynamic predicates and the bit-vector detector must agree on
    whether a run violated its policies."""

    def test_agreement_on_injected_failures(self, weather_jit, weather_env):
        module = weather_jit.module
        plan = weather_jit.detector_plan()
        sites = sorted({c.op for c in plan.checks}, key=str)
        for site in sites:
            supply = ScheduledFailures([FailurePoint(site)], off_cycles=9000)
            machine = Machine(module, weather_env, supply, plan=plan)
            result = machine.run()
            if not supply.all_fired:
                continue
            predicate_flags = bool(
                check_freshness(result.trace) or check_consistency(result.trace)
            )
            detector_flags = result.stats.violations > 0
            assert predicate_flags == detector_flags, site


class TestRegionBracketing:
    def test_clean_trace_brackets(self, weather_ocelot, weather_env):
        result = run_machine(weather_ocelot, weather_env)
        assert check_region_bracketing(result.trace).errors == []

    def test_brackets_survive_region_restart(self, weather_ocelot, weather_env):
        hum_uid = input_uids(weather_ocelot.module, "hum")[0]
        supply = ScheduledFailures([FailurePoint(hum_uid)], off_cycles=9000)
        result = run_machine(weather_ocelot, weather_env, supply)
        # A restart re-enters the same region: enter, (fail), enter, exit
        # still balances through the restart path.
        nesting = check_region_bracketing(result.trace)
        restart_errors = [
            e for e in nesting.errors if "exited while closed" in e
        ]
        assert restart_errors == []


class TestRegionRestartRounds:
    """Regression: a region rollback re-declares the same sites; the
    Definition 3 predicate must treat the re-declaration as a fresh
    collection round, not mix it with the aborted attempt's members.
    (Found by hypothesis; see test_theorem1.py.)"""

    SRC = (
        "inputs alpha;\n"
        "fn main() {\n"
        "  let consistent(1) v2 = input(alpha);\n"
        "  let v3 = input(alpha);\n"
        "  let consistent(1) v4 = input(alpha);\n"
        "  let v5 = input(alpha);\n"
        "  let consistent(1) v6 = input(alpha);\n"
        "}"
    )

    def test_mid_set_restart_is_not_flagged(self):
        from repro.core.pipeline import compile_source

        compiled = compile_source(self.SRC, "ocelot")
        plan = compiled.detector_plan()
        env = Environment({"alpha": steps([0, 40, 11], 700)})
        # Fail before the last input of the set: the region restarts and
        # re-collects everything.
        site = sorted(plan.checks)[-1]
        supply = ScheduledFailures([FailurePoint(chain=site)], off_cycles=5000)
        machine = Machine(compiled.module, env, supply, plan=plan)
        result = machine.run()
        assert result.stats.completed
        assert result.stats.region_restarts >= 1
        assert result.stats.violations == 0
        assert check_consistency(result.trace) == []

    def test_jit_mid_set_failure_still_flagged(self):
        from repro.core.pipeline import compile_source

        compiled = compile_source(self.SRC, "jit")
        plan = compiled.detector_plan()
        env = Environment({"alpha": steps([0, 40, 11], 700)})
        site = sorted(plan.checks)[-1]
        supply = ScheduledFailures([FailurePoint(chain=site)], off_cycles=5000)
        machine = Machine(compiled.module, env, supply, plan=plan)
        result = machine.run()
        assert result.stats.violations >= 1
        assert check_consistency(result.trace)
