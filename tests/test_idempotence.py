"""Idempotence of atomic region re-execution.

A partially executed region's updates must never become visible: after any
number of mid-region power failures, committed nonvolatile state must be
exactly what a failure-free execution produces (for the same sensed
values).  This is the memory-consistency half of correctness the undo log
provides (Sections 2.1, 3.1).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import compile_source
from repro.ir import instructions as ir
from repro.runtime.executor import Machine
from repro.runtime.supply import ContinuousPower, FailurePoint, ScheduledFailures
from repro.sensors.environment import Environment

SRC = """\
inputs ch;
nonvolatile total = 0;
nonvolatile count = 0;
nonvolatile ring[4];

fn main() {
  atomic {
    let v = input(ch);
    total = total + v;
    count = count + 1;
    ring[count % 4] = v;
    work(30);
  }
  log(total, count);
}
"""


def nv_after(compiled, env, supply):
    machine = Machine(
        compiled.module, env, supply, plan=compiled.detector_plan()
    )
    result = machine.run()
    assert result.stats.completed
    return machine.nv.snapshot_values(), result


def region_instr_uids(compiled):
    """All instruction uids lexically between the region markers of main."""
    func = compiled.module.function("main")
    uids = []
    inside = False
    for block in func.blocks.values():
        for instr in block.all_instrs():
            if isinstance(instr, ir.AtomicStart):
                inside = True
            elif isinstance(instr, ir.AtomicEnd):
                inside = False
            elif inside:
                uids.append(instr.uid)
    return uids


class TestSingleFailure:
    def test_each_failure_point_preserves_final_state(self):
        compiled = compile_source(SRC, "ocelot")
        env = Environment.constant_for(["ch"], 9)
        baseline, _ = nv_after(compiled, env, ContinuousPower())
        for uid in region_instr_uids(compiled):
            state, result = nv_after(
                compiled,
                Environment.constant_for(["ch"], 9),
                ScheduledFailures([FailurePoint(uid)], off_cycles=500),
            )
            assert state == baseline, uid
            assert result.stats.region_restarts >= 1 or result.stats.reboots >= 1


class TestRepeatedFailures:
    @given(
        offsets=st.lists(st.integers(0, 6), min_size=1, max_size=4, unique=True)
    )
    @settings(max_examples=25, deadline=None)
    def test_multiple_failures_still_idempotent(self, offsets):
        compiled = compile_source(SRC, "ocelot")
        env = Environment.constant_for(["ch"], 9)
        baseline, _ = nv_after(compiled, env, ContinuousPower())
        uids = region_instr_uids(compiled)
        points = [
            FailurePoint(uids[o % len(uids)], occurrence=i + 1)
            for i, o in enumerate(sorted(offsets))
        ]
        state, result = nv_after(
            compiled,
            Environment.constant_for(["ch"], 9),
            ScheduledFailures(points, off_cycles=300),
        )
        assert state == baseline


class TestTimeVaryingEnvironment:
    def test_committed_values_are_post_restart_samples(self):
        """After a region restart, committed NV state reflects re-collected
        inputs, not the aborted attempt's."""
        from repro.sensors.environment import steps

        compiled = compile_source(SRC, "ocelot")
        env = Environment({"ch": steps([5, 50], 200)})
        # Fail at the work instruction inside the region: the input was
        # already collected, the off-time pushes tau into the next step
        # level, so re-collection reads 50 instead of 5.
        work_uid = next(
            i.uid
            for i in compiled.module.all_instrs()
            if isinstance(i, ir.WorkInstr)
        )
        state, result = nv_after(
            compiled,
            env,
            ScheduledFailures([FailurePoint(work_uid)], off_cycles=1000),
        )
        assert state["globals"]["total"] == 50
        assert state["globals"]["count"] == 1
