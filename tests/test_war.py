"""WAR / EMW / omega analysis tests."""

from repro.core.war import analyze_regions, annotate_omegas, function_effects
from repro.ir import instructions as ir
from repro.ir.lowering import LoweringOptions, lower_program
from repro.lang.parser import parse_program


def lower(source: str, guard: bool = False):
    return lower_program(
        parse_program(source), options=LoweringOptions(guard_outputs=guard)
    )


class TestFunctionEffects:
    def test_direct_reads_and_writes(self):
        module = lower(
            "nonvolatile g = 0;\nfn main() { g = g + 1; }"
        )
        effects = function_effects(module)
        assert effects["main"].reads == {"g"}
        assert effects["main"].writes == {"g"}

    def test_transitive_callee_effects(self):
        module = lower(
            "nonvolatile g = 0;\n"
            "fn bump() { g = g + 1; }\n"
            "fn main() { bump(); }"
        )
        effects = function_effects(module)
        assert effects["main"].writes == {"g"}

    def test_array_effects(self):
        module = lower(
            "nonvolatile a[3];\nfn main() { let x = a[0]; a[1] = x + 1; }"
        )
        effects = function_effects(module)
        assert effects["main"].reads == {"a"}
        assert effects["main"].writes == {"a"}

    def test_locals_do_not_count(self):
        module = lower("fn main() { let x = 1; let y = x + 1; log(y); }")
        effects = function_effects(module)
        assert not effects["main"].reads
        assert not effects["main"].writes


class TestRegionAnalysis:
    def test_region_war_and_emw_split(self):
        module = lower(
            "nonvolatile counted = 0;\nnonvolatile flag = 0;\n"
            "fn main() { atomic { counted = counted + 1; flag = 1; } }"
        )
        (info,) = analyze_regions(module)
        assert info.war == {"counted"}  # read then written
        assert info.emw == {"flag"}  # written only
        assert info.omega == {"counted", "flag"}

    def test_region_includes_callee_writes(self):
        module = lower(
            "nonvolatile g = 0;\n"
            "fn bump() { g = g + 1; }\n"
            "fn main() { atomic { bump(); } }"
        )
        (info,) = analyze_regions(module)
        assert "g" in info.omega

    def test_writes_outside_region_excluded(self):
        module = lower(
            "nonvolatile inside = 0;\nnonvolatile outside = 0;\n"
            "fn main() { atomic { inside = 1; } outside = 1; }"
        )
        (info,) = analyze_regions(module)
        assert info.omega == {"inside"}

    def test_omega_words_counts_array_length(self):
        module = lower(
            "nonvolatile big[16];\nfn main() { atomic { big[0] = 1; } }"
        )
        (info,) = analyze_regions(module)
        assert info.omega_words(module) == 16

    def test_annotate_omegas_stamps_starts(self):
        module = lower(
            "nonvolatile g = 0;\nfn main() { atomic { g = 1; } }"
        )
        annotate_omegas(module)
        (start,) = [
            i for i in module.all_instrs() if isinstance(i, ir.AtomicStart)
        ]
        assert start.omega == frozenset({"g"})


class TestFlattenedExtents:
    def test_overlap_extends_outer_omega(self):
        """start_A start_B end_A write end_B: the write is in A's extent."""
        src = (
            "nonvolatile late = 0;\n"
            "fn main() {\n"
            "  atomic {\n"
            "    atomic {\n"
            "      skip;\n"
            "    }\n"
            "    late = 1;\n"
            "  }\n"
            "}"
        )
        module = lower(src)
        infos = analyze_regions(module)
        outer = max(infos, key=lambda i: len(i.instrs))
        assert "late" in outer.omega

    def test_branchy_region_collects_both_arms(self):
        src = (
            "nonvolatile a = 0;\nnonvolatile b = 0;\n"
            "fn main() { let x = 1; atomic { "
            "if x > 0 { a = 1; } else { b = 1; } } }"
        )
        module = lower(src)
        (info,) = analyze_regions(module)
        assert info.omega == {"a", "b"}

    def test_extent_stops_at_commit(self):
        src = (
            "nonvolatile early = 0;\nnonvolatile later = 0;\n"
            "fn main() { atomic { early = 1; } later = 1; atomic { skip; } }"
        )
        module = lower(src)
        infos = analyze_regions(module)
        first = next(i for i in infos if "early" in i.omega)
        assert "later" not in first.omega
