"""Call graph tests."""

from repro.ir.callgraph import build_call_graph
from repro.ir.lowering import lower_program
from repro.lang.parser import parse_program

SRC = """
fn leaf() { return 1; }
fn mid() { let a = leaf(); let b = leaf(); return a + b; }
fn side() { return 2; }
fn main() {
  let x = mid();
  let y = side();
  log(x, y);
}
"""


def build(source=SRC):
    module = lower_program(parse_program(source))
    return module, build_call_graph(module)


class TestStructure:
    def test_callers_and_callees(self):
        module, graph = build()
        assert {s.callee for s in graph.callees_of("main")} == {"mid", "side"}
        assert {s.caller for s in graph.callers_of("leaf")} == {"mid"}
        assert len(graph.callers_of("leaf")) == 2  # two distinct call sites

    def test_call_sites_have_distinct_uids(self):
        module, graph = build()
        uids = [s.uid for s in graph.callers_of("leaf")]
        assert len(set(uids)) == 2

    def test_reachable_from_main(self):
        module, graph = build()
        assert graph.reachable_from("main") == {"main", "mid", "side", "leaf"}

    def test_topo_order_leaves_first(self):
        module, graph = build()
        order = graph.topo_order("main")
        assert order.index("leaf") < order.index("mid") < order.index("main")

    def test_call_paths_enumerate_contexts(self):
        module, graph = build()
        paths = graph.call_paths("main")
        # (), main->mid, main->mid->leaf (x2), main->side.
        assert len(paths) == 5
        depth2 = [p for p in paths if len(p) == 2]
        assert len(depth2) == 2  # the two leaf contexts

    def test_builtins_not_in_graph(self):
        module, graph = build()
        assert "log" not in graph.callees
