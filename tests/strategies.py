"""Hypothesis strategies generating valid annotated programs.

Programs are built as ASTs (valid by construction) and printed to source,
so every generated program parses, validates, and compiles.  The generator
covers the constructs the analyses care about: input operations behind
call chains, fresh/consistent annotations, branches on annotated data,
nonvolatile writes, bounded loops, and by-reference parameters.

Annotated variables never read nonvolatile globals: values surviving a
reboot in memory legitimately carry old input events, which the *dynamic*
trace predicates would (correctly, but unhelpfully for these tests) flag.
The static system handles such programs; the property tests target the
paper's setting where annotated data derives from current-activation
sensing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from hypothesis import strategies as st

from repro.lang import ast

CHANNELS = ["alpha", "beta", "gamma"]


@dataclass
class _GenState:
    """Bookkeeping while assembling one random program."""

    counter: int = 0
    consistent_sets: int = 0
    globals: list[str] = field(default_factory=list)

    def fresh_name(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"


def _int_expr(draw, vars_in_scope: list[str]) -> ast.Expr:
    """A small pure expression over in-scope locals and literals."""
    choices = ["lit"]
    if vars_in_scope:
        choices += ["var", "binop"]
    kind = draw(st.sampled_from(choices))
    if kind == "lit":
        return ast.IntLit(value=draw(st.integers(-20, 20)))
    if kind == "var":
        return ast.Var(name=draw(st.sampled_from(vars_in_scope)))
    lhs = ast.Var(name=draw(st.sampled_from(vars_in_scope)))
    rhs = ast.IntLit(value=draw(st.integers(1, 9)))
    op = draw(st.sampled_from(["+", "-", "*", "/", "%"]))
    return ast.Binary(op=op, lhs=lhs, rhs=rhs)


@st.composite
def programs(draw, min_annotations: int = 0) -> ast.Program:
    """A random valid annotated program.

    ``min_annotations`` guarantees at least that many annotated (check
    seeding) sites: when the drawn body falls short, fresh-annotated
    sense/use patterns are appended, so strategies like
    ``program_sources(min_annotations=1)`` always produce detector
    check sites (the optimizer parity suite relies on this).
    """
    state = _GenState()
    channels = CHANNELS[: draw(st.integers(1, 3))]

    # Optional nonvolatile globals (written, never feeding annotations).
    globals_: dict[str, ast.GlobalDecl] = {}
    for _ in range(draw(st.integers(0, 2))):
        name = state.fresh_name("g")
        globals_[name] = ast.GlobalDecl(name=name, init=draw(st.integers(0, 5)))
        state.globals.append(name)

    functions: dict[str, ast.FuncDecl] = {}

    # Input wrapper functions (exercise provenance through call chains).
    wrappers: list[str] = []
    for _ in range(draw(st.integers(0, 2))):
        name = state.fresh_name("get")
        channel = draw(st.sampled_from(channels))
        body: list[ast.Stmt] = [
            ast.Let(name="raw", expr=ast.Input(channel=channel)),
        ]
        if draw(st.booleans()):
            body.append(
                ast.Let(
                    name="cooked",
                    expr=ast.Binary(
                        op=draw(st.sampled_from(["+", "*"])),
                        lhs=ast.Var(name="raw"),
                        rhs=ast.IntLit(value=draw(st.integers(1, 4))),
                    ),
                )
            )
            body.append(ast.Return(expr=ast.Var(name="cooked")))
        else:
            body.append(ast.Return(expr=ast.Var(name="raw")))
        functions[name] = ast.FuncDecl(name=name, params=[], body=body)
        wrappers.append(name)

    # Main body: a sequence of sensing, annotation, branching, and output.
    main_body: list[ast.Stmt] = []
    scope: list[str] = []
    annotated: list[str] = []
    statements = draw(st.integers(2, 8))
    for _ in range(statements):
        kind = draw(
            st.sampled_from(
                ["sense", "sense", "derive", "branch", "nvwrite", "work", "output"]
            )
        )
        if kind == "sense":
            name = state.fresh_name("v")
            if wrappers and draw(st.booleans()):
                expr: ast.Expr = ast.Call(
                    func=draw(st.sampled_from(wrappers)), args=[]
                )
            else:
                expr = ast.Input(channel=draw(st.sampled_from(channels)))
            annot = draw(
                st.sampled_from(
                    [None, "fresh", "fresh", "consistent", "consistent", "plain"]
                )
            )
            if annot == "fresh":
                main_body.append(ast.Let(name=name, expr=expr))
                main_body.append(ast.AnnotStmt(kind=ast.AnnotKind.FRESH, var=name))
                annotated.append(name)
                # Guarantee at least one use so the policy is non-trivial.
                if draw(st.booleans()):
                    main_body.append(
                        ast.If(
                            cond=ast.Binary(
                                op=">",
                                lhs=ast.Var(name=name),
                                rhs=ast.IntLit(value=draw(st.integers(0, 10))),
                            ),
                            then_body=[
                                ast.ExprStmt(expr=ast.Call(func="alarm", args=[]))
                            ],
                            else_body=[],
                        )
                    )
                else:
                    main_body.append(
                        ast.ExprStmt(
                            expr=ast.Call(func="log", args=[ast.Var(name=name)])
                        )
                    )
            elif annot == "consistent":
                # Bias toward set 1 so sets usually reach two members.
                set_id = draw(st.sampled_from([1, 1, 1, 2]))
                state.consistent_sets = max(state.consistent_sets, set_id)
                main_body.append(
                    ast.Let(
                        name=name,
                        expr=expr,
                        annot=ast.AnnotKind.CONSISTENT,
                        set_id=set_id,
                    )
                )
                annotated.append(name)
            else:
                main_body.append(ast.Let(name=name, expr=expr))
            scope.append(name)
        elif kind == "derive" and scope:
            name = state.fresh_name("d")
            main_body.append(ast.Let(name=name, expr=_int_expr(draw, scope)))
            scope.append(name)
        elif kind == "branch" and scope:
            cond_var = draw(st.sampled_from(scope))
            threshold = draw(st.integers(-5, 15))
            then_body: list[ast.Stmt] = [
                ast.ExprStmt(expr=ast.Call(func="alarm", args=[]))
            ]
            if state.globals and draw(st.booleans()):
                g = draw(st.sampled_from(state.globals))
                then_body.append(
                    ast.Assign(
                        name=g,
                        expr=ast.Binary(
                            op="+", lhs=ast.Var(name=g), rhs=ast.IntLit(value=1)
                        ),
                    )
                )
            main_body.append(
                ast.If(
                    cond=ast.Binary(
                        op=">",
                        lhs=ast.Var(name=cond_var),
                        rhs=ast.IntLit(value=threshold),
                    ),
                    then_body=then_body,
                    else_body=[],
                )
            )
        elif kind == "nvwrite" and state.globals and scope:
            g = draw(st.sampled_from(state.globals))
            main_body.append(
                ast.Assign(
                    name=g,
                    expr=ast.Binary(
                        op="+",
                        lhs=ast.Var(name=g),
                        rhs=ast.Var(name=draw(st.sampled_from(scope))),
                    ),
                )
            )
        elif kind == "work":
            main_body.append(
                ast.ExprStmt(
                    expr=ast.Call(
                        func="work",
                        args=[ast.IntLit(value=draw(st.integers(5, 60)))],
                    )
                )
            )
        elif kind == "output" and scope:
            main_body.append(
                ast.ExprStmt(
                    expr=ast.Call(
                        func="log",
                        args=[ast.Var(name=draw(st.sampled_from(scope)))],
                    )
                )
            )
    if not main_body:
        main_body.append(ast.Skip())

    while len(annotated) < min_annotations:
        name = state.fresh_name("seed")
        main_body.append(
            ast.Let(name=name, expr=ast.Input(channel=draw(st.sampled_from(channels))))
        )
        main_body.append(ast.AnnotStmt(kind=ast.AnnotKind.FRESH, var=name))
        main_body.append(
            ast.ExprStmt(expr=ast.Call(func="log", args=[ast.Var(name=name)]))
        )
        annotated.append(name)

    functions["main"] = ast.FuncDecl(name="main", params=[], body=main_body)
    program = ast.Program(
        functions=functions, globals=globals_, arrays={}, channels=channels
    )
    ast.assign_labels(program)
    return program


@st.composite
def program_sources(draw, min_annotations: int = 0) -> str:
    """Source text of a random valid program."""
    from repro.lang.printer import print_program

    return print_program(draw(programs(min_annotations=min_annotations)))


# ---------------------------------------------------------------------------
# Fleet specs

#: Small apps keep generated fleets cheap enough for property tests.
FLEET_APPS = ["tire", "greenhouse", "cem"]
FLEET_CONFIGS = ["ocelot", "jit", "atomics"]


@st.composite
def device_classes(draw, name: str):
    """One random device class (valid by construction)."""
    from repro.eval.campaign import EnvironmentSpec, SupplySpec
    from repro.fleet.spec import DeviceClass

    kind = draw(st.sampled_from(["harvest", "harvest", "continuous"]))
    if kind == "harvest":
        rate = draw(st.integers(150, 600))
        supply = SupplySpec(
            harvest_rate=rate,
            seed_offset=draw(st.integers(0, 50)),
        )
    else:
        supply = SupplySpec.continuous()
    return DeviceClass(
        name=name,
        app=draw(st.sampled_from(FLEET_APPS)),
        config=draw(st.sampled_from(FLEET_CONFIGS)),
        count=draw(st.integers(1, 4)),
        environment=EnvironmentSpec(env_seed=draw(st.integers(0, 20))),
        supply=supply,
        harvest_jitter=draw(st.sampled_from([0.0, 0.25, 0.5])),
        phase_jitter=draw(st.sampled_from([0, 0, 4000])),
        env_seed_stride=draw(st.sampled_from([0, 0, 1])),
    )


@st.composite
def fleet_specs(draw):
    """A small random valid :class:`FleetSpec`.

    Budgets stay tiny (a handful of activations per device) so property
    tests can afford to *run* the generated fleets, not just parse them.
    """
    from repro.fleet.spec import FleetSpec

    classes = tuple(
        draw(device_classes(name=f"cls{idx}"))
        for idx in range(draw(st.integers(1, 3)))
    )
    return FleetSpec(
        classes=classes,
        fleet_seed=draw(st.integers(0, 2**32)),
        budget_cycles=draw(st.integers(4_000, 12_000)),
        max_activations=draw(st.sampled_from([100_000, 5])),
        name="prop-fleet",
    )
